"""Unit tests for the SQL oracle's driver, renderer and backend plumbing.

The differential suites prove end-to-end agreement; this file pins the
pieces in isolation: registry wiring, fingerprint-keyed loading (tables
load once per database version, temp tables are per-call), two-valued
predicate rendering under NOT, literal/identifier escaping, and the error
surface (unknown tables, unsupported value types, the optional-duckdb
ImportError hint).
"""

import pytest

from repro.algebra.expressions import Not, col, eq, lt
from repro.execution import (
    ColumnarExecutor,
    Executor,
    SQLiteExecutor,
    available_backends,
    create_executor,
    resolve_backend,
)
from repro.execution.data import Database
from repro.execution.executor import ExecutionError
from repro.execution.sql.driver import create_driver, quote_identifier
from repro.optimizer.plan import PhysicalOp, PhysicalPlan
from repro.service import OptimizerSession


def plan(op, **kwargs):
    return PhysicalPlan(
        op=op,
        group=kwargs.pop("group", 0),
        cost=0.0,
        local_cost=0.0,
        rows=0.0,
        width=0.0,
        **kwargs,
    )


def scan(table, alias=None):
    return plan(PhysicalOp.TABLE_SCAN, table=table, alias=alias)


class TestRegistry:
    def test_all_four_backends_registered_default_first(self):
        names = available_backends()
        assert names[0] == "row"
        assert set(names) == {"row", "columnar", "sqlite", "duckdb"}

    def test_resolve_and_create(self):
        assert resolve_backend("sqlite") is SQLiteExecutor
        executor = create_executor("sqlite", Database({"t": [{"a": 1}]}))
        assert isinstance(executor, SQLiteExecutor)
        assert executor.prefers_batches is False

    def test_unknown_backend_lists_sql_names(self):
        with pytest.raises(ValueError, match="sqlite"):
            resolve_backend("postgres")

    def test_duckdb_backend_registered_but_gated_on_import(self):
        cls = resolve_backend("duckdb")
        try:
            import duckdb  # noqa: F401
        except ImportError:
            with pytest.raises(ImportError, match="duckdb"):
                cls(Database({}))
        else:  # pragma: no cover - only with the optional dependency
            assert cls(Database({})).driver_name == "duckdb"

    def test_unknown_driver_name(self):
        with pytest.raises(ValueError, match="unknown SQL driver"):
            create_driver("oracle")


class TestLoading:
    def test_tables_load_once_per_fingerprint(self):
        db = Database({"t": [{"a": i} for i in range(3)]})
        executor = SQLiteExecutor(db)
        node = scan("t")
        calls = []
        original = executor._driver.create_table

        def counting(table, columns, rows):
            calls.append(table)
            return original(table, columns, rows)

        executor._driver.create_table = counting
        assert len(executor.execute(node)) == 3
        assert calls == ["t"], "first use loads the table"
        assert len(executor.execute(node)) == 3
        assert calls == ["t"], "an unchanged fingerprint must not re-load"

        db.replace_table("t", [{"a": 9}])  # bumps the version ⇒ new fingerprint
        assert executor.execute(node) == [{"t.a": 9}]
        assert calls == ["t", "t"], "a changed fingerprint must reload"

    def test_unknown_table_raises_like_row_backend(self):
        node = scan("nope")
        with pytest.raises(KeyError, match="unknown table"):
            Executor(Database({})).execute(node)
        with pytest.raises(KeyError, match="unknown table"):
            SQLiteExecutor(Database({})).execute(node)

    def test_heterogeneous_tables_load_as_union_schema(self):
        db = Database({"t": [{"a": 1, "b": 2}, {"a": 3}]})
        rows = SQLiteExecutor(db).execute(scan("t"))
        # The engine cannot distinguish a missing key from NULL; the row
        # backend keeps them distinct.  Multiset equality modulo that gap:
        assert rows == [{"t.a": 1, "t.b": 2}, {"t.a": 3, "t.b": None}]

    def test_unsupported_value_type_is_execution_error(self):
        db = Database({"t": [{"a": object()}]})
        with pytest.raises(ExecutionError, match="unsupported value type"):
            SQLiteExecutor(db).execute(scan("t"))

    def test_bytes_round_trip(self):
        payload = "ßignature".encode("utf-8")
        db = Database({"t": [{"a": payload}, {"a": None}]})
        assert SQLiteExecutor(db).execute(scan("t")) == [
            {"t.a": payload},
            {"t.a": None},
        ]

    def test_temp_tables_are_dropped_after_each_call(self):
        db = Database({"t": [{"a": 1}]})
        executor = SQLiteExecutor(db)
        read = plan(PhysicalOp.READ_MATERIALIZED, group=7)
        assert executor.execute(read, materialized={7: [{"t.a": 5}]}) == [{"t.a": 5}]
        leftovers = executor._driver.query(
            "SELECT name FROM sqlite_master WHERE name LIKE '__mat_%'"
        )
        assert leftovers == []

    def test_read_materialized_missing_group(self):
        executor = SQLiteExecutor(Database({}))
        with pytest.raises(ExecutionError, match="G42 is not available"):
            executor.execute(plan(PhysicalOp.READ_MATERIALIZED, group=42))


class TestPredicateRendering:
    """Two-valued semantics: NOT over a NULL comparison keeps the row."""

    @pytest.mark.parametrize(
        "backend", [Executor, ColumnarExecutor, SQLiteExecutor]
    )
    def test_not_over_null_comparison_is_true(self, backend):
        db = Database({"t": [{"a": 1}, {"a": None}, {"a": 9}]})
        node = plan(
            PhysicalOp.FILTER,
            children=(scan("t"),),
            predicate=Not(lt(col("t.a"), 5)),
        )
        # Python: lt(None, 5) → False → NOT → True: the NULL row survives.
        # SQL three-valued logic would drop it; the NULL guard keeps parity.
        assert backend(db).execute(node) == [{"t.a": None}, {"t.a": 9}]

    @pytest.mark.parametrize(
        "backend", [Executor, ColumnarExecutor, SQLiteExecutor]
    )
    def test_int_never_equals_its_string_rendering(self, backend):
        db = Database({"t": [{"a": 1}, {"a": "1"}]})
        node = plan(
            PhysicalOp.FILTER, children=(scan("t"),), predicate=eq(col("t.a"), 1)
        )
        assert backend(db).execute(node) == [{"t.a": 1}]

    def test_string_literals_with_quotes_round_trip(self):
        tricky = "O'Neil -- \"x\"; DROP TABLE t"
        db = Database({"t": [{"a": tricky}, {"a": "other"}]})
        node = plan(
            PhysicalOp.FILTER, children=(scan("t"),), predicate=eq(col("t.a"), tricky)
        )
        assert SQLiteExecutor(db).execute(node) == [{"t.a": tricky}]

    def test_quote_identifier_doubles_quotes(self):
        assert quote_identifier('we"ird.name') == '"we""ird.name"'

    def test_non_finite_literal_rejected(self):
        db = Database({"t": [{"a": 1.0}]})
        node = plan(
            PhysicalOp.FILTER,
            children=(scan("t"),),
            predicate=eq(col("t.a"), float("nan")),
        )
        with pytest.raises(ExecutionError, match="non-finite"):
            SQLiteExecutor(db).execute(node)


class TestConcurrentSessions:
    def test_scheduler_worker_threads_share_one_engine(self):
        """The lock serializes multi-threaded use of one sqlite connection."""
        import threading

        db = Database({"t": [{"a": i} for i in range(50)]})
        executor = SQLiteExecutor(db)
        node = plan(
            PhysicalOp.FILTER, children=(scan("t"),), predicate=lt(col("t.a"), 25)
        )
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    assert len(executor.execute(node)) == 25
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_session_swaps_database_by_fingerprint(self):
        from repro.workloads.synthetic import (
            random_star_batch,
            star_schema_catalog,
            star_schema_database,
        )

        catalog = star_schema_catalog(n_dimensions=4)
        session = OptimizerSession(catalog, executor="sqlite")
        batch = random_star_batch(2, seed=12, n_dimensions=4)
        result = session.optimize(batch, strategy="volcano")
        outputs = {}
        for seed in (9, 10):
            session.attach_database(star_schema_database(seed=seed, n_dimensions=4))
            outputs[seed] = session.execute_plans(result).rows
        assert outputs[9] != outputs[10], "swapped data must change answers"
        reference = Executor(
            star_schema_database(seed=10, n_dimensions=4)
        ).execute_result(result.plan)
        assert outputs[10] == reference
