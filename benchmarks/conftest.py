"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's figures and prints the same
series the paper reports (use ``pytest benchmarks/ --benchmark-only -s`` to
see the tables).  The TPCD experiments are expensive — a full BQ1–BQ6 run
at both scales takes tens of minutes — so by default the harness runs a
reduced configuration; set the environment variables below for the full
reproduction:

=========================  =========================================  =========
variable                   meaning                                    default
=========================  =========================================  =========
``REPRO_BENCH_BATCHES``    how many composite batches (BQ1..BQn)      3
``REPRO_BENCH_FULL``       set to ``1`` to run BQ1..BQ6                unset
=========================  =========================================  =========
"""

import json
import os
import time
from pathlib import Path

import pytest


def max_batches() -> int:
    if os.environ.get("REPRO_BENCH_FULL"):
        return 6
    return int(os.environ.get("REPRO_BENCH_BATCHES", "3"))


@pytest.fixture(scope="session")
def bench_max_batches() -> int:
    return max_batches()


# ---------------------------------------------------------------------------
# Machine-readable results: after a benchmark run, write the per-benchmark
# median wall times to BENCH_core.json at the repository root so the perf
# trajectory can be tracked across PRs.  Override the location with
# REPRO_BENCH_JSON; nothing is written when no benchmark was collected
# (e.g. a plain test run) or when pytest-benchmark is unavailable.
# ---------------------------------------------------------------------------


def _benchmark_medians(config) -> "dict[str, float]":
    bench_session = getattr(config, "_benchmarksession", None)
    if bench_session is None:
        return {}
    medians = {}
    for bench in getattr(bench_session, "benchmarks", ()):
        stats = getattr(bench, "stats", None)
        median = getattr(stats, "median", None)
        if median is None and stats is not None:  # newer layouts nest the stats
            median = getattr(getattr(stats, "stats", None), "median", None)
        if median is not None:
            medians[bench.fullname] = median
    return medians


def pytest_sessionfinish(session, exitstatus):
    medians = _benchmark_medians(session.config)
    if not medians:
        return
    target = os.environ.get("REPRO_BENCH_JSON")
    path = Path(target) if target else Path(str(session.config.rootpath)) / "BENCH_core.json"
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "unit": "seconds",
        "statistic": "median",
        "benchmarks": dict(sorted(medians.items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
