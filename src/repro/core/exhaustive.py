"""Brute-force optima for small instances.

The paper's guarantees are stated against an (unknown) optimal solution
``Θ``.  For small universes we can enumerate every subset and find ``Θ``
exactly; the test suite and the theory benchmarks use this to verify the
Theorem-1 approximation bound empirically and to measure how far the greedy
algorithms actually are from optimal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from .set_functions import Element, SetFunction, Subset, all_subsets

__all__ = ["ExhaustiveResult", "maximize", "minimize", "enumeration_size"]

#: Refuse to enumerate universes larger than this by default (2**22 subsets).
DEFAULT_MAX_UNIVERSE = 22


def enumeration_size(universe_size: int, cardinality: Optional[int] = None) -> int:
    """How many subsets an exhaustive run enumerates.

    ``2**n`` without a cardinality bound; ``Σ_{k≤c} C(n, k)`` with one —
    cardinality-bounded searches over large universes can still be feasible.
    """
    if cardinality is None or cardinality >= universe_size:
        return 2 ** universe_size
    return sum(math.comb(universe_size, k) for k in range(cardinality + 1))


@dataclass(frozen=True)
class ExhaustiveResult:
    """The exact optimum of a set function found by enumeration."""

    best_set: Subset
    best_value: float
    subsets_evaluated: int


def _check_size(
    func: SetFunction, max_universe: int, cardinality: Optional[int] = None
) -> None:
    if enumeration_size(len(func.universe), cardinality) > 2 ** max_universe:
        raise ValueError(
            f"universe of size {len(func.universe)} is too large for exhaustive "
            f"search (limit {max_universe}); pass max_universe explicitly to override"
        )


def maximize(
    func: SetFunction,
    *,
    cardinality: Optional[int] = None,
    max_universe: int = DEFAULT_MAX_UNIVERSE,
) -> ExhaustiveResult:
    """Return the subset maximizing ``func`` (optionally of size at most ``cardinality``).

    Ties are broken towards smaller sets, then lexicographically, so the
    result is deterministic.
    """
    _check_size(func, max_universe, cardinality)
    best_set: Subset = frozenset()
    best_value = float("-inf")
    count = 0
    for subset in all_subsets(func.universe):
        if cardinality is not None and len(subset) > cardinality:
            break  # all_subsets yields by ascending size; nothing smaller follows
        count += 1
        value = func.value(subset)
        if value > best_value or (
            value == best_value
            and (len(subset), sorted(map(repr, subset)))
            < (len(best_set), sorted(map(repr, best_set)))
        ):
            best_set = subset
            best_value = value
    return ExhaustiveResult(best_set=best_set, best_value=best_value, subsets_evaluated=count)


def minimize(
    func: SetFunction,
    *,
    cardinality: Optional[int] = None,
    max_universe: int = DEFAULT_MAX_UNIVERSE,
) -> ExhaustiveResult:
    """Return the subset minimizing ``func`` — e.g. the true optimum of ``bestCost``."""
    _check_size(func, max_universe, cardinality)
    best_set: Subset = frozenset()
    best_value = float("inf")
    count = 0
    for subset in all_subsets(func.universe):
        if cardinality is not None and len(subset) > cardinality:
            break  # all_subsets yields by ascending size; nothing smaller follows
        count += 1
        value = func.value(subset)
        if value < best_value or (
            value == best_value
            and (len(subset), sorted(map(repr, subset)))
            < (len(best_set), sorted(map(repr, best_set)))
        ):
            best_set = subset
            best_value = value
    return ExhaustiveResult(best_set=best_set, best_value=best_value, subsets_evaluated=count)
