"""Universe reduction under a cardinality constraint (Section 5.3, Theorem 4).

When at most ``k`` nodes may be materialized (e.g. because of storage
limits), Theorem 4 gives a preprocessing step that may shrink the ground
set before running MarginalGreedy without changing its output:

1. order the elements by ``f'M(e, U\\{e}) / c({e})`` (their marginal ratio
   at the *top* of the lattice, which lower-bounds every ratio the greedy
   run can see), and let ``t`` be the ratio of the ``k``-th element;
2. keep only the elements whose *singleton* ratio ``fM({e})/c({e})``
   (which upper-bounds every ratio the greedy run can see) is at least ``t``.

The same construction also applies to the classical greedy algorithm for
monotone submodular maximization under cardinality constraints, which the
paper remarks in passing; :func:`prune_universe` is written against a
generic decomposition so it covers both uses.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .decomposition import Decomposition
from .set_functions import Element, Subset

__all__ = ["PruningReport", "prune_universe"]


@dataclass(frozen=True)
class PruningReport:
    """Result of the Theorem-4 universe-reduction step.

    Attributes:
        kept: the reduced ground set ``U'``.
        removed: elements pruned away.
        threshold: the ratio of the ``k``-th element in the top-of-lattice
            ordering (the value ``f'M(e_k, U\\{e_k}) / c({e_k})``).
        top_ratios: the top-of-lattice ratio of every element.
        singleton_ratios: the singleton ratio ``fM({e})/c({e})`` of every element.
        cardinality: the constraint ``k`` the report was computed for.
    """

    kept: Subset
    removed: Subset
    threshold: float
    top_ratios: Dict[Element, float]
    singleton_ratios: Dict[Element, float]
    cardinality: int

    @property
    def reduction(self) -> int:
        """Number of elements removed."""
        return len(self.removed)


def _safe_ratio(gain: float, cost: float) -> float:
    if cost <= 0.0:
        return float("inf") if gain > 0.0 else 0.0
    return gain / cost


def prune_universe(decomposition: Decomposition, cardinality: int) -> PruningReport:
    """Apply Theorem 4's pruning for a cardinality constraint of ``cardinality``.

    The theorem only helps when ``cardinality < |U|``; when ``cardinality >=
    |U|`` every element passes the test (Case 1 of the proof) and the full
    universe is returned unchanged, exactly as the paper recommends.
    """
    universe = decomposition.universe
    n = len(universe)
    if cardinality <= 0:
        raise ValueError("cardinality must be positive")

    top_ratios: Dict[Element, float] = {}
    singleton_ratios: Dict[Element, float] = {}
    for element in universe:
        cost = decomposition.element_cost(element)
        top_gain = decomposition.monotone_marginal(element, universe - {element})
        single_gain = decomposition.monotone.value(frozenset({element}))
        top_ratios[element] = _safe_ratio(top_gain, cost)
        singleton_ratios[element] = _safe_ratio(single_gain, cost)

    if cardinality >= n:
        # Case 1 of Theorem 4: the check is wasteful, keep the full universe.
        return PruningReport(
            kept=universe,
            removed=frozenset(),
            threshold=float("-inf"),
            top_ratios=top_ratios,
            singleton_ratios=singleton_ratios,
            cardinality=cardinality,
        )

    ordered: List[Tuple[float, str, Element]] = sorted(
        ((top_ratios[e], repr(e), e) for e in universe),
        key=lambda item: (-item[0], item[1]),
    )
    threshold = ordered[cardinality - 1][0]

    # A small relative slack keeps elements whose ratios tie with the
    # threshold up to floating-point noise; keeping extra elements is always
    # safe (the theorem only needs U' to be a superset of what greedy picks).
    slack = 1e-9 * max(1.0, abs(threshold)) if math.isfinite(threshold) else 0.0
    kept = frozenset(e for e in universe if singleton_ratios[e] >= threshold - slack)
    removed = universe - kept
    return PruningReport(
        kept=kept,
        removed=removed,
        threshold=threshold,
        top_ratios=top_ratios,
        singleton_ratios=singleton_ratios,
        cardinality=cardinality,
    )
