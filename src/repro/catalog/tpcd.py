"""The TPC-D (TPC-H) schema with analytic statistics at a given scale factor.

The paper's experiments run on the TPCD benchmark database at scale 1
(roughly 1GB of raw data) and scale 100 (roughly 100GB), with a clustered
index on the primary key of every base relation.  The optimizer never needs
the data itself, only the schema and statistics, so this module generates
both analytically from the published TPC-D cardinalities:

===========  ==================
relation      rows at scale SF
===========  ==================
region        5
nation        25
supplier      10,000 · SF
customer      150,000 · SF
part          200,000 · SF
partsupp      800,000 · SF
orders        1,500,000 · SF
lineitem      6,000,000 · SF (approximately)
===========  ==================

Dates are encoded as ``YYYYMMDD`` integers (see :func:`tpcd_date`) which is
sufficient for range-selectivity estimation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .catalog import Catalog
from .schema import Column, DataType, Index, Table
from .statistics import ColumnStatistics, TableStatistics

__all__ = ["tpcd_catalog", "tpcd_date", "TPCD_TABLE_NAMES"]

TPCD_TABLE_NAMES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

#: Date bounds used by the TPC-D data generator, as YYYYMMDD integers.
MIN_ORDER_DATE = 19920101
MAX_ORDER_DATE = 19980802
MIN_SHIP_DATE = 19920103
MAX_SHIP_DATE = 19981201


def tpcd_date(year: int, month: int, day: int) -> int:
    """Encode a date as the YYYYMMDD integer used by the TPC-D statistics."""
    return year * 10000 + month * 100 + day


def _int(name: str) -> Column:
    return Column(name, DataType.INTEGER)


def _float(name: str) -> Column:
    return Column(name, DataType.FLOAT)


def _str(name: str, width: int = 16) -> Column:
    return Column(name, DataType.STRING, width=width)


def _date(name: str) -> Column:
    return Column(name, DataType.DATE)


def _uniform(distinct: float, lo: float = None, hi: float = None) -> ColumnStatistics:
    return ColumnStatistics(distinct_count=float(distinct), min_value=lo, max_value=hi)


def tpcd_catalog(scale_factor: float = 1.0) -> Catalog:
    """Build the TPC-D catalog (schema, statistics, clustered PK indices).

    Args:
        scale_factor: the TPC-D scale factor; 1 corresponds to the paper's
            "1GB total size" configuration and 100 to the "100GB" one.

    Returns:
        A fully populated :class:`~repro.catalog.catalog.Catalog`.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    sf = float(scale_factor)
    catalog = Catalog()

    # ------------------------------------------------------------------ region
    region = Table(
        name="region",
        columns=(_int("r_regionkey"), _str("r_name", 12), _str("r_comment", 80)),
        primary_key=("r_regionkey",),
    )
    catalog.add_table(
        region,
        TableStatistics(
            row_count=5,
            row_width=region.row_width,
            columns={
                "r_regionkey": _uniform(5, 0, 4),
                "r_name": _uniform(5),
            },
        ),
        indexes=[Index("region_pk", "region", ("r_regionkey",), clustered=True)],
    )

    # ------------------------------------------------------------------ nation
    nation = Table(
        name="nation",
        columns=(
            _int("n_nationkey"),
            _str("n_name", 16),
            _int("n_regionkey"),
            _str("n_comment", 80),
        ),
        primary_key=("n_nationkey",),
    )
    catalog.add_table(
        nation,
        TableStatistics(
            row_count=25,
            row_width=nation.row_width,
            columns={
                "n_nationkey": _uniform(25, 0, 24),
                "n_name": _uniform(25),
                "n_regionkey": _uniform(5, 0, 4),
            },
        ),
        indexes=[Index("nation_pk", "nation", ("n_nationkey",), clustered=True)],
    )

    # ---------------------------------------------------------------- supplier
    n_supplier = 10_000 * sf
    supplier = Table(
        name="supplier",
        columns=(
            _int("s_suppkey"),
            _str("s_name", 18),
            _str("s_address", 24),
            _int("s_nationkey"),
            _str("s_phone", 15),
            _float("s_acctbal"),
            _str("s_comment", 60),
        ),
        primary_key=("s_suppkey",),
    )
    catalog.add_table(
        supplier,
        TableStatistics(
            row_count=n_supplier,
            row_width=supplier.row_width,
            columns={
                "s_suppkey": _uniform(n_supplier, 1, n_supplier),
                "s_nationkey": _uniform(25, 0, 24),
                "s_acctbal": _uniform(min(n_supplier, 10_000), -999.99, 9999.99),
                "s_name": _uniform(n_supplier),
                "s_phone": _uniform(n_supplier),
                "s_address": _uniform(n_supplier),
                "s_comment": _uniform(n_supplier),
            },
        ),
        indexes=[Index("supplier_pk", "supplier", ("s_suppkey",), clustered=True)],
    )

    # ---------------------------------------------------------------- customer
    n_customer = 150_000 * sf
    customer = Table(
        name="customer",
        columns=(
            _int("c_custkey"),
            _str("c_name", 18),
            _str("c_address", 24),
            _int("c_nationkey"),
            _str("c_phone", 15),
            _float("c_acctbal"),
            _str("c_mktsegment", 10),
            _str("c_comment", 70),
        ),
        primary_key=("c_custkey",),
    )
    catalog.add_table(
        customer,
        TableStatistics(
            row_count=n_customer,
            row_width=customer.row_width,
            columns={
                "c_custkey": _uniform(n_customer, 1, n_customer),
                "c_nationkey": _uniform(25, 0, 24),
                "c_mktsegment": _uniform(5),
                "c_acctbal": _uniform(min(n_customer, 10_000), -999.99, 9999.99),
                "c_name": _uniform(n_customer),
                "c_phone": _uniform(n_customer),
            },
        ),
        indexes=[Index("customer_pk", "customer", ("c_custkey",), clustered=True)],
    )

    # -------------------------------------------------------------------- part
    n_part = 200_000 * sf
    part = Table(
        name="part",
        columns=(
            _int("p_partkey"),
            _str("p_name", 34),
            _str("p_mfgr", 14),
            _str("p_brand", 10),
            _str("p_type", 20),
            _int("p_size"),
            _str("p_container", 10),
            _float("p_retailprice"),
            _str("p_comment", 20),
        ),
        primary_key=("p_partkey",),
    )
    catalog.add_table(
        part,
        TableStatistics(
            row_count=n_part,
            row_width=part.row_width,
            columns={
                "p_partkey": _uniform(n_part, 1, n_part),
                "p_brand": _uniform(25),
                "p_type": _uniform(150),
                "p_size": _uniform(50, 1, 50),
                "p_container": _uniform(40),
                "p_mfgr": _uniform(5),
                "p_name": _uniform(n_part),
                "p_retailprice": _uniform(min(n_part, 100_000), 900.0, 2100.0),
            },
        ),
        indexes=[Index("part_pk", "part", ("p_partkey",), clustered=True)],
    )

    # ---------------------------------------------------------------- partsupp
    n_partsupp = 800_000 * sf
    partsupp = Table(
        name="partsupp",
        columns=(
            _int("ps_partkey"),
            _int("ps_suppkey"),
            _int("ps_availqty"),
            _float("ps_supplycost"),
            _str("ps_comment", 120),
        ),
        primary_key=("ps_partkey", "ps_suppkey"),
    )
    catalog.add_table(
        partsupp,
        TableStatistics(
            row_count=n_partsupp,
            row_width=partsupp.row_width,
            columns={
                "ps_partkey": _uniform(n_part, 1, n_part),
                "ps_suppkey": _uniform(n_supplier, 1, n_supplier),
                "ps_availqty": _uniform(9999, 1, 9999),
                "ps_supplycost": _uniform(min(n_partsupp, 100_000), 1.0, 1000.0),
            },
        ),
        indexes=[
            Index("partsupp_pk", "partsupp", ("ps_partkey", "ps_suppkey"), clustered=True)
        ],
    )

    # ------------------------------------------------------------------ orders
    n_orders = 1_500_000 * sf
    orders = Table(
        name="orders",
        columns=(
            _int("o_orderkey"),
            _int("o_custkey"),
            _str("o_orderstatus", 1),
            _float("o_totalprice"),
            _date("o_orderdate"),
            _str("o_orderpriority", 15),
            _str("o_clerk", 15),
            _int("o_shippriority"),
            _str("o_comment", 48),
        ),
        primary_key=("o_orderkey",),
    )
    catalog.add_table(
        orders,
        TableStatistics(
            row_count=n_orders,
            row_width=orders.row_width,
            columns={
                "o_orderkey": _uniform(n_orders, 1, 4 * n_orders),
                "o_custkey": _uniform(n_customer, 1, n_customer),
                "o_orderstatus": _uniform(3),
                "o_totalprice": _uniform(min(n_orders, 1_000_000), 850.0, 560_000.0),
                "o_orderdate": _uniform(2_406, MIN_ORDER_DATE, MAX_ORDER_DATE),
                "o_orderpriority": _uniform(5),
                "o_shippriority": _uniform(1, 0, 0),
            },
        ),
        indexes=[Index("orders_pk", "orders", ("o_orderkey",), clustered=True)],
    )

    # ---------------------------------------------------------------- lineitem
    n_lineitem = 6_000_000 * sf
    lineitem = Table(
        name="lineitem",
        columns=(
            _int("l_orderkey"),
            _int("l_partkey"),
            _int("l_suppkey"),
            _int("l_linenumber"),
            _float("l_quantity"),
            _float("l_extendedprice"),
            _float("l_discount"),
            _float("l_tax"),
            _str("l_returnflag", 1),
            _str("l_linestatus", 1),
            _date("l_shipdate"),
            _date("l_commitdate"),
            _date("l_receiptdate"),
            _str("l_shipinstruct", 25),
            _str("l_shipmode", 10),
            _str("l_comment", 26),
        ),
        primary_key=("l_orderkey", "l_linenumber"),
    )
    catalog.add_table(
        lineitem,
        TableStatistics(
            row_count=n_lineitem,
            row_width=lineitem.row_width,
            columns={
                "l_orderkey": _uniform(n_orders, 1, 4 * n_orders),
                "l_partkey": _uniform(n_part, 1, n_part),
                "l_suppkey": _uniform(n_supplier, 1, n_supplier),
                "l_linenumber": _uniform(7, 1, 7),
                "l_quantity": _uniform(50, 1, 50),
                "l_extendedprice": _uniform(min(n_lineitem, 1_000_000), 900.0, 105_000.0),
                "l_discount": _uniform(11, 0.0, 0.10),
                "l_tax": _uniform(9, 0.0, 0.08),
                "l_returnflag": _uniform(3),
                "l_linestatus": _uniform(2),
                "l_shipdate": _uniform(2_526, MIN_SHIP_DATE, MAX_SHIP_DATE),
                "l_commitdate": _uniform(2_466, MIN_SHIP_DATE, MAX_SHIP_DATE),
                "l_receiptdate": _uniform(2_554, MIN_SHIP_DATE, MAX_SHIP_DATE),
                "l_shipinstruct": _uniform(4),
                "l_shipmode": _uniform(7),
            },
        ),
        indexes=[
            Index(
                "lineitem_pk", "lineitem", ("l_orderkey", "l_linenumber"), clustered=True
            )
        ],
    )

    return catalog
