"""Sharded serving: a pool of :class:`~repro.service.session.OptimizerSession` shards.

One :class:`OptimizerSession` serializes every batch it optimizes behind a
single coarse lock, and grows one memo for *all* the traffic it has ever
seen — the right design for overlapping workloads, the wrong one for the
throughput (and memo size) of heavy mixed traffic.  The
:class:`SessionPool` partitions that traffic shared-nothing style:

* it owns ``N`` sessions ("shards") over **one** catalog and cost model,
* every submitted query or pre-formed batch is routed to a shard by a
  **stable hash of its canonical semantic fingerprint**
  (:func:`~repro.dag.build.query_signature` →
  :func:`~repro.dag.fingerprint.canonical_key`), so a re-submitted query
  always lands on the shard whose memo, engines, result cache and
  materialization cache are already warm for it — an explicit ``tenant=``
  routing key overrides the fingerprint when a caller wants to pin a
  traffic class to one shard,
* each shard keeps its **own** memo, engines and
  :class:`~repro.service.matcache.MaterializationCache` — no lock is ever
  shared between shards — while
* a single thread-safe, fingerprint-keyed
  :class:`~repro.adaptive.FeedbackStatsStore` (and, through the one
  attached :class:`~repro.execution.data.Database`, a single data-version
  token) is shared across all shards, so every shard learns from every
  observed execution no matter where it ran.

Routing by fingerprint keeps results **bit-identical** to a single
session: a shard optimizes and executes exactly the batch it is handed,
with the same catalog, statistics and strategies — sharding changes where
the work happens, never what is computed.  The differential tests assert
rows and chosen plan costs are identical for pools of 1, 2 and 4 shards.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from ..adaptive import AdaptiveConfig, FeedbackStatsStore
from ..algebra.logical import Query, QueryBatch
from ..analysis.sanitizer import sanitize_lock
from ..catalog.catalog import Catalog
from ..cost.model import CostModel
from ..dag.build import DagConfig, query_signature
from ..dag.fingerprint import canonical_key
from ..execution.backends import DEFAULT_BACKEND
from ..execution.data import Database, Row
from ..core.mqo import MQOResult
from ..obs import Observability
from .matcache import CacheStatistics
from .session import (
    FEEDBACK_SNAPSHOT,
    BatchExecution,
    OptimizerSession,
    SessionStatistics,
    _as_batch,
    _restore_feedback_from,
    _snapshot_feedback_to,
)

__all__ = ["SessionPool", "stable_shard_hash"]


def stable_shard_hash(key: str) -> int:
    """A process-independent hash of a routing key.

    Python's builtin ``hash`` of strings is salted per process; routing
    must not be, or a restarted front end would scatter warm traffic onto
    cold shards.
    """
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class SessionPool:
    """N independent optimizer sessions behind one fingerprint router.

    Args:
        catalog / cost_model / dag_config: shared by every shard (they are
            read-only at serving time).
        shards: how many :class:`OptimizerSession` shards to create.
        database: optionally attach one execution database to every shard
            up front (same as calling :meth:`attach_database`).
        adaptive: the runtime-feedback switch, forwarded to every shard;
            with adaptation on, all shards record into the one shared
            :attr:`feedback` store.
        feedback: the shared observation store (created automatically when
            ``adaptive`` is enabled and none is given).
        spill_dir: enable the durable cache tier for the whole pool: shard
            ``i`` spills its materialization cache under
            ``spill_dir/shard-i/`` (so shards never contend on files any
            more than they do on locks), while **one** shared feedback
            snapshot lives at ``spill_dir/feedback.json`` — restored into
            the shared store on construction, written by :meth:`snapshot`.
            A rebuilt pool pointed at the same directory (and the same
            shard count, so routing lands where the files are) serves warm
            traffic without re-materializing anything.
        executor: execution backend name (``"row"``, ``"columnar"``,
            ``"sqlite"`` or ``"duckdb"``),
            applied to every shard — a pool always executes with one
            backend, so results are backend-uniform no matter which shard a
            batch routes to.
        obs: the :class:`~repro.obs.Observability` handle for the whole
            pool; each shard gets a ``child(shard=i)`` of it, so one
            registry (and one tracer) carries per-shard labeled series.  A
            private handle with tracing disabled is created when omitted.
        session_kwargs: forwarded to every shard's
            :class:`OptimizerSession` constructor (``incremental``,
            ``max_cached_batches``, ``max_cached_results``,
            ``spill_config``, ...).
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        dag_config: Optional[DagConfig] = None,
        *,
        shards: int = 4,
        database: Optional[Database] = None,
        adaptive: Union[None, bool, AdaptiveConfig] = None,
        feedback: Optional[FeedbackStatsStore] = None,
        spill_dir: Union[None, str, Path] = None,
        executor: str = DEFAULT_BACKEND,
        obs: Optional[Observability] = None,
        **session_kwargs,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.catalog = catalog
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.dag_config = dag_config if dag_config is not None else DagConfig()
        self.spill_dir: Optional[Path] = Path(spill_dir) if spill_dir is not None else None
        #: One registry + tracer for the whole pool; every shard reports
        #: through a ``child(shard=i)`` handle, so per-shard series stay
        #: distinguishable while sharing one exposition surface.
        self.obs = obs if obs is not None else Observability()
        config = AdaptiveConfig() if adaptive is True else (adaptive or None)
        if config is not None and not config.enabled:
            config = None
        owns_feedback = feedback is None
        if feedback is None and config is not None:
            feedback = FeedbackStatsStore(
                ewma_alpha=config.ewma_alpha,
                epoch_decay=config.epoch_decay,
                registry=self.obs.registry,
                labels=self.obs.labels,
            )
        #: The fingerprint-keyed observation store shared by every shard
        #: (None when the pool runs without the adaptive feedback loop).
        self.feedback = feedback
        if owns_feedback and feedback is not None and self.spill_dir is not None:
            _restore_feedback_from(feedback, self.spill_dir / FEEDBACK_SNAPSHOT)
        # Routing memo: computing a canonical key normalizes and binds the
        # query, work the routed shard's prepare() repeats — cache it per
        # (equal) Query so hot re-submitted traffic fingerprints once.
        self._routing_lock = sanitize_lock(
            threading.Lock(), "pool.routing", obs=self.obs
        )
        self._routing_keys: "weakref.WeakKeyDictionary[Query, str]" = (
            weakref.WeakKeyDictionary()
        )
        self._sessions: Tuple[OptimizerSession, ...] = tuple(
            OptimizerSession(
                catalog,
                self.cost_model,
                self.dag_config,
                adaptive=config,
                feedback=feedback,
                spill_dir=(
                    self.spill_dir / f"shard-{index}"
                    if self.spill_dir is not None
                    else None
                ),
                executor=executor,
                obs=self.obs.child(shard=index),
                **session_kwargs,
            )
            for index in range(shards)
        )
        if database is not None:
            self.attach_database(database)

    # ------------------------------------------------------------------ shards

    @property
    def sessions(self) -> Tuple[OptimizerSession, ...]:
        """Every shard, in routing order."""
        return self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def shard(self, index: int) -> OptimizerSession:
        """The session serving shard ``index``."""
        return self._sessions[index]

    # ----------------------------------------------------------------- routing

    def routing_key(
        self,
        batch: Union[Query, QueryBatch, Sequence[Query]],
        *,
        tenant: Optional[str] = None,
    ) -> str:
        """The stable string a query or batch is routed by.

        An explicit ``tenant`` wins; otherwise the canonical semantic
        fingerprint(s) of the quer(y/ies) — order-independent for batches,
        so the same logical batch routes identically however it is listed,
        and a one-query batch routes exactly like the bare query (the same
        logical traffic must always warm the same shard, whichever way the
        caller submits it).
        """
        if tenant is not None:
            return f"tenant:{tenant}"
        if isinstance(batch, Query):
            return self._query_key(batch)
        batch = _as_batch(batch)
        keys = sorted(self._query_key(query) for query in batch)
        if len(keys) == 1:
            return keys[0]
        return "batch:[" + ";".join(keys) + "]"

    def _query_key(self, query: Query) -> str:
        with self._routing_lock:
            cached = self._routing_keys.get(query)
        if cached is not None:
            return cached
        key = canonical_key(query_signature(query, self.catalog))
        with self._routing_lock:
            self._routing_keys[query] = key
        return key

    def route(
        self,
        batch: Union[Query, QueryBatch, Sequence[Query]],
        *,
        tenant: Optional[str] = None,
    ) -> int:
        """The shard index a query or batch is served by."""
        return stable_shard_hash(self.routing_key(batch, tenant=tenant)) % len(
            self._sessions
        )

    def session_for(
        self,
        batch: Union[Query, QueryBatch, Sequence[Query]],
        *,
        tenant: Optional[str] = None,
    ) -> OptimizerSession:
        """The shard session a query or batch is served by."""
        return self._sessions[self.route(batch, tenant=tenant)]

    # ------------------------------------------------------------ serving API

    def optimize(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategy: str = "marginal-greedy",
        *,
        tenant: Optional[str] = None,
        **knobs,
    ) -> MQOResult:
        """Optimize a batch on its shard (see :meth:`OptimizerSession.optimize`)."""
        return self.session_for(batch, tenant=tenant).optimize(
            batch, strategy=strategy, **knobs
        )

    def compare(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategies: Sequence[str] = ("volcano", "greedy", "marginal-greedy"),
        *,
        tenant: Optional[str] = None,
        **knobs,
    ) -> Dict[str, MQOResult]:
        """Compare strategies on the batch's shard (independent engines)."""
        return self.session_for(batch, tenant=tenant).compare(
            batch, strategies=strategies, **knobs
        )

    def execute_batch(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategy: str = "marginal-greedy",
        *,
        tenant: Optional[str] = None,
        **knobs,
    ) -> BatchExecution:
        """Optimize *and run* a batch on its shard, returning rows per query."""
        return self.session_for(batch, tenant=tenant).execute_batch(
            batch, strategy=strategy, **knobs
        )

    def execute(
        self,
        query: Query,
        strategy: str = "marginal-greedy",
        *,
        tenant: Optional[str] = None,
        **knobs,
    ) -> "list[Row]":
        """Optimize and run a single query on its shard, returning its rows."""
        return self.session_for(query, tenant=tenant).execute(
            query, strategy=strategy, **knobs
        )

    def execute_plans(
        self, result: MQOResult, *, queries: Optional[Sequence[str]] = None
    ) -> BatchExecution:
        """Run an already-optimized result on the shard whose memo produced it.

        Results carry the uid of the memo their group ids refer to; the
        pool dispatches to the matching shard (executing them anywhere else
        would read unrelated groups — exactly the mistake
        :meth:`OptimizerSession.execute_plans` rejects).
        """
        if result.memo_uid is not None:
            for session in self._sessions:
                if session.memo.uid == result.memo_uid:
                    return session.execute_plans(result, queries=queries)
        raise ValueError(
            "result was not optimized by any shard of this pool "
            f"(memo uid {result.memo_uid}); execute results on the pool "
            "that produced them"
        )

    # ---------------------------------------------------------------- database

    @property
    def database(self) -> Optional[Database]:
        """The execution database attached to every shard, if any."""
        return self._sessions[0].database

    def attach_database(self, database: Database) -> None:
        """Attach (or swap) one database — and thus one data-version token —
        on every shard; each shard's materialization cache invalidates
        independently, the shared feedback store bumps its epoch once."""
        for session in self._sessions:
            session.attach_database(database)

    def reset(self) -> None:
        """Reset every shard (see :meth:`OptimizerSession.reset`)."""
        for session in self._sessions:
            session.reset()

    # ------------------------------------------------------------- durability

    def snapshot_feedback(self, path: Union[None, str, Path] = None) -> Optional[Path]:
        """Persist the shared feedback store; returns the path written, or None.

        Defaults to ``spill_dir/feedback.json`` — the one snapshot every
        shard's observations flow into, and the one a rebuilt pool restores.
        """
        return _snapshot_feedback_to(self.feedback, self.spill_dir, path)

    def snapshot(self) -> None:
        """Persist everything still hot across all shards.

        Checkpoints each shard's materialization cache into its spill
        subdirectory and writes the one shared feedback snapshot; shards
        without a durable tier are no-ops.  Call before a planned shutdown
        — the restart differential tests rebuild a pool from exactly this
        state and serve bit-identical rows with zero re-materializations.
        """
        for session in self._sessions:
            checkpoint = getattr(session.matcache, "checkpoint", None)
            if callable(checkpoint):
                checkpoint()
        self.snapshot_feedback()

    # -------------------------------------------------------------- statistics

    def statistics(self) -> SessionStatistics:
        """The per-shard :class:`SessionStatistics` counters, summed.

        Each shard contributes a snapshot taken under its own lock
        (:meth:`OptimizerSession.statistics_snapshot`), so a concurrently
        serving shard can never contribute a torn multi-counter state.
        """
        total = SessionStatistics()
        for session in self._sessions:
            for name, value in session.statistics_snapshot().items():
                setattr(total, name, getattr(total, name) + value)
        return total

    def shard_statistics(self) -> Tuple[SessionStatistics, ...]:
        """Each shard's counters, in routing order."""
        return tuple(s.statistics for s in self._sessions)

    def matcache_statistics(self) -> CacheStatistics:
        """The shards' materialization-cache counters, summed.

        Aggregated as the *shards'* statistics class, so a spilling pool's
        roll-up includes the disk tier's spill/fault/recovered counters
        (:class:`~repro.storage.spill.SpillStatistics`) rather than
        truncating them to the memory-tier fields.  Each shard contributes
        a snapshot taken under its cache lock
        (:meth:`~repro.service.matcache.MaterializationCache
        .statistics_snapshot`) — the former field-by-field read could tear
        against a concurrent fill/eviction under pool concurrency.
        """
        total = type(self._sessions[0].matcache.statistics)()
        for session in self._sessions:
            for name, value in session.matcache.statistics_snapshot().items():
                setattr(total, name, getattr(total, name) + value)
        return total
