"""Tier-1 smoke tests for every ``benchmarks/bench_*.py`` module.

Each benchmark module is run **in-process** at tiny scale (one nested
``pytest.main`` per module with ``REPRO_BENCH_TINY=1``) with its JSON
output redirected into a temporary directory via ``REPRO_BENCH_OUT``.
The smoke bar is:

* the nested run exits 0 — every correctness assertion in the bench
  holds at tiny scale (perf-only assertions gate themselves off under
  ``REPRO_BENCH_TINY``);
* every ``BENCH_*.json`` artifact the module owns is written, parses,
  and carries its required keys (``BENCH_harness.json`` is additionally
  validated against the harness report schema).

This keeps the benchmarks from rotting between the occasional full-scale
CI runs: an API drift that would break ``benchmarks/`` now fails tier-1
within seconds instead of at the next nightly.

The modules read the env knobs at call time (``benchmarks/_env.py``), so
setting them just before the nested run is sufficient even though the
bench modules stay cached in ``sys.modules`` across nested runs.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.workloads.harness import validate_report

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCHMARKS = REPO_ROOT / "benchmarks"

pytest.importorskip(
    "pytest_benchmark", reason="bench modules use the benchmark fixture"
)

# Modules that write no JSON of their own: their machine-readable output
# is the per-benchmark median aggregation the benchmarks/ conftest writes
# to BENCH_core.json at session finish.  They are smoked together in one
# nested run (reduced batch count, single benchmark round) and the
# aggregate is schema-checked once.
CORE_MODULES = (
    "bench_ablations",
    "bench_core",
    "bench_example1",
    "bench_experiment1",
    "bench_experiment2",
    "bench_session",
    "bench_theory",
)

# module stem -> {artifact filename: required top-level keys}
BENCH_ARTIFACTS = {
    "bench_execute": {
        "BENCH_execute.json": ("batch", "unit", "backends", "strategy"),
    },
    "bench_columnar": {
        "BENCH_columnar.json": (
            "row_cold_execute",
            "columnar_cold_execute",
            "speedup",
            "tiny",
        ),
        "BENCH_backends.json": ("backends", "speedup_vs_row", "rows_identical"),
    },
    "bench_adaptive": {
        "BENCH_adaptive.json": (
            "stale_plan_cost",
            "reoptimized_plan_cost",
            "cost_improvement",
            "drift_events",
            "tiny",
        ),
    },
    "bench_spill": {
        "BENCH_spill.json": (
            "cold_time",
            "warm_from_disk_time",
            "warm_from_ram_time",
            "working_set_bytes",
            "ram_budget_bytes",
            "tiny",
        ),
    },
    "bench_obs": {
        "BENCH_obs.json": (
            "floor_bare_executor",
            "disabled_tracing",
            "enabled_tracing",
            "disabled_overhead_pct",
            "tiny",
        ),
    },
    "bench_pool": {
        "BENCH_pool.json": (
            "single_session_time",
            "pool_time",
            "speedup",
            "shard_batches_served",
            "latency_percentiles",
            "rows_identical",
            "tiny",
        ),
    },
    "bench_harness": {
        "BENCH_harness.json": ("format", "kind", "settings", "comparison"),
    },
}


def test_every_bench_module_is_covered():
    """A new bench_*.py must register itself here to enter tier-1."""
    stems = sorted(p.stem for p in BENCHMARKS.glob("bench_*.py"))
    covered = sorted(set(BENCH_ARTIFACTS) | set(CORE_MODULES))
    assert stems == covered, (
        "add the new module to BENCH_ARTIFACTS (it writes its own "
        "BENCH_*.json) or CORE_MODULES (it reports via BENCH_core.json)"
    )


def run_bench_tiny(stems, out_dir, monkeypatch, extra=("--benchmark-disable",)):
    """One nested pytest run of bench module(s) at tiny scale."""
    monkeypatch.setenv("REPRO_BENCH_TINY", "1")
    monkeypatch.setenv("REPRO_BENCH_BATCHES", "1")
    monkeypatch.setenv("REPRO_BENCH_OUT", str(out_dir))
    # The benchmarks/ conftest aggregates pytest-benchmark medians into
    # BENCH_core.json at session finish; point that into the sandbox too.
    monkeypatch.setenv("REPRO_BENCH_JSON", str(out_dir / "BENCH_core.json"))
    monkeypatch.syspath_prepend(str(BENCHMARKS))
    return pytest.main(
        [str(BENCHMARKS / f"{stem}.py") for stem in stems]
        + [
            "-q",
            "-p",
            "no:cacheprovider",
            "-W",
            "ignore::pytest.PytestAssertRewriteWarning",
        ]
        + list(extra)
    )


@pytest.mark.parametrize("stem", sorted(BENCH_ARTIFACTS))
def test_bench_module_smokes_at_tiny_scale(stem, tmp_path, monkeypatch):
    exit_code = run_bench_tiny([stem], tmp_path, monkeypatch)
    assert exit_code == 0, f"{stem} failed at tiny scale (exit {exit_code})"

    for filename, required_keys in BENCH_ARTIFACTS[stem].items():
        artifact = tmp_path / filename
        assert artifact.is_file(), f"{stem} did not write {filename}"
        document = json.loads(artifact.read_text(encoding="utf-8"))
        missing = [key for key in required_keys if key not in document]
        assert not missing, f"{filename} is missing keys: {missing}"
        if filename == "BENCH_harness.json":
            validate_report(document)


def test_core_bench_modules_smoke_into_bench_core_json(tmp_path, monkeypatch):
    """The conftest-aggregated modules, one reduced-scale nested run.

    Benchmarks stay *enabled* here (single round, no warmup) — with them
    disabled the conftest has no medians and writes nothing — so this
    also smokes the aggregation path itself.
    """
    exit_code = run_bench_tiny(
        CORE_MODULES,
        tmp_path,
        monkeypatch,
        extra=(
            "--benchmark-min-rounds=1",
            "--benchmark-max-time=0.01",
            "--benchmark-warmup=off",
        ),
    )
    assert exit_code == 0, f"core bench modules failed (exit {exit_code})"

    artifact = tmp_path / "BENCH_core.json"
    assert artifact.is_file(), "the conftest must aggregate BENCH_core.json"
    document = json.loads(artifact.read_text(encoding="utf-8"))
    for key in ("generated_at", "unit", "statistic", "benchmarks"):
        assert key in document, f"BENCH_core.json is missing {key!r}"
    assert document["statistic"] == "median"
    assert document["benchmarks"], "every module should report >= 1 median"
    for fullname, median in document["benchmarks"].items():
        assert isinstance(median, float) and median >= 0.0, fullname


def test_bench_env_knobs_read_at_call_time(monkeypatch):
    """The _env helpers must track the environment, not import-time state."""
    monkeypatch.syspath_prepend(str(BENCHMARKS))
    import _env

    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    monkeypatch.delenv("REPRO_BENCH_OUT", raising=False)
    assert _env.tiny() is False
    assert _env.scaled(100, 7) == 100
    assert _env.bench_path("BENCH_x.json") == REPO_ROOT / "BENCH_x.json"

    monkeypatch.setenv("REPRO_BENCH_TINY", "1")
    monkeypatch.setenv("REPRO_BENCH_OUT", "/tmp/somewhere")
    assert _env.tiny() is True
    assert _env.scaled(100, 7) == 7
    assert _env.bench_path("BENCH_x.json") == Path("/tmp/somewhere/BENCH_x.json")
