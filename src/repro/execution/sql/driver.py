"""Engine drivers for the SQL oracle backend.

A driver owns one embedded-engine connection and exposes the tiny surface
the executor needs: create a table from rows, run a query, drop a table,
reset.  Two drivers ship:

* :class:`SQLiteDriver` — stdlib ``sqlite3``, always available.  Tables are
  created with **untyped** columns so SQLite assigns no affinity and values
  keep their storage class — ``1 = '1'`` is false, exactly as in Python.
* :class:`DuckDBDriver` — optional; constructed only when the ``duckdb``
  package is importable.  DuckDB columns are typed, so the driver infers a
  column type from the values it loads (mixed int/float widens to DOUBLE).

Both accept the value vocabulary of the executors' row dicts: ``None``,
``bool``, ``int``, ``float``, ``str`` and ``bytes``.  Anything else is
rejected up front with :class:`~repro.execution.executor.ExecutionError`
rather than leaking a driver-specific binding error.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..executor import ExecutionError

__all__ = ["DuckDBDriver", "SQLiteDriver", "create_driver", "quote_identifier"]


def quote_identifier(name: str) -> str:
    """Quote an arbitrary table/column name for SQL (``"`` doubled)."""
    return '"' + name.replace('"', '""') + '"'


_BINDABLE = (bool, int, float, str, bytes)


def _check_bindable(table: str, column: str, value: object) -> object:
    if value is None or isinstance(value, _BINDABLE):
        return value
    raise ExecutionError(
        f"SQL oracle cannot load {table}.{column}: unsupported value type "
        f"{type(value).__name__!r} (supported: None, bool, int, float, str, bytes)"
    )


class SQLiteDriver:
    """An in-memory stdlib ``sqlite3`` connection behind the driver surface."""

    name = "sqlite"

    def __init__(self) -> None:
        import sqlite3

        self._sqlite3 = sqlite3
        self._conn = None

    @property
    def connection(self):
        if self._conn is None:
            # The executor serializes all calls behind its own lock; sessions
            # may still touch the connection from different worker threads,
            # hence check_same_thread=False.
            self._conn = self._sqlite3.connect(":memory:", check_same_thread=False)
        return self._conn

    def reset(self) -> None:
        """Drop the whole engine state (next use reconnects fresh)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def query(self, sql: str) -> List[Tuple]:
        try:
            return self.connection.execute(sql).fetchall()
        except self._sqlite3.Error as exc:
            raise ExecutionError(f"SQL oracle ({self.name}) failed: {exc}\n{sql}") from exc

    def create_table(
        self, table: str, columns: Sequence[str], rows: Sequence[Sequence[object]]
    ) -> None:
        conn = self.connection
        if not columns:
            # A relation with rows but no columns (e.g. a scan of {} rows):
            # keep the cardinality in a single always-NULL placeholder.
            conn.execute(f"CREATE TABLE {quote_identifier(table)} (__void__)")
            conn.executemany(
                f"INSERT INTO {quote_identifier(table)} VALUES (NULL)",
                [() for _ in rows],
            )
            conn.commit()
            return
        decl = ", ".join(quote_identifier(column) for column in columns)
        conn.execute(f"CREATE TABLE {quote_identifier(table)} ({decl})")
        placeholders = ", ".join("?" for _ in columns)
        checked = [
            tuple(
                _check_bindable(table, column, value)
                for column, value in zip(columns, row)
            )
            for row in rows
        ]
        try:
            conn.executemany(
                f"INSERT INTO {quote_identifier(table)} VALUES ({placeholders})",
                checked,
            )
        except (self._sqlite3.Error, OverflowError) as exc:
            raise ExecutionError(
                f"SQL oracle ({self.name}) cannot load table {table!r}: {exc}"
            ) from exc
        conn.commit()

    def drop_table(self, table: str) -> None:
        self.connection.execute(f"DROP TABLE IF EXISTS {quote_identifier(table)}")


def _duckdb_type(values: List[object], table: str, column: str) -> str:
    kinds = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            kinds.add("bool")
        elif isinstance(value, int):
            kinds.add("int")
        elif isinstance(value, float):
            kinds.add("float")
        elif isinstance(value, str):
            kinds.add("str")
        elif isinstance(value, bytes):
            kinds.add("bytes")
        else:
            raise ExecutionError(
                f"SQL oracle cannot load {table}.{column}: unsupported value "
                f"type {type(value).__name__!r}"
            )
    if not kinds:
        return "VARCHAR"  # all-NULL column; comparisons against NULL are NULL anyway
    if kinds == {"bool"}:
        return "BOOLEAN"
    if kinds <= {"bool", "int"}:
        return "BIGINT"
    if kinds <= {"bool", "int", "float"}:
        return "DOUBLE"
    if kinds == {"str"}:
        return "VARCHAR"
    if kinds == {"bytes"}:
        return "BLOB"
    raise ExecutionError(
        f"SQL oracle cannot load {table}.{column}: mixed value kinds {sorted(kinds)} "
        f"have no common DuckDB column type"
    )


class DuckDBDriver:
    """A DuckDB in-memory connection (optional dependency)."""

    name = "duckdb"

    def __init__(self) -> None:
        try:
            import duckdb
        except ImportError as exc:  # pragma: no cover - exercised only sans duckdb
            raise ImportError(
                "the 'duckdb' executor backend requires the optional duckdb "
                "package (pip install duckdb); the stdlib 'sqlite' backend "
                "needs no extra dependency"
            ) from exc
        self._duckdb = duckdb
        self._conn = None

    @property
    def connection(self):
        if self._conn is None:
            self._conn = self._duckdb.connect(":memory:")
        return self._conn

    def reset(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def query(self, sql: str) -> List[Tuple]:
        try:
            return self.connection.execute(sql).fetchall()
        except self._duckdb.Error as exc:
            raise ExecutionError(f"SQL oracle ({self.name}) failed: {exc}\n{sql}") from exc

    def create_table(
        self, table: str, columns: Sequence[str], rows: Sequence[Sequence[object]]
    ) -> None:
        conn = self.connection
        if not columns:
            conn.execute(f"CREATE TABLE {quote_identifier(table)} (__void__ VARCHAR)")
            for _ in rows:
                conn.execute(f"INSERT INTO {quote_identifier(table)} VALUES (NULL)")
            return
        by_column: List[List[object]] = [[row[i] for row in rows] for i in range(len(columns))]
        decl = ", ".join(
            f"{quote_identifier(column)} {_duckdb_type(values, table, column)}"
            for column, values in zip(columns, by_column)
        )
        conn.execute(f"CREATE TABLE {quote_identifier(table)} ({decl})")
        if rows:
            placeholders = ", ".join("?" for _ in columns)
            try:
                conn.executemany(
                    f"INSERT INTO {quote_identifier(table)} VALUES ({placeholders})",
                    [tuple(row) for row in rows],
                )
            except self._duckdb.Error as exc:
                raise ExecutionError(
                    f"SQL oracle ({self.name}) cannot load table {table!r}: {exc}"
                ) from exc

    def drop_table(self, table: str) -> None:
        self.connection.execute(f"DROP TABLE IF EXISTS {quote_identifier(table)}")


_DRIVERS: Dict[str, type] = {"sqlite": SQLiteDriver, "duckdb": DuckDBDriver}


def create_driver(name: str):
    """Instantiate the named driver (``"sqlite"`` or ``"duckdb"``)."""
    try:
        cls = _DRIVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown SQL driver {name!r}; available: {', '.join(sorted(_DRIVERS))}"
        ) from None
    return cls()
