"""Package metadata for the reproduction.

Installable with ``pip install -e .``; ``pip install -e .[bench]`` adds the
benchmark harness and ``repro-experiments`` regenerates the paper's figures
from the command line.
"""

from setuptools import find_packages, setup

setup(
    name="repro-mqo",
    version="1.0.0",
    description=(
        "Reproduction of 'Efficient and Provable Multi-Query Optimization' "
        "(Kathuria & Sudarshan, PODS 2017) with a pluggable strategy "
        "registry and a persistent cross-batch serving layer that executes "
        "plans through a fingerprint-keyed materialization cache"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    extras_require={
        "test": ["pytest", "pytest-cov"],
        "bench": ["pytest", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
        ],
    },
)
