"""Regression tests for the executor-semantics bugs the SQL oracle flushed out.

Each class pins one fix, on every backend it applies to (the SQL oracle is
included wherever its value vocabulary allows), with data shaped so the
*pre-fix* code fails:

* mixed-type sort keys used to raise ``TypeError`` (``(value is None,
  value)`` compares ``int`` with ``str``);
* a grouping column missing from the input used to raise
  ``ColumnNotFound`` while the same column as an aggregate *input* silently
  degraded to ``None`` — now both follow SQL semantics (missing → NULL
  group), and only genuinely *ambiguous* references still raise;
* hash-join equi-column orientation probed ``left[0]``/``right[0]`` only,
  mis-raising on heterogeneous operands whose first row lacks the key; and
  NULL join keys matched each other in the hash path while the very same
  comparison was false in the residual/nested-loop path.
"""

import pytest

from repro.algebra.expressions import AggregateExpr, AggregateFunction, col, eq
from repro.algebra.properties import SortOrder
from repro.execution import ColumnarExecutor, Executor, SQLiteExecutor
from repro.execution.data import Database
from repro.execution.evaluate import AmbiguousColumn, total_order_key
from repro.optimizer.plan import PhysicalOp, PhysicalPlan

ALL_BACKENDS = [Executor, ColumnarExecutor, SQLiteExecutor]
PYTHON_BACKENDS = [Executor, ColumnarExecutor]


def plan(op, **kwargs):
    return PhysicalPlan(
        op=op,
        group=kwargs.pop("group", 0),
        cost=0.0,
        local_cost=0.0,
        rows=0.0,
        width=0.0,
        **kwargs,
    )


def scan(table, alias=None):
    return plan(PhysicalOp.TABLE_SCAN, table=table, alias=alias)


def canonical(rows):
    normalized = [tuple(sorted(row.items())) for row in rows]
    return sorted(
        normalized, key=lambda row: [(k, total_order_key(v)) for k, v in row]
    )


class TestMixedTypeSort:
    """Satellite 1: the sort key totally orders any pair of cell values."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_int_vs_str_sorts_instead_of_raising(self, backend):
        # A drifted replace_table turned some keys into strings.
        db = Database(
            {"t": [{"k": "b"}, {"k": 2}, {"k": None}, {"k": "a"}, {"k": 1}]}
        )
        node = plan(
            PhysicalOp.SORT, children=(scan("t"),), order=SortOrder((col("t.k"),))
        )
        # Pre-fix: TypeError('<' not supported between 'str' and 'int').
        rows = backend(db).execute(node)
        assert rows == [{"t.k": 1}, {"t.k": 2}, {"t.k": "a"}, {"t.k": "b"}, {"t.k": None}]

    @pytest.mark.parametrize("backend", PYTHON_BACKENDS)
    def test_mixed_numeric_and_masked_rows(self, backend):
        db = Database(
            {"t": [{"k": 1.5, "x": 1}, {"x": 2}, {"k": "z", "x": 3}, {"k": 0, "x": 4}]}
        )
        node = plan(
            PhysicalOp.SORT, children=(scan("t"),), order=SortOrder((col("t.k"),))
        )
        rows = backend(db).execute(node)
        # Numbers first, then text, then the missing-key row (sorts as None).
        assert [row["t.x"] for row in rows] == [4, 1, 3, 2]

    def test_total_order_key_is_total(self):
        values = [None, 3, 1.5, True, "a", "", b"\x00", object(), (1, 2)]
        keys = [total_order_key(v) for v in values]
        assert sorted(keys) == sorted(keys, reverse=False)  # comparable at all
        assert max(keys) == total_order_key(None)  # NULLs last
        assert total_order_key(1) < total_order_key("a") < total_order_key(b"z")

    def test_backends_agree_on_mixed_sort(self):
        db = Database(
            {"t": [{"k": v} for v in ["m", 7, None, 2.5, "a", 0, "zz", None, 41]]}
        )
        node = plan(
            PhysicalOp.SORT, children=(scan("t"),), order=SortOrder((col("t.k"),))
        )
        results = [cls(db).execute(node) for cls in ALL_BACKENDS]
        assert results[0] == results[1] == results[2]


class TestMissingGroupingColumn:
    """Satellite 2: SQL semantics — a missing grouping column is one NULL group."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_missing_group_by_becomes_null_group(self, backend):
        db = Database({"t": [{"v": 1}, {"v": 2}, {"v": 3}]})
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(scan("t"),),
            group_by=(col("t.gone"),),
            aggregates=(
                AggregateExpr(AggregateFunction.COUNT, None, "n"),
                AggregateExpr(AggregateFunction.SUM, col("t.v"), "s"),
            ),
        )
        # Pre-fix the Python backends raised ColumnNotFound here.
        assert backend(db).execute(node) == [{"t.gone": None, "n": 3, "s": 6}]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_missing_group_by_over_empty_input_stays_empty(self, backend):
        db = Database({"t": []})
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(scan("t"),),
            group_by=(col("t.gone"),),
            aggregates=(AggregateExpr(AggregateFunction.COUNT, None, "n"),),
        )
        assert backend(db).execute(node) == []

    @pytest.mark.parametrize("backend", PYTHON_BACKENDS)
    def test_partially_missing_key_groups_with_null(self, backend):
        # Heterogeneous input: rows without the key join the NULL group.
        db = Database({"t": [{"g": "a", "v": 1}, {"v": 2}, {"g": "a", "v": 3}]})
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(scan("t"),),
            group_by=(col("t.g"),),
            aggregates=(AggregateExpr(AggregateFunction.SUM, col("t.v"), "s"),),
        )
        assert canonical(backend(db).execute(node)) == canonical(
            [{"t.g": "a", "s": 4}, {"t.g": None, "s": 2}]
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_ambiguous_group_by_still_raises(self, backend):
        db = Database({"l": [{"name": "x", "k": 1}], "r": [{"name": "y", "k": 1}]})
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(
                plan(
                    PhysicalOp.MERGE_JOIN,
                    children=(scan("l"), scan("r")),
                    predicate=eq(col("l.k"), col("r.k")),
                ),
            ),
            group_by=(col("name"),),  # matches l.name AND r.name
            aggregates=(AggregateExpr(AggregateFunction.COUNT, None, "n"),),
        )
        with pytest.raises(AmbiguousColumn):
            backend(db).execute(node)


class TestHashJoinOrientationAndNullKeys:
    """Satellite 3: schema-based orientation; NULL keys never match."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_key_absent_from_first_row_still_joins(self, backend):
        # Pre-fix the row backend probed left[0] only and mis-raised
        # ExecutionError('unknown alias?') even though later rows carry l.k.
        db = Database(
            {
                "l": [{"other": 9}, {"k": 1, "other": 10}, {"k": 2, "other": 20}],
                "r": [{"k": 1, "b": 100}, {"k": 2, "b": 200}],
            }
        )
        node = plan(
            PhysicalOp.MERGE_JOIN,
            children=(scan("l"), scan("r")),
            predicate=eq(col("l.k"), col("r.k")),
        )
        assert canonical(backend(db).execute(node)) == canonical(
            [
                {"l.k": 1, "l.other": 10, "r.k": 1, "r.b": 100},
                {"l.k": 2, "l.other": 20, "r.k": 2, "r.b": 200},
            ]
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_null_join_keys_never_match(self, backend):
        # SQL semantics (and the executors' own nested-loop/residual path):
        # NULL = NULL is not a match.  Pre-fix, the Python hash paths
        # bucketed None keys together and emitted the None⋈None pairs.
        db = Database(
            {
                "l": [{"k": 1, "a": 1}, {"k": None, "a": 2}, {"k": 3, "a": 3}],
                "r": [{"k": 1, "b": 1}, {"k": None, "b": 2}, {"k": 4, "b": 3}],
            }
        )
        node = plan(
            PhysicalOp.MERGE_JOIN,
            children=(scan("l"), scan("r")),
            predicate=eq(col("l.k"), col("r.k")),
        )
        assert backend(db).execute(node) == [
            {"l.k": 1, "l.a": 1, "r.k": 1, "r.b": 1}
        ]

    @pytest.mark.parametrize("backend", PYTHON_BACKENDS)
    def test_hash_path_agrees_with_nested_loop_on_nulls(self, backend):
        db = Database(
            {
                "l": [{"k": None}, {"k": 2}],
                "r": [{"k": None}, {"k": 2}],
            }
        )
        equi = plan(
            PhysicalOp.MERGE_JOIN,
            children=(scan("l"), scan("r")),
            predicate=eq(col("l.k"), col("r.k")),
        )
        executor = backend(db)
        hashed = executor.execute(equi)
        assert hashed == [{"l.k": 2, "r.k": 2}]

    @pytest.mark.parametrize("backend", PYTHON_BACKENDS)
    def test_multi_column_keys_with_heterogeneous_rows(self, backend):
        db = Database(
            {
                "l": [
                    {"x": 9},  # lacks both key columns: matches nothing
                    {"k1": 1, "k2": "a", "x": 1},
                    {"k1": 1, "k2": None, "x": 2},  # NULL component: no match
                ],
                "r": [{"k1": 1, "k2": "a", "y": 7}, {"k1": 1, "k2": "b", "y": 8}],
            }
        )
        node = plan(
            PhysicalOp.MERGE_JOIN,
            children=(scan("l"), scan("r")),
            predicate=eq(col("l.k1"), col("r.k1")) & eq(col("l.k2"), col("r.k2")),
        )
        assert canonical(backend(db).execute(node)) == canonical(
            [{"l.k1": 1, "l.k2": "a", "l.x": 1, "r.k1": 1, "r.k2": "a", "r.y": 7}]
        )
