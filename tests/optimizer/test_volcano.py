"""Tests for plan extraction, bestCost and the incremental engine."""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, lt
from repro.algebra.logical import QueryBatch
from repro.algebra.properties import SortOrder
from repro.catalog.tpcd import tpcd_catalog
from repro.dag.sharing import MaterializationChoice, build_batch_dag
from repro.optimizer.best_cost import BestCostEngine
from repro.optimizer.plan import PhysicalOp
from repro.optimizer.volcano import VolcanoOptimizer, normalize_materialized


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(1)


def pair_batch(cutoff_a=19950101, cutoff_b=19950101):
    def make(name, cutoff):
        return (
            qb.scan("orders")
            .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
            .filter(lt(col("o_orderdate"), cutoff))
            .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
            .query(name)
        )

    return QueryBatch("pair", (make("A", cutoff_a), make("B", cutoff_b)))


@pytest.fixture(scope="module")
def dag(catalog):
    return build_batch_dag(pair_batch(), catalog)


@pytest.fixture(scope="module")
def optimizer(dag):
    return VolcanoOptimizer(dag)


class TestNormalizeMaterialized:
    def test_mixed_elements(self):
        order = SortOrder((col("x"),))
        normalized = normalize_materialized([3, MaterializationChoice(3, order), 5])
        assert set(normalized) == {3, 5}
        assert SortOrder() in normalized[3]
        assert order in normalized[3]
        assert normalized[5] == (SortOrder(),)


class TestPlanExtraction:
    def test_plan_costs_are_positive_and_consistent(self, dag, optimizer):
        plan = optimizer.optimize_query("A")
        assert plan.cost > 0
        # Total cost is at least the sum of the children's costs plus local.
        for node in plan.iter_nodes():
            child_total = sum(c.cost for c in node.children)
            assert node.cost == pytest.approx(child_total + node.local_cost, rel=1e-9)

    def test_required_order_is_respected(self, dag, optimizer):
        root = dag.query_roots["A"]
        order = SortOrder((col("o_orderdate", "orders"),))
        plan = optimizer.optimize_group(root, order=order)
        assert plan.order.satisfies(order)

    def test_requiring_an_order_never_cheaper(self, dag, optimizer):
        root = dag.query_roots["A"]
        free = optimizer.optimize_group(root)
        ordered = optimizer.optimize_group(
            root, order=SortOrder((col("o_orderdate", "orders"),))
        )
        assert ordered.cost >= free.cost - 1e-9

    def test_clustered_index_provides_order(self, dag, optimizer):
        # The lineitem scan delivers the clustered-index order on l_orderkey.
        scan_group = next(
            g.id for g in dag.memo if getattr(g.signature, "table", None) == "lineitem"
        )
        plan = optimizer.optimize_group(
            scan_group, order=SortOrder((col("l_orderkey", "lineitem"),))
        )
        assert plan.op is PhysicalOp.TABLE_SCAN
        assert not any(n.op is PhysicalOp.SORT for n in plan.iter_nodes())

    def test_aggregate_plan_shape(self, dag, optimizer):
        plan = optimizer.optimize_query("A")
        assert plan.op in (PhysicalOp.SORT_AGGREGATE, PhysicalOp.SCALAR_AGGREGATE)
        assert plan.operator_count() >= 3
        assert "SortAggregate" in plan.pretty() or "ScalarAggregate" in plan.pretty()


class TestBestCost:
    def test_empty_set_has_no_overhead(self, dag, optimizer):
        result = optimizer.best_cost(frozenset())
        assert result.overhead_cost == 0
        assert result.total_cost == pytest.approx(result.use_cost)
        assert set(result.query_plans) == {"A", "B"}

    def test_materialization_adds_overhead_and_reuse(self, dag, optimizer):
        shared = dag.query_roots["A"]
        assert shared == dag.query_roots["B"]
        result = optimizer.best_cost(frozenset({shared}))
        assert result.overhead_cost > 0
        assert shared in result.materialization_plans
        # Both queries should read the materialized root.
        for plan in result.query_plans.values():
            assert shared in plan.uses_materialized()

    def test_identical_queries_benefit_from_sharing(self, dag, optimizer):
        baseline = optimizer.best_cost(frozenset()).total_cost
        shared = dag.query_roots["A"]
        with_sharing = optimizer.best_cost(frozenset({shared})).total_cost
        assert with_sharing < baseline

    def test_sorted_candidate_at_least_as_expensive_to_produce(self, dag, optimizer):
        shared = dag.query_roots["A"]
        sorted_candidate = MaterializationChoice(
            shared, SortOrder((col("o_orderdate", "orders"),))
        )
        unsorted = optimizer.best_cost(frozenset({shared}))
        sorted_result = optimizer.best_cost(frozenset({sorted_candidate}))
        assert sorted_result.overhead_cost >= unsorted.overhead_cost - 1e-9

    def test_use_cost_monotone_in_materialized_set(self, dag, optimizer):
        candidates = dag.shareable_nodes()[:3]
        previous = optimizer.best_cost(frozenset()).use_cost
        chosen = set()
        for gid in candidates:
            chosen.add(gid)
            current = optimizer.best_cost(frozenset(chosen)).use_cost
            assert current <= previous + 1e-6
            previous = current


class TestBestCostEngine:
    def test_result_cache_hits(self, dag):
        engine = BestCostEngine(dag)
        engine.cost(frozenset())
        engine.cost(frozenset())
        assert engine.statistics.result_cache_hits >= 1

    def test_incremental_equals_full(self, dag):
        incremental = BestCostEngine(dag, incremental=True)
        full = BestCostEngine(dag, incremental=False)
        candidates = list(dag.shareable_candidates())[:6]
        subsets = [frozenset(), frozenset(candidates[:1]), frozenset(candidates[:2]),
                   frozenset(candidates[1:3])]
        for subset in subsets:
            assert incremental.cost(subset) == pytest.approx(full.cost(subset), rel=1e-9)
        assert incremental.statistics.incremental_evaluations >= 1

    def test_use_cost_and_volcano_cost(self, dag):
        engine = BestCostEngine(dag)
        assert engine.use_cost(frozenset()) == pytest.approx(engine.volcano_cost())

    def test_standalone_costs_positive(self, dag):
        engine = BestCostEngine(dag)
        costs = engine.standalone_materialization_costs(dag.shareable_candidates())
        assert costs
        assert all(value > 0 for value in costs.values())
        # The sorted variant of a node can never be cheaper to produce.
        by_group = {}
        for candidate, value in costs.items():
            by_group.setdefault(candidate.group, {})[bool(candidate.order)] = value
        for variants in by_group.values():
            if True in variants and False in variants:
                assert variants[True] >= variants[False] - 1e-9
