"""Normalization of logical plans into SPJA query blocks.

The join-reordering search space of the Volcano LQDAG is generated per
*block*: a set of sources (base relations or derived tables), a conjunction
of predicates, an optional aggregation, optional residual (HAVING)
predicates and an optional final projection.  Aggregations and derived
tables are block boundaries.

:func:`normalize` turns a logical operator tree into this block form, and
:func:`bind_block` resolves unqualified column references against the
catalog and the sources visible in each block (TPC-D column names are
globally unique which keeps queries readable, but the DAG machinery wants
every reference qualified by its source alias).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.expressions import (
    AggregateExpr,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjuncts,
)
from ..algebra.logical import (
    Aggregate,
    DerivedTable,
    Join,
    LogicalPlan,
    Project,
    Query,
    Relation,
    Select,
)
from ..catalog.catalog import Catalog

__all__ = [
    "Source",
    "Aggregation",
    "QueryBlock",
    "NormalizationError",
    "BindingError",
    "normalize",
    "normalize_query",
    "bind_block",
]


class NormalizationError(ValueError):
    """Raised when a logical plan cannot be normalized into SPJA blocks."""


class BindingError(ValueError):
    """Raised when a column reference cannot be resolved to a source."""


@dataclass(frozen=True)
class Source:
    """A source of an SPJ block: a base table or a nested (derived) block."""

    alias: str
    table: Optional[str] = None
    block: Optional["QueryBlock"] = None

    def __post_init__(self) -> None:
        if (self.table is None) == (self.block is None):
            raise NormalizationError(
                "a source must reference exactly one of a base table or a derived block"
            )

    @property
    def is_base(self) -> bool:
        return self.table is not None


@dataclass(frozen=True)
class Aggregation:
    """Grouping keys and aggregate expressions applied on top of a block."""

    group_by: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggregateExpr, ...]


@dataclass(frozen=True)
class QueryBlock:
    """One SPJA block: sources, predicates, optional aggregation and HAVING."""

    sources: Tuple[Source, ...]
    predicates: Tuple[Predicate, ...] = ()
    aggregation: Optional[Aggregation] = None
    having: Tuple[Predicate, ...] = ()
    projection: Optional[Tuple[ColumnRef, ...]] = None

    def __post_init__(self) -> None:
        if not self.sources:
            raise NormalizationError("a query block needs at least one source")
        aliases = [s.alias for s in self.sources]
        if len(aliases) != len(set(aliases)):
            raise NormalizationError(f"duplicate source aliases in block: {aliases}")

    @property
    def aliases(self) -> Tuple[str, ...]:
        return tuple(s.alias for s in self.sources)

    def output_columns(self, catalog: Optional[Catalog] = None) -> Tuple[str, ...]:
        """The column names this block exposes to an enclosing block."""
        if self.aggregation is not None:
            names = [c.name for c in self.aggregation.group_by]
            names += [a.alias for a in self.aggregation.aggregates]
            return tuple(names)
        if self.projection is not None:
            return tuple(c.name for c in self.projection)
        names: List[str] = []
        for source in self.sources:
            if source.is_base:
                if catalog is not None and catalog.has_table(source.table):
                    names.extend(catalog.table(source.table).column_names)
            else:
                names.extend(source.block.output_columns(catalog))
        return tuple(names)


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


@dataclass
class _BlockState:
    """Mutable accumulator used while walking a logical plan."""

    sources: List[Source] = field(default_factory=list)
    predicates: List[Predicate] = field(default_factory=list)
    aggregation: Optional[Aggregation] = None
    having: List[Predicate] = field(default_factory=list)
    projection: Optional[Tuple[ColumnRef, ...]] = None

    def freeze(self) -> QueryBlock:
        return QueryBlock(
            sources=tuple(self.sources),
            predicates=tuple(self.predicates),
            aggregation=self.aggregation,
            having=tuple(self.having),
            projection=self.projection,
        )


def normalize(plan: LogicalPlan) -> QueryBlock:
    """Normalize a logical plan into a (possibly nested) :class:`QueryBlock`."""
    return _collect(plan).freeze()


def normalize_query(query: Query) -> QueryBlock:
    return normalize(query.plan)


def _collect(plan: LogicalPlan) -> _BlockState:
    if isinstance(plan, Relation):
        state = _BlockState()
        state.sources.append(Source(alias=plan.name, table=plan.table))
        return state

    if isinstance(plan, DerivedTable):
        inner = normalize(plan.child)
        state = _BlockState()
        state.sources.append(Source(alias=plan.alias, block=inner))
        return state

    if isinstance(plan, Join):
        left = _collect(plan.left)
        right = _collect(plan.right)
        for side, name in ((left, "left"), (right, "right")):
            if side.aggregation is not None or side.having or side.projection is not None:
                raise NormalizationError(
                    f"the {name} input of a join contains an aggregation or projection; "
                    "wrap it in a DerivedTable (builder: .as_derived(alias)) to join it"
                )
        state = _BlockState()
        state.sources = left.sources + right.sources
        state.predicates = left.predicates + right.predicates
        if plan.predicate is not None:
            state.predicates.extend(conjuncts(plan.predicate))
        return state

    if isinstance(plan, Select):
        state = _collect(plan.child)
        if state.aggregation is None:
            state.predicates.extend(conjuncts(plan.predicate))
        else:
            state.having.extend(conjuncts(plan.predicate))
        return state

    if isinstance(plan, Aggregate):
        state = _collect(plan.child)
        if state.aggregation is not None:
            raise NormalizationError(
                "aggregate over aggregate is not supported directly; "
                "wrap the inner aggregation in a DerivedTable"
            )
        state.aggregation = Aggregation(tuple(plan.group_by), tuple(plan.aggregates))
        return state

    if isinstance(plan, Project):
        state = _collect(plan.child)
        state.projection = tuple(plan.columns)
        return state

    raise NormalizationError(f"cannot normalize operator {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Binding
# ---------------------------------------------------------------------------


def _source_columns(source: Source, catalog: Catalog) -> Tuple[str, ...]:
    if source.is_base:
        return catalog.table(source.table).column_names
    return source.block.output_columns(catalog)


def _qualify(column: ColumnRef, owners: Dict[str, List[str]], aliases: Sequence[str]) -> ColumnRef:
    if column.qualifier is not None:
        if column.qualifier not in aliases:
            raise BindingError(
                f"column {column} references unknown source {column.qualifier!r}; "
                f"available sources: {sorted(aliases)}"
            )
        return column
    candidates = owners.get(column.name, [])
    if len(candidates) == 1:
        return column.with_qualifier(candidates[0])
    if not candidates:
        raise BindingError(f"column {column.name!r} is not provided by any source in the block")
    raise BindingError(
        f"column {column.name!r} is ambiguous between sources {sorted(candidates)}; qualify it"
    )


def _bind_predicate(predicate: Predicate, owners, aliases) -> Predicate:
    if isinstance(predicate, TruePredicate):
        return predicate
    if isinstance(predicate, Comparison):
        left = _qualify(predicate.left, owners, aliases)
        right = predicate.right
        if isinstance(right, ColumnRef):
            right = _qualify(right, owners, aliases)
        return Comparison(left, predicate.op, right)
    if isinstance(predicate, Between):
        return Between(_qualify(predicate.column, owners, aliases), predicate.low, predicate.high)
    if isinstance(predicate, InList):
        return InList(_qualify(predicate.column, owners, aliases), predicate.values)
    if isinstance(predicate, And):
        return And(tuple(_bind_predicate(p, owners, aliases) for p in predicate.operands))
    if isinstance(predicate, Or):
        return Or(tuple(_bind_predicate(p, owners, aliases) for p in predicate.operands))
    if isinstance(predicate, Not):
        return Not(_bind_predicate(predicate.operand, owners, aliases))
    raise BindingError(f"cannot bind predicate of type {type(predicate).__name__}")


def bind_block(block: QueryBlock, catalog: Catalog) -> QueryBlock:
    """Qualify every column reference in the block (recursively) by its source alias."""
    bound_sources: List[Source] = []
    for source in block.sources:
        if source.is_base:
            if not catalog.has_table(source.table):
                raise BindingError(f"unknown table {source.table!r}")
            bound_sources.append(source)
        else:
            bound_sources.append(Source(alias=source.alias, block=bind_block(source.block, catalog)))

    owners: Dict[str, List[str]] = {}
    for source in bound_sources:
        for column in _source_columns(source, catalog):
            owners.setdefault(column, []).append(source.alias)
    aliases = [s.alias for s in bound_sources]

    predicates = tuple(_bind_predicate(p, owners, aliases) for p in block.predicates)

    aggregation = block.aggregation
    if aggregation is not None:
        group_by = tuple(_qualify(c, owners, aliases) for c in aggregation.group_by)
        aggregates = tuple(
            AggregateExpr(
                a.func,
                _qualify(a.column, owners, aliases) if a.column is not None else None,
                a.alias,
            )
            for a in aggregation.aggregates
        )
        aggregation = Aggregation(group_by, aggregates)

    having_owners = owners
    having_aliases = aliases
    if aggregation is not None:
        # HAVING predicates reference the aggregation's output columns.
        having_owners = {name: ["_agg"] for name in
                         [c.name for c in aggregation.group_by] + [a.alias for a in aggregation.aggregates]}
        having_aliases = ["_agg"]
    having = tuple(_bind_predicate(p, having_owners, having_aliases) for p in block.having)

    projection = block.projection
    if projection is not None and aggregation is None:
        projection = tuple(_qualify(c, owners, aliases) for c in projection)

    return QueryBlock(
        sources=tuple(bound_sources),
        predicates=predicates,
        aggregation=aggregation,
        having=having,
        projection=projection,
    )
