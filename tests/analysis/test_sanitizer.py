"""Unit contracts for the runtime concurrency sanitizer."""

import threading

import pytest

from repro.analysis.sanitizer import (
    SanitizedLock,
    SanitizerState,
    record_io,
    sanitize_enabled,
    sanitize_lock,
    sanitizer_state,
)
from repro.obs import Observability


@pytest.fixture(autouse=True)
def clean_state():
    sanitizer_state().reset()
    yield
    sanitizer_state().reset()


# ------------------------------------------------------------------- gating


def test_disabled_returns_the_bare_lock(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    lock = threading.RLock()
    assert sanitize_lock(lock, "x") is lock
    assert not sanitize_enabled()


def test_falsy_values_disable(monkeypatch):
    for value in ("", "0", "false", "no", "off", "OFF"):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_enabled()


def test_enabled_wraps(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    wrapped = sanitize_lock(threading.RLock(), "x")
    assert isinstance(wrapped, SanitizedLock)
    assert wrapped.role == "x"


def test_record_io_is_free_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    record_io("spill.write")
    assert sanitizer_state().io_events() == {}


# --------------------------------------------------------------- lock graph


def _locks(monkeypatch, *roles):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    return [sanitize_lock(threading.RLock(), role) for role in roles]


def test_nested_acquisition_records_an_edge(monkeypatch):
    a, b = _locks(monkeypatch, "a", "b")
    with a:
        with b:
            pass
    assert sanitizer_state().edges() == {"a": {"b"}}
    assert sanitizer_state().cycles() == []


def test_consistent_order_stays_acyclic(monkeypatch):
    a, b, c = _locks(monkeypatch, "a", "b", "c")
    for _ in range(3):
        with a:
            with b:
                with c:
                    pass
    assert sanitizer_state().cycles() == []


def test_inverted_order_across_threads_is_a_cycle(monkeypatch):
    a, b = _locks(monkeypatch, "a", "b")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    t1 = threading.Thread(target=forward)
    t1.start()
    t1.join()
    t2 = threading.Thread(target=backward)
    t2.start()
    t2.join()
    cycles = sanitizer_state().cycles()
    assert cycles, "inverted acquisition order must produce a cycle"
    assert set(cycles[0]) == {"a", "b"}


def test_rlock_reentry_adds_no_self_edge(monkeypatch):
    (a,) = _locks(monkeypatch, "a")
    with a:
        with a:
            pass
    assert sanitizer_state().edges() == {}
    assert sanitizer_state().cycles() == []


def test_same_role_sibling_locks_add_no_self_edge(monkeypatch):
    a1, a2 = _locks(monkeypatch, "session", "session")
    with a1:
        with a2:
            pass
    assert sanitizer_state().edges() == {}


def test_held_roles_tracks_the_current_thread(monkeypatch):
    a, b = _locks(monkeypatch, "a", "b")
    with a:
        with b:
            assert sanitizer_state().held_roles() == ("a", "b")
        assert sanitizer_state().held_roles() == ("a",)
    assert sanitizer_state().held_roles() == ()


def test_acquire_release_protocol_compatible(monkeypatch):
    (a,) = _locks(monkeypatch, "a")
    assert a.acquire() is True
    assert sanitizer_state().held_roles() == ("a",)
    a.release()
    assert sanitizer_state().held_roles() == ()


def test_counters_reported_to_obs(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    obs = Observability()
    lock = sanitize_lock(threading.RLock(), "a", obs=obs)
    with lock:
        pass
    counter = obs.counter("sanitizer_lock_acquisitions_total", role="a")
    assert counter.value == 1


# ------------------------------------------------------------ io under lock


def test_io_under_lock_is_recorded(monkeypatch):
    (a,) = _locks(monkeypatch, "spillcache")
    obs = Observability()
    with a:
        record_io("spill.write", obs=obs, key="deadbeef")
    events = sanitizer_state().io_events()
    assert events == {(("spillcache",), "spill.write"): 1}
    counter = obs.counter(
        "sanitizer_io_under_lock_total", kind="spill.write", locks="spillcache"
    )
    assert counter.value == 1


def test_io_without_held_lock_is_not_recorded(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    record_io("spill.write")
    assert sanitizer_state().io_events() == {}


# ------------------------------------------------------------------ reports


def test_report_is_json_shaped(monkeypatch):
    import json

    a, b = _locks(monkeypatch, "a", "b")
    with a:
        with b:
            record_io("x.io")
    report = sanitizer_state().report()
    json.dumps(report)  # must be serializable as-is
    assert report["enabled"] is True
    assert report["lock_order_edges"] == {"a": ["b"]}
    assert report["cycles"] == []
    assert report["io_under_lock"] == [
        {"locks": ["a", "b"], "kind": "x.io", "count": 1}
    ]
    assert "a->b" in report["edge_examples"]


def test_reset_clears_everything(monkeypatch):
    a, b = _locks(monkeypatch, "a", "b")
    with a:
        with b:
            record_io("x.io")
    state = sanitizer_state()
    state.reset()
    assert state.edges() == {}
    assert state.io_events() == {}
    assert state.cycles() == []


def test_private_state_instances_are_isolated(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    private = SanitizerState()
    lock = SanitizedLock(threading.RLock(), "a", state=private)
    with lock:
        pass
    assert private.report()["acquisitions"] == {"a": 1}
    assert sanitizer_state().report()["acquisitions"] == {}
