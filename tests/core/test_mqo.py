"""Tests for the MultiQueryOptimizer facade and the MQO benefit oracles."""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, lt
from repro.algebra.logical import Query, QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.core.benefit import (
    BestCostFunction,
    MaterializationBenefit,
    UseCostBenefit,
    mqo_decomposition,
)
from repro.core.mqo import STRATEGIES, MultiQueryOptimizer
from repro.workloads.synthetic import example1_batch, example1_catalog


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.05)


@pytest.fixture(scope="module")
def batch():
    def make(name, cutoff):
        return (
            qb.scan("orders")
            .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
            .filter(lt(col("o_orderdate"), cutoff))
            .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
            .query(name)
        )

    return QueryBatch("pair", (make("A", 19950101), make("B", 19950101)))


@pytest.fixture(scope="module")
def mqo(catalog):
    return MultiQueryOptimizer(catalog)


class TestBenefitOracles:
    @pytest.fixture(scope="class")
    def engine(self, mqo, batch):
        dag = mqo.build_dag(batch)
        return mqo.make_engine(dag)

    def test_best_cost_function(self, engine):
        bc = BestCostFunction(engine)
        assert len(bc.universe) >= 1
        assert bc.value(frozenset()) > 0

    def test_materialization_benefit_normalized(self, engine):
        mb = MaterializationBenefit(engine)
        assert mb.value(frozenset()) == pytest.approx(0.0)
        assert mb.baseline == pytest.approx(engine.volcano_cost())

    def test_use_cost_benefit_monotone_on_samples(self, engine):
        fm = UseCostBenefit(engine)
        elements = sorted(fm.universe, key=repr)[:3]
        previous = 0.0
        chosen = set()
        for element in elements:
            chosen.add(element)
            value = fm.value(frozenset(chosen))
            assert value >= previous - 1e-6
            previous = value

    def test_mqo_decomposition_use_cost(self, engine):
        decomposition = mqo_decomposition(engine, kind="use-cost")
        assert decomposition.universe == BestCostFunction(engine).universe
        for element in list(decomposition.universe)[:3]:
            assert decomposition.element_cost(element) > 0

    def test_unknown_decomposition_kind(self, engine):
        with pytest.raises(ValueError):
            mqo_decomposition(engine, kind="nope")


class TestMultiQueryOptimizer:
    def test_all_strategies_run(self, mqo, batch):
        results = mqo.compare(batch, strategies=("volcano", "greedy", "marginal-greedy", "share-all"))
        volcano = results["volcano"].total_cost
        for name, result in results.items():
            assert result.total_cost <= volcano + 1e-6
            assert result.batch_name == "pair"
        assert results["volcano"].materialized_count == 0

    def test_unknown_strategy_rejected(self, mqo, batch):
        with pytest.raises(ValueError):
            mqo.optimize(batch, strategy="magic")

    def test_accepts_plain_query_sequence(self, mqo):
        query = (
            qb.scan("orders")
            .filter(lt(col("o_orderdate"), 19950101))
            .aggregate([], [("count", None, "n")])
            .query("single")
        )
        result = mqo.optimize([query], strategy="volcano")
        assert result.total_cost > 0

    def test_cardinality_limits_materializations(self, mqo, batch):
        limited = mqo.optimize(batch, strategy="greedy", cardinality=1)
        assert limited.materialized_count <= 1

    def test_eager_variants(self, mqo, batch):
        lazy = mqo.optimize(batch, strategy="greedy", lazy=True)
        eager = mqo.optimize(batch, strategy="greedy", lazy=False)
        assert lazy.total_cost == pytest.approx(eager.total_cost, rel=1e-9)

    def test_exhaustive_matches_or_beats_greedy_on_small_universe(self):
        catalog = example1_catalog()
        batch = example1_batch()
        optimizer = MultiQueryOptimizer(catalog)
        results = optimizer.compare(batch, strategies=("greedy", "exhaustive"))
        assert results["exhaustive"].total_cost <= results["greedy"].total_cost + 1e-6

    def test_summary_lists_materializations(self, mqo, batch):
        result = mqo.optimize(batch, strategy="greedy")
        summary = result.summary()
        assert "strategy" in summary
        if result.materialized_count:
            assert result.materialized_labels[0].split(":")[0] in summary

    def test_strategies_constant(self):
        assert "marginal-greedy" in STRATEGIES
