"""The spill codec: exact, self-describing serialization of cached row sets.

The disk tier of the serving layer
(:class:`~repro.storage.spill.SpillingMaterializationCache`) persists
materialized row sets in per-entry **spill files**.  Durability only counts
if recovery is *bit-identical*, so the codec here is deliberately not JSON:
it is a small type-tagged binary format that round-trips every value the
executor produces exactly —

* ``None``, ``bool``, arbitrary-precision ``int``, ``float`` (IEEE-754
  binary64, so ``-0.0`` and the full precision survive), ``str`` (UTF-8,
  non-ASCII included), ``bytes``,
* ``tuple`` and ``list`` (kept distinct — JSON would collapse tuples into
  lists), nested to any depth, and
* ``dict`` rows with string keys.

A decoded row set compares ``==`` to what was encoded and therefore has the
identical :func:`~repro.service.matcache.estimate_rows_bytes` accounting —
the property tests assert both.

A spill **file** wraps one encoded row set with everything needed to trust
it after a crash: a magic line, a JSON header (cache key, data-version
token, recompute cost, row count, payload length) and a SHA-256 checksum of
the payload.  :func:`read_spill_file` verifies all of it; truncated,
bit-flipped or mis-keyed files raise :class:`SpillFormatError`, which the
cache layer turns into a clean miss (never a crash, never stale rows).

The module is dependency-free (standard library only) and imports nothing
from :mod:`repro.service`, so the feedback store and the cache tier can both
build on it without import cycles.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "SPILL_FORMAT",
    "SpillCodecError",
    "SpillError",
    "SpillFormatError",
    "SpillHeader",
    "decode_rows",
    "decode_value",
    "encode_rows",
    "encode_value",
    "read_spill_file",
    "read_spill_header",
    "wire_token",
    "write_spill_file",
]

Row = Dict[str, object]

#: Bump when the on-disk layout changes; readers reject unknown versions.
SPILL_FORMAT = 1

MAGIC = b"REPRO-SPILL\n"


class SpillError(Exception):
    """Base class for everything the spill tier can raise."""


class SpillCodecError(SpillError):
    """A value the codec cannot represent was passed to ``encode``."""


class SpillFormatError(SpillError):
    """A spill file or payload is truncated, corrupt or mis-versioned."""


# ---------------------------------------------------------------------------
# Value codec: type-tagged binary encoding with exact round trips.
# ---------------------------------------------------------------------------

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TUPLE = b"t"
_TAG_LIST = b"l"
_TAG_DICT = b"d"

_DOUBLE = struct.Struct(">d")


def _write_uvarint(out: io.BytesIO, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_uvarint(buf: memoryview, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise SpillFormatError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63 + 7:  # > 2**70: nothing the codec writes is this long
            raise SpillFormatError("varint out of range")


def _encode_value(out: io.BytesIO, value: object) -> None:
    if value is None:
        out.write(_TAG_NONE)
    elif value is True:
        out.write(_TAG_TRUE)
    elif value is False:
        out.write(_TAG_FALSE)
    elif isinstance(value, int):
        # bool is handled above; arbitrary-precision two's complement.
        length = max(1, (value.bit_length() + 8) // 8)
        out.write(_TAG_INT)
        _write_uvarint(out, length)
        out.write(value.to_bytes(length, "big", signed=True))
    elif isinstance(value, float):
        out.write(_TAG_FLOAT)
        out.write(_DOUBLE.pack(value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.write(_TAG_STR)
        _write_uvarint(out, len(encoded))
        out.write(encoded)
    elif isinstance(value, bytes):
        out.write(_TAG_BYTES)
        _write_uvarint(out, len(value))
        out.write(value)
    elif isinstance(value, tuple):
        out.write(_TAG_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, list):
        out.write(_TAG_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.write(_TAG_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpillCodecError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            encoded = key.encode("utf-8")
            _write_uvarint(out, len(encoded))
            out.write(encoded)
            _encode_value(out, item)
    else:
        raise SpillCodecError(f"cannot encode a value of type {type(value).__name__}")


def _decode_value(buf: memoryview, pos: int) -> Tuple[object, int]:
    if pos >= len(buf):
        raise SpillFormatError("truncated value")
    tag = bytes(buf[pos : pos + 1])
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise SpillFormatError("truncated int")
        return int.from_bytes(buf[pos : pos + length], "big", signed=True), pos + length
    if tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise SpillFormatError("truncated float")
        return _DOUBLE.unpack_from(buf, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise SpillFormatError("truncated string")
        try:
            return str(buf[pos : pos + length], "utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise SpillFormatError(f"corrupt UTF-8 payload: {exc}") from None
    if tag == _TAG_BYTES:
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise SpillFormatError("truncated bytes")
        return bytes(buf[pos : pos + length]), pos + length
    if tag in (_TAG_TUPLE, _TAG_LIST):
        count, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_DICT:
        count, pos = _read_uvarint(buf, pos)
        row: Dict[str, object] = {}
        for _ in range(count):
            length, pos = _read_uvarint(buf, pos)
            if pos + length > len(buf):
                raise SpillFormatError("truncated dict key")
            try:
                key = str(buf[pos : pos + length], "utf-8")
            except UnicodeDecodeError as exc:
                raise SpillFormatError(f"corrupt UTF-8 dict key: {exc}") from None
            pos += length
            row[key], pos = _decode_value(buf, pos)
        return row, pos
    raise SpillFormatError(f"unknown type tag {tag!r}")


def encode_value(value: object) -> bytes:
    """Encode one value; ``decode_value(encode_value(v)) == v`` exactly."""
    out = io.BytesIO()
    _encode_value(out, value)
    return out.getvalue()


def decode_value(payload: bytes) -> object:
    """Decode one value, rejecting trailing garbage and truncation."""
    value, pos = _decode_value(memoryview(payload), 0)
    if pos != len(payload):
        raise SpillFormatError(f"{len(payload) - pos} trailing bytes after value")
    return value


def encode_rows(rows: Sequence[Row]) -> bytes:
    """Encode a materialized row set (a list of string-keyed dict rows)."""
    return encode_value(list(rows))


def decode_rows(payload: bytes) -> List[Row]:
    """Decode a row set, verifying the expected list-of-dicts shape."""
    value = decode_value(payload)
    if not isinstance(value, list) or any(not isinstance(row, dict) for row in value):
        raise SpillFormatError("payload is not a row set (list of dict rows)")
    return value


# ---------------------------------------------------------------------------
# Data-version tokens on the wire.
# ---------------------------------------------------------------------------


def wire_token(token: object) -> object:
    """A token in its canonical comparable/JSON-safe form.

    Spill files and feedback snapshots carry the data-version token they
    were written under; after a JSON round trip tuples come back as lists,
    so both the stored and the live token are normalized through this
    function before comparison (tuples and lists collapse to tuples,
    scalars pass through, anything else compares by ``repr`` — which can
    never accidentally equal a *different* process's token for
    content-derived tokens, and intentionally never survives a restart for
    identity-derived ones).
    """
    if isinstance(token, (tuple, list)):
        return tuple(wire_token(item) for item in token)
    if token is None or isinstance(token, (bool, int, float, str)):
        return token
    return repr(token)


def _json_token(token: object) -> object:
    """The JSON-serializable form of a (normalized) token."""
    normalized = wire_token(token)
    if isinstance(normalized, tuple):
        return [_json_token(item) for item in normalized]
    return normalized


# ---------------------------------------------------------------------------
# Spill files: magic + JSON header + checksummed payload.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpillHeader:
    """Everything a spill file asserts about its payload."""

    key: Tuple[str, str]
    token: object
    cost: float
    row_count: int
    payload_bytes: int
    checksum: str


def write_spill_file(
    target: BinaryIO,
    *,
    key: Tuple[str, str],
    rows: Sequence[Row],
    token: object,
    cost: float,
) -> int:
    """Write one complete spill file to ``target``; returns bytes written.

    The caller owns atomicity (write to a temp file, then ``os.replace``):
    this function only defines the layout.
    """
    payload = encode_rows(rows)
    header = {
        "format": SPILL_FORMAT,
        "key": list(key),
        "token": _json_token(token),
        "cost": float(cost),
        "rows": len(rows),
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_line = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
    target.write(MAGIC)
    target.write(header_line)
    target.write(payload)
    return len(MAGIC) + len(header_line) + len(payload)


def _parse_header(line: bytes) -> SpillHeader:
    try:
        raw = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SpillFormatError(f"corrupt spill header: {exc}") from None
    if not isinstance(raw, dict) or raw.get("format") != SPILL_FORMAT:
        raise SpillFormatError(f"unsupported spill format {raw.get('format')!r}")
    key = raw.get("key")
    if (
        not isinstance(key, list)
        or len(key) != 2
        or not all(isinstance(part, str) for part in key)
    ):
        raise SpillFormatError(f"malformed spill key {key!r}")
    try:
        return SpillHeader(
            key=(key[0], key[1]),
            token=wire_token(raw.get("token")),
            cost=float(raw["cost"]),
            row_count=int(raw["rows"]),
            payload_bytes=int(raw["payload_bytes"]),
            checksum=str(raw["sha256"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SpillFormatError(f"malformed spill header: {exc}") from None


def read_spill_header(source: BinaryIO) -> SpillHeader:
    """Read and validate the magic and header of a spill file.

    Cheap (no payload read, no checksum): the cache tier uses it to index a
    spill directory at recovery without touching row data.
    """
    magic = source.read(len(MAGIC))
    if magic != MAGIC:
        raise SpillFormatError("not a spill file (bad magic)")
    line = source.readline(1 << 20)
    if not line.endswith(b"\n"):
        raise SpillFormatError("truncated spill header")
    return _parse_header(line[:-1])


def read_spill_file(source: BinaryIO) -> Tuple[SpillHeader, List[Row]]:
    """Read, verify and decode one spill file.

    Raises :class:`SpillFormatError` on any inconsistency: bad magic,
    truncated header or payload, checksum mismatch, undecodable payload, or
    a row count that disagrees with the header.
    """
    header = read_spill_header(source)
    payload = source.read(header.payload_bytes + 1)
    if len(payload) < header.payload_bytes:
        raise SpillFormatError(
            f"truncated payload: expected {header.payload_bytes} bytes, "
            f"got {len(payload)}"
        )
    if len(payload) > header.payload_bytes:
        raise SpillFormatError("trailing bytes after payload")
    if hashlib.sha256(payload).hexdigest() != header.checksum:
        raise SpillFormatError("payload checksum mismatch")
    rows = decode_rows(payload)
    if len(rows) != header.row_count:
        raise SpillFormatError(
            f"row count mismatch: header says {header.row_count}, payload has {len(rows)}"
        )
    return header, rows
