"""Command-line experiment runner.

``python -m repro.experiments`` regenerates every figure of the paper and
prints the result tables; ``--quick`` runs a reduced configuration (fewer
batches, one scale factor) that finishes in a couple of minutes on a
laptop, and ``--output`` additionally writes the tables as markdown.
``--serve`` additionally exercises the serving layer: it replays the
composite batches through one persistent :class:`OptimizerSession` behind a
:class:`BatchScheduler` and reports the session's reuse statistics —
``--serve --shards N`` serves the same traffic through a fingerprint-routed
:class:`~repro.service.pool.SessionPool` of N sessions instead.

The experiments themselves run on the serving API as well (one
:class:`~repro.service.session.OptimizerSession` per strategy), so the
overlapping composite batches BQ1 ⊂ BQ2 ⊂ … are interned into one shared
memo instead of being rebuilt from scratch for every measurement.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .example1 import run_example1
from .experiment1 import run_experiment1
from .experiment2 import run_experiment2
from .reporting import ResultTable, session_counters_table
from .theory import run_theory_experiment

__all__ = ["run_all", "run_serving_demo", "main"]


def run_serving_demo(
    *,
    max_batches: int = 3,
    strategy: str = "greedy",
    execute: bool = True,
    adaptive: bool = False,
    shards: int = 1,
    spill_dir: Optional[Path] = None,
    executor: str = "row",
    trace_dir: Optional[Path] = None,
    trace_sample: float = 1.0,
    verbose: bool = True,
) -> ResultTable:
    """Replay the composite batches through the serving layer, twice.

    The second pass re-submits traffic the session has already seen, so it
    is served from the warm caches; the returned table shows the session's
    reuse counters (interned vs reused queries, result-cache hits).  With
    ``execute=True`` (the default) the session additionally *runs* every
    batch against a tiny in-memory TPC-D database, so the table also records
    cold vs. warm end-to-end execute latency and the materialization cache's
    hit/fill counters.  ``adaptive=True`` turns on the runtime-feedback loop
    (:mod:`repro.adaptive`), whose observation/drift counters then appear in
    the table alongside the classic statistics.  ``shards`` above 1 serves
    the traffic through a fingerprint-routed
    :class:`~repro.service.pool.SessionPool` instead of a single session
    (the reported counters are then the shard aggregates).  ``spill_dir``
    enables the durable cache tier (:mod:`repro.storage`): evicted
    materializations spill to disk, the scheduler's shutdown checkpoints
    the rest, and re-running the demo against the same directory starts
    with the caches already warm from the previous process.  ``executor``
    picks the execution backend (``"row"``, ``"columnar"``, or the SQL
    oracles ``"sqlite"``/``"duckdb"``); all return row-identical results,
    so only the latency columns change.  ``trace_dir`` enables span tracing
    (:mod:`repro.obs`): every query gets a trace ID at submit time and the
    sampled spans are appended to ``trace_dir/trace-<pid>.jsonl``;
    ``trace_sample`` keeps only that fraction of traces.
    """
    from ..catalog.tpcd import tpcd_catalog
    from ..execution import tiny_tpcd_database
    from ..obs import JsonlTraceWriter, Observability, Tracer
    from ..service import BatchScheduler, OptimizerSession, SessionPool
    from ..workloads.batches import composite_batch

    tracer = None
    if trace_dir is not None:
        tracer = Tracer(JsonlTraceWriter(trace_dir), sample=trace_sample)
    obs = Observability(tracer=tracer)
    if shards > 1:
        serving = SessionPool(
            tpcd_catalog(1.0),
            shards=shards,
            adaptive=adaptive,
            spill_dir=spill_dir,
            executor=executor,
            obs=obs,
        )
    else:
        serving = OptimizerSession(
            tpcd_catalog(1.0),
            adaptive=adaptive,
            spill_dir=spill_dir,
            executor=executor,
            obs=obs,
        )
    if execute:
        serving.attach_database(tiny_tpcd_database(seed=3, orders=400))
    pass_times = []
    started = time.perf_counter()
    with BatchScheduler(serving, strategy=strategy) as scheduler:
        for _ in range(2):  # second pass hits the warm session(s)
            pass_started = time.perf_counter()
            futures = [
                scheduler.submit_batch(composite_batch(index), execute=execute)
                for index in range(1, max_batches + 1)
            ]
            for future in futures:
                future.result(timeout=600)
            pass_times.append(time.perf_counter() - pass_started)
    elapsed = time.perf_counter() - started

    front = (
        f"a {shards}-shard SessionPool" if shards > 1 else "one OptimizerSession"
    )
    table = session_counters_table(
        serving, f"Serving demo — BQ1..BQ{max_batches} twice through {front}"
    )
    if shards > 1:
        table.add_row("shards", shards)
    if spill_dir is not None:
        table.add_row("spill dir", str(spill_dir))
    if tracer is not None:
        tracer.close()
        table.add_row("trace file", str(tracer.sink.path))
    if execute:
        table.add_row("cold pass (s)", round(pass_times[0], 3))
        table.add_row("warm pass (s)", round(pass_times[1], 3))
    table.add_row("wall time (s)", round(elapsed, 3))
    table.notes = (
        f"strategy={strategy}; the second pass is served from the warm "
        "result, plan and materialization caches"
        + (" of whichever shard each batch routes to." if shards > 1 else ".")
    )
    if verbose:
        mode = "optimized+executed" if execute else "optimized"
        print(
            f"[serving] {mode} {2 * max_batches} batches in {elapsed:.2f}s "
            f"(cold pass {pass_times[0]:.2f}s, warm pass {pass_times[1]:.2f}s)"
        )
    return table


def run_all(
    *,
    quick: bool = False,
    scale_factors: Optional[Sequence[float]] = None,
    verbose: bool = True,
) -> List[ResultTable]:
    """Run every experiment and return the resulting tables."""
    scales = tuple(scale_factors) if scale_factors else ((1.0,) if quick else (1.0, 100.0))
    max_batches = 3 if quick else 6
    tables: List[ResultTable] = []

    outcome = run_example1()
    tables.append(outcome.table())

    exp1 = run_experiment1(scale_factors=scales, max_batches=max_batches, verbose=verbose)
    tables.extend(exp1.tables())

    exp2 = run_experiment2(scale_factors=scales, verbose=verbose)
    tables.extend(exp2.tables())

    theory = run_theory_experiment()
    tables.append(theory.table())
    return tables


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the figures of 'Efficient and Provable Multi-Query Optimization'",
    )
    parser.add_argument("--quick", action="store_true", help="reduced configuration (BQ1–BQ3, scale 1 only)")
    parser.add_argument(
        "--scale",
        type=float,
        action="append",
        help="database scale factor(s) to use (default: 1 and 100)",
    )
    parser.add_argument("--output", type=Path, help="write the tables as markdown to this file")
    parser.add_argument("--quiet", action="store_true", help="do not print per-measurement progress")
    parser.add_argument(
        "--serve",
        action="store_true",
        help="additionally replay the batches through the serving layer and report reuse statistics",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run the serving demo with the runtime-feedback loop enabled (implies observation/drift counters in the report)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="serve the demo through a fingerprint-routed SessionPool of N shards instead of a single session (requires --serve)",
    )
    parser.add_argument(
        "--spill-dir",
        type=Path,
        metavar="DIR",
        help="enable the durable cache tier for the serving demo: spill evicted "
        "materializations to DIR, checkpoint on shutdown, and restore on the next "
        "run against the same DIR (requires --serve)",
    )
    parser.add_argument(
        "--executor",
        choices=("row", "columnar", "sqlite", "duckdb"),
        default="row",
        help="execution backend for the serving demo: the tuple-at-a-time row "
        "interpreter (default), the vectorized columnar backend, or the SQL "
        "oracle on stdlib sqlite3 / optional DuckDB "
        "(requires --serve; all return identical rows)",
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        metavar="DIR",
        help="enable span tracing for the serving demo: append sampled JSONL "
        "trace records to DIR/trace-<pid>.jsonl (requires --serve)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="P",
        help="fraction of traces to record, in [0, 1] (default 1.0; "
        "requires --trace-dir)",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.shards > 1 and not args.serve:
        parser.error("--shards requires --serve")
    if args.spill_dir is not None and not args.serve:
        parser.error("--spill-dir requires --serve")
    if args.executor != "row" and not args.serve:
        parser.error("--executor requires --serve")
    if args.trace_dir is not None and not args.serve:
        parser.error("--trace-dir requires --serve")
    if not 0.0 <= args.trace_sample <= 1.0:
        parser.error("--trace-sample must be in [0, 1]")
    if args.trace_sample != 1.0 and args.trace_dir is None:
        parser.error("--trace-sample requires --trace-dir")

    started = time.perf_counter()
    tables = run_all(quick=args.quick, scale_factors=args.scale, verbose=not args.quiet)
    if args.serve:
        tables.append(
            run_serving_demo(
                adaptive=args.adaptive,
                shards=args.shards,
                spill_dir=args.spill_dir,
                executor=args.executor,
                trace_dir=args.trace_dir,
                trace_sample=args.trace_sample,
                verbose=not args.quiet,
            )
        )
    elapsed = time.perf_counter() - started

    for table in tables:
        print()
        print(table.to_text())
    print(f"\nAll experiments finished in {elapsed:.1f}s")

    if args.output:
        content = "\n\n".join(table.to_markdown() for table in tables)
        args.output.write_text(content + "\n", encoding="utf-8")
        print(f"Markdown written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
