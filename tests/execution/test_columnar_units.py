"""Unit tests for the columnar backend and the row-executor satellites.

Operator-level coverage on hand-built plans where the differential suite's
optimizer-generated trees cannot reach: NULL-heavy aggregates, empty join
operands, missing and ambiguous columns, heterogeneous (masked) batches,
and the late-materialization containers themselves.  Every behavioural
assertion is made against *both* backends — the row executor is the oracle,
so a test that pins its behaviour pins the columnar backend's too.
"""

import pytest

from repro.algebra.expressions import (
    AggregateExpr,
    AggregateFunction,
    col,
    eq,
    lt,
)
from repro.algebra.properties import SortOrder
from repro.execution import ColumnarExecutor, ExecutionError, Executor
from repro.execution.columnar import ColumnBatch, filter_indices
from repro.execution.data import Database
from repro.execution.evaluate import ColumnNotFound
from repro.optimizer.plan import PhysicalOp, PhysicalPlan

BOTH_BACKENDS = [Executor, ColumnarExecutor]


def plan(op, **kwargs):
    """A bare physical plan node (costs are irrelevant to execution)."""
    return PhysicalPlan(
        op=op,
        group=kwargs.pop("group", 0),
        cost=0.0,
        local_cost=0.0,
        rows=0.0,
        width=0.0,
        **kwargs,
    )


def scan(table, alias=None):
    return plan(PhysicalOp.TABLE_SCAN, table=table, alias=alias)


# ---------------------------------------------------------------------------
# ColumnBatch container
# ---------------------------------------------------------------------------


class TestColumnBatch:
    def test_round_trip_homogeneous_preserves_key_order(self):
        rows = [{"t.b": 2, "t.a": 1}, {"t.b": 4, "t.a": None}]
        assert ColumnBatch.from_rows(rows).to_rows() == rows
        assert list(ColumnBatch.from_rows(rows).to_rows()[0]) == ["t.b", "t.a"]

    def test_round_trip_heterogeneous_missing_vs_none(self):
        # {"x": None} and {} are different rows; the mask must keep them so.
        rows = [{"t.x": None}, {}, {"t.x": 1, "t.y": 2}]
        batch = ColumnBatch.from_rows(rows)
        assert batch.to_rows() == rows
        assert batch.mask("t.x") == [True, False, True]

    def test_empty(self):
        assert ColumnBatch.from_rows([]).to_rows() == []
        assert len(ColumnBatch.from_rows([])) == 0

    def test_take_and_select(self):
        rows = [{"t.a": i, "t.b": 10 * i} for i in range(4)]
        batch = ColumnBatch.from_rows(rows)
        assert batch.take([3, 1, 1]).to_rows() == [rows[3], rows[1], rows[1]]
        assert batch.select(["t.b"]).to_rows() == [{"t.b": 10 * i} for i in range(4)]

    def test_resolution_matches_row_rules(self):
        batch = ColumnBatch.from_rows([{"n1.n_name": "FR", "n2.n_name": "DE"}])
        assert batch.resolve(col("n1.n_name")) == "n1.n_name"
        with pytest.raises(ColumnNotFound):
            batch.resolve(col("n_name"))  # ambiguous suffix
        with pytest.raises(ColumnNotFound):
            batch.resolve(col("missing"))


class TestFilterIndices:
    def test_null_comparisons_are_false(self):
        batch = ColumnBatch.from_rows(
            [{"t.a": 1}, {"t.a": None}, {"t.a": 3}]
        )
        assert filter_indices(batch, lt(col("t.a"), 5)) == [0, 2]
        assert filter_indices(batch, eq(col("t.a"), None)) == []

    def test_missing_column_raises_only_when_reached(self):
        batch = ColumnBatch.from_rows([{"t.a": 1}, {"t.b": 2}])
        with pytest.raises(ColumnNotFound):
            filter_indices(batch, eq(col("t.b"), 2))  # row 0 lacks t.b
        # Restricted to row 1, the same predicate is fine (per-row reach).
        assert filter_indices(batch, eq(col("t.b"), 2), [1]) == [1]


# ---------------------------------------------------------------------------
# Aggregates: the hoisted extraction and NULL semantics (satellite 1)
# ---------------------------------------------------------------------------


def nulls_db():
    return Database(
        {
            "t": [
                {"g": "a", "v": 1},
                {"g": "a", "v": None},
                {"g": "a", "v": 3},
                {"g": "b", "v": None},
                {"g": "b", "v": None},
            ]
        }
    )


class TestAggregateNulls:
    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_count_star_vs_count_col_with_nulls(self, backend):
        """COUNT and COUNT(col) both count rows (NULLs included) here —
        whatever the semantics, both backends must agree on them."""
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(scan("t"),),
            group_by=(col("t.g"),),
            aggregates=(
                AggregateExpr(AggregateFunction.COUNT, None, "n_star"),
                AggregateExpr(AggregateFunction.COUNT, col("t.v"), "n_col"),
                AggregateExpr(AggregateFunction.SUM, col("t.v"), "s"),
                AggregateExpr(AggregateFunction.MIN, col("t.v"), "lo"),
                AggregateExpr(AggregateFunction.MAX, col("t.v"), "hi"),
                AggregateExpr(AggregateFunction.AVG, col("t.v"), "avg"),
            ),
        )
        rows = backend(nulls_db()).execute(node)
        assert rows == [
            {"t.g": "a", "n_star": 3, "n_col": 3, "s": 4, "lo": 1, "hi": 3, "avg": 2.0},
            {"t.g": "b", "n_star": 2, "n_col": 2, "s": None, "lo": None, "hi": None, "avg": None},
        ]

    def test_backends_agree_exactly(self):
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(scan("t"),),
            group_by=(col("t.g"),),
            aggregates=(
                AggregateExpr(AggregateFunction.COUNT, None, "n"),
                AggregateExpr(AggregateFunction.SUM, col("t.v"), "s"),
            ),
        )
        db = nulls_db()
        assert Executor(db).execute(node) == ColumnarExecutor(db).execute(node)

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_scalar_aggregate_over_empty_input(self, backend):
        db = Database({"t": []})
        node = plan(
            PhysicalOp.SCALAR_AGGREGATE,
            children=(scan("t"),),
            aggregates=(
                AggregateExpr(AggregateFunction.COUNT, None, "n"),
                AggregateExpr(AggregateFunction.SUM, col("t.v"), "s"),
            ),
        )
        assert backend(db).execute(node) == [{"n": 0, "s": None}]

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_grouped_aggregate_over_empty_input(self, backend):
        db = Database({"t": []})
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(scan("t"),),
            group_by=(col("t.g"),),
            aggregates=(AggregateExpr(AggregateFunction.COUNT, None, "n"),),
        )
        assert backend(db).execute(node) == []


# ---------------------------------------------------------------------------
# Joins: empty-operand short circuit (satellite 2) and semantics parity
# ---------------------------------------------------------------------------


class TestJoinEmptyOperands:
    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    @pytest.mark.parametrize("empty_side", ["left", "right", "both"])
    def test_empty_operand_joins_to_empty(self, backend, empty_side):
        db = Database(
            {
                "l": [] if empty_side in ("left", "both") else [{"k": 1, "a": 2}],
                "r": [] if empty_side in ("right", "both") else [{"k": 1, "b": 3}],
            }
        )
        node = plan(
            PhysicalOp.MERGE_JOIN,
            children=(scan("l"), scan("r")),
            predicate=eq(col("l.k"), col("r.k")),
        )
        assert backend(db).execute(node) == []

    def test_row_join_short_circuits_before_probing(self):
        """The equi-orientation probe reads left[0]/right[0]; an empty
        operand must return [] without reaching it (the old code fell to
        the O(n·m) nested-loop path instead)."""
        executor = Executor(Database({}))
        rows = [{"l.k": i} for i in range(3)]
        assert executor._join([], rows, eq(col("l.k"), col("r.k"))) == []
        assert executor._join(rows, [], eq(col("l.k"), col("r.k"))) == []

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_join_with_residual_and_hash(self, backend):
        db = Database(
            {
                "l": [{"k": 1, "a": 10}, {"k": 2, "a": 20}, {"k": 2, "a": 5}],
                "r": [{"k": 2, "b": 1}, {"k": 2, "b": 9}, {"k": 3, "b": 0}],
            }
        )
        node = plan(
            PhysicalOp.MERGE_JOIN,
            children=(scan("l"), scan("r")),
            predicate=eq(col("l.k"), col("r.k")) & lt(col("r.b"), col("l.a")),
        )
        expected = [
            {"l.k": 2, "l.a": 20, "r.k": 2, "r.b": 1},
            {"l.k": 2, "l.a": 20, "r.k": 2, "r.b": 9},
            {"l.k": 2, "l.a": 5, "r.k": 2, "r.b": 1},
        ]
        assert backend(db).execute(node) == expected

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_cross_join_order(self, backend):
        db = Database({"l": [{"a": 1}, {"a": 2}], "r": [{"b": 3}, {"b": 4}]})
        node = plan(PhysicalOp.NESTED_LOOP_JOIN, children=(scan("l"), scan("r")))
        assert backend(db).execute(node) == [
            {"l.a": 1, "r.b": 3},
            {"l.a": 1, "r.b": 4},
            {"l.a": 2, "r.b": 3},
            {"l.a": 2, "r.b": 4},
        ]

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_unresolvable_equi_columns_raise(self, backend):
        db = Database({"l": [{"k": 1}], "r": [{"k": 1}]})
        node = plan(
            PhysicalOp.MERGE_JOIN,
            children=(scan("l"), scan("r")),
            predicate=eq(col("x.nope"), col("y.nothere")),
        )
        with pytest.raises(ExecutionError):
            backend(db).execute(node)


# ---------------------------------------------------------------------------
# Sort, filter, scans, materialization plumbing
# ---------------------------------------------------------------------------


class TestOperatorParity:
    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_sort_nones_last_and_missing_as_none(self, backend):
        db = Database({"t": [{"a": 3}, {"a": None}, {"a": 1}, {"a": 2}]})
        node = plan(
            PhysicalOp.SORT,
            children=(scan("t"),),
            order=SortOrder((col("t.a"),)),
        )
        assert backend(db).execute(node) == [
            {"t.a": 1},
            {"t.a": 2},
            {"t.a": 3},
            {"t.a": None},
        ]

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_sort_on_missing_column_is_stable(self, backend):
        db = Database({"t": [{"a": 3}, {"a": 1}]})
        node = plan(
            PhysicalOp.SORT,
            children=(scan("t"),),
            order=SortOrder((col("t.nope"),)),
        )
        assert backend(db).execute(node) == [{"t.a": 3}, {"t.a": 1}]

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_filter_never_evaluates_over_empty_input(self, backend):
        db = Database({"t": []})
        node = plan(
            PhysicalOp.FILTER,
            children=(scan("t"),),
            predicate=eq(col("t.definitely_missing"), 1),
        )
        assert backend(db).execute(node) == []

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_index_scan_filters(self, backend):
        db = Database({"t": [{"a": i} for i in range(5)]})
        node = plan(PhysicalOp.INDEX_SCAN, table="t", predicate=lt(col("t.a"), 2))
        assert backend(db).execute(node) == [{"t.a": 0}, {"t.a": 1}]

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_read_materialized_missing_group_raises(self, backend):
        node = plan(PhysicalOp.READ_MATERIALIZED, group=42)
        with pytest.raises(ExecutionError):
            backend(Database({})).execute(node)

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_read_materialized_returns_fresh_copies(self, backend):
        stored = [{"t.a": 1}, {"t.a": 2}]
        node = plan(PhysicalOp.READ_MATERIALIZED, group=7)
        rows = backend(Database({})).execute(node, materialized={7: stored})
        assert rows == stored
        rows[0]["t.a"] = 99  # mutating the output must not touch the store
        assert stored[0]["t.a"] == 1

    def test_columnar_accepts_columnbatch_store_values(self):
        batch = ColumnBatch.from_rows([{"t.a": 1}, {"t.a": 2}])
        node = plan(PhysicalOp.READ_MATERIALIZED, group=7)
        rows = ColumnarExecutor(Database({})).execute(node, materialized={7: batch})
        assert rows == [{"t.a": 1}, {"t.a": 2}]

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_pruning_keeps_ambiguity_ambiguous(self, backend):
        """Aggregating an ambiguous suffix must raise in both backends even
        though the columnar plan prunes columns on the way down (the
        keep-rule may not turn an ambiguous reference into a unique one)."""
        db = Database({"l": [{"name": "x", "k": 1}], "r": [{"name": "y", "k": 1}]})
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(
                plan(
                    PhysicalOp.MERGE_JOIN,
                    children=(scan("l"), scan("r")),
                    predicate=eq(col("l.k"), col("r.k")),
                ),
            ),
            group_by=(col("name"),),  # matches l.name AND r.name
            aggregates=(AggregateExpr(AggregateFunction.COUNT, None, "n"),),
        )
        with pytest.raises(ColumnNotFound):
            backend(db).execute(node)

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_heterogeneous_table_rows_survive(self, backend):
        db = Database({"t": [{"a": 1, "b": 2}, {"a": 3}]})
        node = plan(
            PhysicalOp.FILTER, children=(scan("t"),), predicate=lt(col("t.a"), 10)
        )
        assert backend(db).execute(node) == [{"t.a": 1, "t.b": 2}, {"t.a": 3}]
