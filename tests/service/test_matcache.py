"""Property/fuzz tests for the cross-batch MaterializationCache.

The invariants under test:

* a ``get`` never returns stale or partial rows — whatever interleaving of
  fills, hits, evictions and invalidations happened, a hit is exactly the
  row set most recently (and validly) ``put`` for that key,
* byte-size accounting stays consistent with the entries actually stored,
  and never exceeds the configured capacity, and
* a fill stamped with an outdated data-version token is rejected.
"""

import random
import threading

import pytest

from repro.service.matcache import (
    MaterializationCache,
    cache_key,
    estimate_rows_bytes,
)
from repro.dag.fingerprint import RelationSignature


def key(n: int):
    return cache_key(RelationSignature(f"table{n}", f"t{n}"))


def rows_for(n: int, variant: int = 0):
    """A deterministic, key-specific row set (stale data is detectable).

    Payloads deliberately mix in non-ASCII characters so every accounting
    assertion below exercises the documented *byte* (not character)
    counting.
    """
    return [
        {"t.k": n, "t.variant": variant, "t.payload": f"pâyløad-π-{n}-{variant}-{i}"}
        for i in range(1 + n % 5)
    ]


def assert_accounting(cache: MaterializationCache):
    entries = cache._entries  # white-box: accounting must match stored entries
    recomputed = sum(estimate_rows_bytes(list(e.rows)) for e in entries.values())
    assert cache.current_bytes == sum(e.bytes for e in entries.values()) == recomputed
    assert cache.current_bytes <= cache.max_bytes
    assert len(cache) <= cache.max_entries


class TestBasics:
    def test_miss_fill_hit(self):
        cache = MaterializationCache()
        assert cache.get(key(1)) is None
        assert cache.put(key(1), rows_for(1), cost=10.0)
        assert cache.get(key(1)) == rows_for(1)
        stats = cache.statistics
        assert (stats.hits, stats.misses, stats.fills) == (1, 1, 1)

    def test_get_returns_a_copy(self):
        cache = MaterializationCache()
        cache.put(key(1), rows_for(1))
        handed_out = cache.get(key(1))
        handed_out[0]["t.payload"] = "corrupted"
        handed_out.pop()
        assert cache.get(key(1)) == rows_for(1)

    def test_put_copies_its_input(self):
        cache = MaterializationCache()
        mine = rows_for(2)
        cache.put(key(2), mine)
        mine[0]["t.payload"] = "corrupted"
        assert cache.get(key(2)) == rows_for(2)

    def test_same_fingerprint_different_order_are_distinct(self):
        from repro.algebra.expressions import col
        from repro.algebra.properties import SortOrder

        sig = RelationSignature("t", "t")
        unsorted_key = cache_key(sig)
        sorted_key = cache_key(sig, SortOrder((col("t.k"),)))
        assert unsorted_key != sorted_key

    def test_invalidate_clears_everything(self):
        cache = MaterializationCache()
        for n in range(4):
            cache.put(key(n), rows_for(n))
        assert cache.invalidate() == 4
        assert len(cache) == 0 and cache.current_bytes == 0
        assert all(cache.get(key(n)) is None for n in range(4))

    def test_oversized_fill_rejected(self):
        cache = MaterializationCache(max_bytes=64)
        big = [{"t.payload": "x" * 1000}]
        assert not cache.put(key(1), big)
        assert cache.statistics.rejected_fills == 1
        assert len(cache) == 0 and cache.current_bytes == 0


class TestByteAccounting:
    def test_string_values_count_utf8_bytes_not_characters(self):
        """Regression: len("héllo") is 5 characters but 6 UTF-8 bytes; the
        documented byte accounting must use the encoded length."""
        ascii_rows = [{"k": "hello"}]
        accented_rows = [{"k": "héllo"}]
        wide_rows = [{"k": "日本語です"}]  # 5 characters, 15 UTF-8 bytes
        assert estimate_rows_bytes(ascii_rows) == 64 + 1 + 5
        assert estimate_rows_bytes(accented_rows) == 64 + 1 + 6
        assert estimate_rows_bytes(wide_rows) == 64 + 1 + 15
        assert (
            estimate_rows_bytes(accented_rows)
            == estimate_rows_bytes(ascii_rows)
            + len("héllo".encode("utf-8"))
            - len("hello")
        )

    def test_non_ascii_keys_count_utf8_bytes(self):
        assert estimate_rows_bytes([{"π": 1}]) == 64 + 2 + 8

    def test_capacity_enforced_against_encoded_size(self):
        """A payload that fits by character count but not by byte count must
        be rejected (the pre-fix accounting would have admitted it)."""
        payload = "ü" * 40  # 40 characters, 80 bytes
        row_bytes = estimate_rows_bytes([{"k": payload}])
        assert row_bytes == 64 + 1 + 80
        cache = MaterializationCache(max_bytes=64 + 1 + 40)
        assert not cache.put(key(1), [{"k": payload}])
        assert cache.statistics.rejected_fills == 1
        roomy = MaterializationCache(max_bytes=row_bytes)
        assert roomy.put(key(1), [{"k": payload}])
        assert_accounting(roomy)


class TestTokens:
    def test_stale_token_fill_rejected(self):
        cache = MaterializationCache()
        cache.ensure_token(("db", 0))
        assert cache.put(key(1), rows_for(1), token=("db", 0))
        assert cache.ensure_token(("db", 1))  # data changed: flush
        assert cache.get(key(1)) is None
        # A slow execution finishing now must not reinstate stale rows.
        assert not cache.put(key(1), rows_for(1, variant=99), token=("db", 0))
        assert cache.get(key(1)) is None
        assert cache.put(key(1), rows_for(1, variant=1), token=("db", 1))
        assert cache.get(key(1)) == rows_for(1, variant=1)

    def test_unchanged_token_keeps_entries(self):
        cache = MaterializationCache()
        cache.ensure_token(1)
        cache.put(key(1), rows_for(1), token=1)
        assert not cache.ensure_token(1)
        assert cache.get(key(1)) == rows_for(1)


class TestEviction:
    def test_entry_count_bound(self):
        cache = MaterializationCache(max_entries=3)
        for n in range(10):
            cache.put(key(n), rows_for(n))
            assert_accounting(cache)
        assert len(cache) == 3
        assert cache.statistics.evictions == 7

    def test_byte_capacity_bound(self):
        one_entry = estimate_rows_bytes(rows_for(1))
        cache = MaterializationCache(max_bytes=one_entry * 3)
        for n in (1, 1, 1, 1):  # refills of one key never grow the accounting
            cache.put(key(n), rows_for(n))
        assert len(cache) == 1
        assert_accounting(cache)

    def test_cost_aware_victim_selection(self):
        """The cheap-to-recompute entry goes first, not the oldest."""
        cache = MaterializationCache(max_entries=2)
        cache.put(key(1), rows_for(1), cost=1000.0)  # oldest but expensive
        cache.put(key(2), rows_for(2), cost=0.001)  # cheap
        cache.put(key(3), rows_for(3), cost=1000.0)  # triggers eviction
        assert cache.get(key(2)) is None
        assert cache.get(key(1)) is not None
        assert cache.get(key(3)) is not None


class TestRandomizedInterleavings:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fuzz_against_reference_model(self, seed):
        """Random fills/hits/evictions/invalidations vs a dict reference model.

        The cache may evict (a modelled hit may miss), but a *hit* must match
        the model exactly — no stale, partial or cross-key rows — and the
        byte accounting must stay consistent after every step.
        """
        rng = random.Random(seed)
        cache = MaterializationCache(max_entries=8, max_bytes=4096)
        model = {}
        token = 0
        cache.ensure_token(token)
        for step in range(600):
            action = rng.random()
            n = rng.randrange(12)
            if action < 0.45:
                variant = rng.randrange(1000)
                if cache.put(key(n), rows_for(n, variant), cost=rng.uniform(0, 100), token=token):
                    model[key(n)] = rows_for(n, variant)
            elif action < 0.85:
                got = cache.get(key(n))
                if got is not None:
                    assert got == model[key(n)], f"stale/partial rows at step {step}"
            elif action < 0.95:
                # Data change: everything modelled so far is stale.
                token += 1
                cache.ensure_token(token)
                model.clear()
            else:
                # A straggler fill with the previous token must be rejected.
                if token > 0:
                    assert not cache.put(key(n), rows_for(n, -1), token=token - 1)
            assert_accounting(cache)
        # Whatever survived is still exact.
        for k in cache.keys():
            if k in model:
                assert cache.get(k) == model[k]

    def test_put_get_invalidate_hammer_keeps_counters_consistent(self):
        """4 threads hammer put/get/invalidate concurrently; afterwards the
        statistics must balance exactly:

        * ``hits + misses`` equals the gets issued,
        * ``fills`` equals the puts that reported success, and
        * every fill is accounted for — still resident, evicted, or dropped
          by an invalidation (puts use globally unique keys, so no fill can
          hide behind an overwrite).

        This is the regression harness for the ``put``/``invalidate``
        interleaving around ``_evict_locked``, which no earlier test drove
        concurrently."""
        cache = MaterializationCache(max_entries=16, max_bytes=16384)
        counters_lock = threading.Lock()
        totals = {"gets": 0, "ok_puts": 0, "dropped": 0}
        errors = []
        key_seq = iter(range(10**9))

        def worker(worker_seed):
            rng = random.Random(worker_seed)
            gets = ok_puts = dropped = 0
            try:
                for _ in range(500):
                    roll = rng.random()
                    if roll < 0.5:
                        n = next(key_seq)
                        if cache.put(key(n), rows_for(n % 12), cost=rng.uniform(0, 10)):
                            ok_puts += 1
                    elif roll < 0.9:
                        cache.get(key(rng.randrange(200)))
                        gets += 1
                    else:
                        dropped += cache.invalidate()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)
            with counters_lock:
                totals["gets"] += gets
                totals["ok_puts"] += ok_puts
                totals["dropped"] += dropped

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.statistics
        assert stats.hits + stats.misses == totals["gets"]
        assert stats.fills == totals["ok_puts"]
        assert stats.fills == len(cache) + stats.evictions + totals["dropped"]
        assert_accounting(cache)

    def test_concurrent_row_mutation_during_put_cannot_skew_accounting(self):
        """Regression: ``put`` must size the frozen copy it stores, not the
        caller's live list.  The executor merges row dicts in place, so a
        fill racing such a mutation could otherwise store rows whose byte
        accounting disagrees with the cache's books."""
        import sys

        cache = MaterializationCache(max_entries=8, max_bytes=1 << 24)
        stop = threading.Event()
        # Many rows widen the window: the pre-fix code walked the *live*
        # list to size it after freezing, so a mutation landing anywhere in
        # that walk produced books that disagree with the stored rows.
        shared = [{"t.k": i, "t.payload": "x"} for i in range(300)]
        errors = []

        def mutator():
            rng = random.Random(1)
            while not stop.is_set():
                index = rng.randrange(len(shared))
                shared[index]["t.payload"] = "y" * rng.choice((1, 400))

        def filler():
            try:
                for _ in range(300):
                    cache.put(key(1), shared, cost=1.0)
                    assert_accounting(cache)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)
            finally:
                stop.set()

        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force frequent preemption
        try:
            threads = [threading.Thread(target=mutator), threading.Thread(target=filler)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(interval)
        assert not errors, errors[:1]
        assert_accounting(cache)  # stored bytes == recomputed from stored rows

    def test_threaded_fills_and_hits_never_mix_keys(self):
        """Concurrent workers on one cache: hits are always key-consistent."""
        cache = MaterializationCache(max_entries=6, max_bytes=8192)
        errors = []

        def worker(worker_seed):
            rng = random.Random(worker_seed)
            try:
                for _ in range(400):
                    n = rng.randrange(10)
                    if rng.random() < 0.5:
                        cache.put(key(n), rows_for(n), cost=rng.uniform(0, 10))
                    else:
                        got = cache.get(key(n))
                        if got is not None and got != rows_for(n):
                            errors.append((n, got))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert_accounting(cache)
