"""Property/fuzz differential: random plans → SQL vs both Python backends.

Two generators feed the three-way comparison:

* random *physical plan trees* (scan/filter/sort/join/aggregate in random
  shapes) over small tables of NULL-heavy, mixed int/float/unicode data —
  shapes the optimizer-driven differential suite would never produce;
* the existing random star-join batches, executed against a NULL-heavy
  star database whose labels are non-ASCII (and quote-bearing), so every
  join, grouping and aggregate runs over data that must round-trip through
  the sqlite adapter byte-exactly.

Everything is seeded — a failure reproduces by its seed — and compared as
row multisets with floats rounded (engines sum in different orders).
"""

import random

import pytest

from repro.algebra.expressions import (
    AggregateExpr,
    AggregateFunction,
    Not,
    between,
    col,
    eq,
    ge,
    gt,
    in_list,
    le,
    lt,
    ne,
)
from repro.algebra.properties import SortOrder
from repro.execution import ColumnarExecutor, Executor, SQLiteExecutor, total_order_key
from repro.execution.data import Database
from repro.optimizer.plan import PhysicalOp, PhysicalPlan
from repro.service import OptimizerSession
from repro.workloads.synthetic import random_star_batch, star_schema_catalog

BACKENDS = {"row": Executor, "columnar": ColumnarExecutor, "sqlite": SQLiteExecutor}


def canonical(rows):
    """Multiset form that stays sortable when cells hold NULLs/mixed types."""
    normalized = [
        tuple(
            sorted(
                (k, round(v, 6) if isinstance(v, float) else v) for k, v in row.items()
            )
        )
        for row in rows
    ]
    return sorted(
        normalized, key=lambda row: [(k, total_order_key(v)) for k, v in row]
    )


def assert_all_agree(db, node, context):
    results = {name: cls(db).execute(node) for name, cls in BACKENDS.items()}
    expected = canonical(results["row"])
    for name in ("columnar", "sqlite"):
        assert canonical(results[name]) == expected, f"{name} diverges ({context})"
    return results["row"]


def plan(op, **kwargs):
    return PhysicalPlan(
        op=op,
        group=kwargs.pop("group", 0),
        cost=0.0,
        local_cost=0.0,
        rows=0.0,
        width=0.0,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Random plan trees over NULL-heavy mixed data
# ---------------------------------------------------------------------------

LABELS = ["α", "ß-groß", "名前", "O'Неil", 'quo"te', "zz", ""]


def fuzz_database(rng):
    def maybe_null(value, p=0.25):
        return None if rng.random() < p else value

    s_rows = [
        {
            "k": maybe_null(rng.randrange(6)),
            "v": maybe_null(rng.choice([rng.randrange(100), rng.randrange(100) / 4])),
            "w": maybe_null(rng.choice(LABELS)),
        }
        for _ in range(rng.randrange(8, 40))
    ]
    u_rows = [
        {"k": maybe_null(rng.randrange(6)), "z": maybe_null(rng.randrange(50))}
        for _ in range(rng.randrange(4, 20))
    ]
    return Database({"s": s_rows, "u": u_rows})


def random_predicate(rng, alias_columns, depth=0):
    """A random predicate over the given (alias-qualified) columns."""
    name, kind = rng.choice(alias_columns)
    if depth < 2 and rng.random() < 0.3:
        make = rng.choice(["and", "or", "not"])
        if make == "not":
            return Not(random_predicate(rng, alias_columns, depth + 1))
        a = random_predicate(rng, alias_columns, depth + 1)
        b = random_predicate(rng, alias_columns, depth + 1)
        return (a & b) if make == "and" else (a | b)
    if kind == "str":
        literal = rng.choice(LABELS)
        choice = rng.random()
        if choice < 0.3:
            return in_list(col(name), rng.sample(LABELS, rng.randrange(1, 4)))
        if choice < 0.5:
            low, high = sorted([rng.choice(LABELS), rng.choice(LABELS)])
            return between(col(name), low, high)
        return rng.choice([eq, ne, lt, ge])(col(name), literal)
    literal = rng.choice([rng.randrange(100), rng.randrange(100) / 4])
    choice = rng.random()
    if choice < 0.2:
        return in_list(col(name), [rng.randrange(100) for _ in range(3)])
    if choice < 0.4:
        low = rng.randrange(50)
        return between(col(name), low, low + rng.randrange(50))
    return rng.choice([eq, ne, lt, le, gt, ge])(col(name), literal)


def random_tree(rng):
    """A random plan: s-scan, maybe filtered/sorted/joined, maybe aggregated."""
    node = plan(PhysicalOp.TABLE_SCAN, table="s", alias="s")
    columns = [("s.k", "num"), ("s.v", "num"), ("s.w", "str")]
    if rng.random() < 0.7:
        node = plan(
            PhysicalOp.FILTER,
            children=(node,),
            predicate=random_predicate(rng, columns),
        )
    if rng.random() < 0.6:
        join_op = rng.choice([PhysicalOp.MERGE_JOIN, PhysicalOp.NESTED_LOOP_JOIN])
        other = plan(PhysicalOp.TABLE_SCAN, table="u", alias="u")
        predicate = eq(col("s.k"), col("u.k"))
        if rng.random() < 0.4:  # add a residual conjunct over the pair
            predicate = predicate & random_predicate(
                rng, columns + [("u.z", "num")]
            )
        node = plan(join_op, children=(node, other), predicate=predicate)
        columns = columns + [("u.k", "num"), ("u.z", "num")]
    if rng.random() < 0.4:
        order = tuple(
            col(name) for name, _ in rng.sample(columns, rng.randrange(1, 3))
        )
        node = plan(PhysicalOp.SORT, children=(node,), order=SortOrder(order))
    if rng.random() < 0.6:
        group_name = rng.choice([name for name, _ in columns] + ["s.absent"])
        aggregates = [AggregateExpr(AggregateFunction.COUNT, None, "n")]
        aggregates.append(
            AggregateExpr(
                rng.choice([AggregateFunction.SUM, AggregateFunction.AVG]),
                col("s.v"),
                "m",
            )
        )
        aggregates.append(
            AggregateExpr(
                rng.choice([AggregateFunction.MIN, AggregateFunction.MAX]),
                col("s.w"),
                "x",
            )
        )
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(node,),
            group_by=(col(group_name),),
            aggregates=tuple(aggregates),
        )
    return node


class TestRandomPlanTrees:
    @pytest.mark.parametrize("seed", range(40))
    def test_three_backends_agree(self, seed):
        rng = random.Random(seed)
        db = fuzz_database(rng)
        node = random_tree(rng)
        assert_all_agree(db, node, f"seed {seed}")

    def test_fuzz_produces_rows_somewhere(self):
        """Guard against the generator degenerating into all-empty outputs."""
        total = 0
        for seed in range(40):
            rng = random.Random(seed)
            db = fuzz_database(rng)
            total += len(Executor(db).execute(random_tree(rng)))
        assert total > 50


# ---------------------------------------------------------------------------
# Optimizer-chosen plans over NULL-heavy, non-ASCII star data
# ---------------------------------------------------------------------------


def nullable_star_database(seed, n_dimensions=4, fact_rows=250, dimension_rows=30):
    """A star database with NULL-riddled keys/values and non-ASCII labels."""
    rng = random.Random(seed)
    db = Database()
    for i in range(n_dimensions):
        db.add_table(
            f"dim{i}",
            [
                {
                    f"d{i}_key": key,
                    f"d{i}_attr": None if rng.random() < 0.2 else rng.randrange(100),
                    f"d{i}_label": f"δ{i}·{rng.choice(LABELS)}-{key}",
                }
                for key in range(dimension_rows)
            ],
        )
    db.add_table(
        "fact",
        [
            {
                "f_id": fid,
                **{
                    f"f_d{i}_key": (
                        None if rng.random() < 0.15 else rng.randrange(dimension_rows)
                    )
                    for i in range(n_dimensions)
                },
                "f_value": None if rng.random() < 0.2 else float(rng.randrange(1, 1000)),
            }
            for fid in range(fact_rows)
        ],
    )
    return db


class TestNullHeavyStarBatches:
    @pytest.mark.parametrize("seed", [1, 4, 7])
    def test_strategies_agree_on_null_heavy_unicode_data(self, seed):
        catalog = star_schema_catalog(n_dimensions=4)
        db = nullable_star_database(seed=seed)
        batch = random_star_batch(3, seed=seed, n_dimensions=4)
        session = OptimizerSession(catalog)
        results = session.compare(batch, strategies=("volcano", "greedy", "share-all"))
        for name, result in results.items():
            reference = Executor(db).execute_result(result.plan)
            vectorized = ColumnarExecutor(db).execute_result(result.plan)
            oracle = SQLiteExecutor(db).execute_result(result.plan)
            for query_name in reference:
                expected = canonical(reference[query_name])
                assert canonical(vectorized[query_name]) == expected, (
                    f"columnar diverges: {name}/{query_name} (seed {seed})"
                )
                assert canonical(oracle[query_name]) == expected, (
                    f"sqlite diverges: {name}/{query_name} (seed {seed})"
                )

    def test_unicode_labels_round_trip_through_sqlite(self):
        db = nullable_star_database(seed=2, fact_rows=60)
        node = plan(
            PhysicalOp.SORT_AGGREGATE,
            children=(
                plan(
                    PhysicalOp.MERGE_JOIN,
                    children=(
                        plan(PhysicalOp.TABLE_SCAN, table="fact", alias="fact"),
                        plan(PhysicalOp.TABLE_SCAN, table="dim0", alias="dim0"),
                    ),
                    predicate=eq(col("f_d0_key"), col("d0_key")),
                ),
            ),
            group_by=(col("d0_label"),),
            aggregates=(AggregateExpr(AggregateFunction.COUNT, None, "n"),),
        )
        rows = assert_all_agree(db, node, "unicode group-by labels")
        labels = [row["d0_label"] for row in rows]
        assert any("δ0·" in label for label in labels), "labels must be non-ASCII"
