"""Bridging the optimizer's ``bestCost`` oracle to the UNSM formulation.

The reformulation at the heart of the paper replaces minimizing
``bestCost(Q, S)`` by maximizing the materialization benefit

    mb(S) = bestCost(Q, ∅) − bestCost(Q, S)
          = (bestUseCost(Q, ∅) − bestUseCost(Q, S)) − c(S)

where the parenthesised part is monotone non-decreasing in ``S`` and ``c``
is (approximately) additive — the cost of computing and writing each
materialized node.  This module provides those functions as
:class:`~repro.core.set_functions.SetFunction` objects over the universe of
shareable equivalence nodes, plus the two decompositions the MarginalGreedy
algorithm can run on:

* ``"use-cost"`` (default): ``fM(S) = buc(∅) − buc(S)`` and
  ``c({e}) =`` standalone compute + write cost of ``e`` — the natural MQO
  decomposition described in Section 2.4;
* ``"canonical"``: the Proposition-1 decomposition of ``mb`` itself (costs
  ``n+1`` extra ``bestCost`` calls on near-full sets, as the paper notes).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..optimizer.best_cost import BestCostEngine
from .decomposition import Decomposition, canonical_decomposition, decomposition_from_parts
from .set_functions import (
    AdditiveFunction,
    Element,
    LambdaSetFunction,
    SetFunction,
    Subset,
    as_frozenset,
)

__all__ = [
    "BestCostFunction",
    "UseCostFunction",
    "MaterializationBenefit",
    "UseCostBenefit",
    "standalone_materialization_costs",
    "mqo_decomposition",
]


class BestCostFunction(SetFunction):
    """``bc(S) = bestCost(Q, S)`` over the shareable equivalence nodes."""

    def __init__(self, engine: BestCostEngine, universe: Optional[Iterable] = None):
        self._engine = engine
        if universe is None:
            universe = engine.dag.shareable_candidates()
        self._universe = as_frozenset(universe)

    @property
    def engine(self) -> BestCostEngine:
        return self._engine

    @property
    def universe(self) -> Subset:
        return self._universe

    def value(self, subset: Iterable) -> float:
        return self._engine.cost(as_frozenset(subset))


class UseCostFunction(SetFunction):
    """``buc(S) = bestUseCost(Q, S)`` (monotonically non-increasing in ``S``)."""

    def __init__(self, engine: BestCostEngine, universe: Optional[Iterable] = None):
        self._engine = engine
        if universe is None:
            universe = engine.dag.shareable_candidates()
        self._universe = as_frozenset(universe)

    @property
    def universe(self) -> Subset:
        return self._universe

    def value(self, subset: Iterable) -> float:
        return self._engine.use_cost(as_frozenset(subset))


class MaterializationBenefit(SetFunction):
    """``mb(S) = bc(∅) − bc(S)`` — the function the paper maximizes."""

    def __init__(self, engine: BestCostEngine, universe: Optional[Iterable] = None):
        self._best_cost = BestCostFunction(engine, universe)
        self._baseline = self._best_cost.value(frozenset())

    @property
    def baseline(self) -> float:
        """``bc(∅)``: the no-sharing (plain Volcano) cost."""
        return self._baseline

    @property
    def universe(self) -> Subset:
        return self._best_cost.universe

    def value(self, subset: Iterable) -> float:
        return self._baseline - self._best_cost.value(subset)


class UseCostBenefit(SetFunction):
    """``fM(S) = buc(∅) − buc(S)``: the monotone part of the MQO decomposition."""

    def __init__(self, engine: BestCostEngine, universe: Optional[Iterable] = None):
        self._use_cost = UseCostFunction(engine, universe)
        self._baseline = self._use_cost.value(frozenset())

    @property
    def baseline(self) -> float:
        return self._baseline

    @property
    def universe(self) -> Subset:
        return self._use_cost.universe

    def value(self, subset: Iterable) -> float:
        return self._baseline - self._use_cost.value(subset)


def standalone_materialization_costs(
    engine: BestCostEngine, universe: Optional[Iterable] = None
) -> Dict:
    """Per-candidate cost of computing (without sharing) and writing each node."""
    if universe is None:
        universe = engine.dag.shareable_candidates()
    return engine.standalone_materialization_costs(universe)


def mqo_decomposition(
    engine: BestCostEngine,
    universe: Optional[Iterable] = None,
    kind: str = "use-cost",
) -> Decomposition:
    """Build the decomposition MarginalGreedy runs on for an MQO instance.

    Args:
        engine: the ``bestCost`` engine for the batch.
        universe: the candidate nodes (defaults to the shareable nodes).
        kind: ``"use-cost"`` for the natural MQO decomposition or
            ``"canonical"`` for the Proposition-1 decomposition of ``mb``.
    """
    if kind == "use-cost":
        monotone = UseCostBenefit(engine, universe)
        cost = AdditiveFunction(standalone_materialization_costs(engine, monotone.universe))
        original = MaterializationBenefit(engine, monotone.universe)
        return Decomposition(original=original, monotone=monotone, cost=cost)
    if kind == "canonical":
        benefit = MaterializationBenefit(engine, universe)
        return canonical_decomposition(benefit)
    raise ValueError(f"unknown decomposition kind {kind!r}; use 'use-cost' or 'canonical'")
