"""The spill codec: exact, self-describing serialization of cached row sets.

The disk tier of the serving layer
(:class:`~repro.storage.spill.SpillingMaterializationCache`) persists
materialized row sets in per-entry **spill files**.  Durability only counts
if recovery is *bit-identical*, so the codec here is deliberately not JSON:
it is a small type-tagged binary format that round-trips every value the
executor produces exactly —

* ``None``, ``bool``, arbitrary-precision ``int``, ``float`` (IEEE-754
  binary64, so ``-0.0`` and the full precision survive), ``str`` (UTF-8,
  non-ASCII included), ``bytes``,
* ``tuple`` and ``list`` (kept distinct — JSON would collapse tuples into
  lists), nested to any depth, and
* ``dict`` rows with string keys.

A decoded row set compares ``==`` to what was encoded and therefore has the
identical :func:`~repro.service.matcache.estimate_rows_bytes` accounting —
the property tests assert both.

Two payload layouts share that contract.  **Format 1** encodes the row set
as one tagged list of dict rows.  **Format 2** is columnar: per-column
type-tagged vectors (packed int64/float64 fast paths, a generic tagged
fallback, an explicit presence bitmap for heterogeneous rows), written by
``write_spill_file(..., layout="columnar")`` and decoded straight into a
:class:`~repro.execution.columnar.batch.ColumnBatch` by
:func:`read_spill_batch` — so the vectorized backend faults spilled entries
back in without a rows→columns round trip.  Readers accept both formats
regardless of which layout they prefer, so old files always keep decoding.

A spill **file** wraps one encoded payload with everything needed to trust
it after a crash: a magic line, a JSON header (format, cache key,
data-version token, recompute cost, row count, payload length) and a
SHA-256 checksum of the payload.  :func:`read_spill_file` /
:func:`read_spill_batch` verify all of it; truncated, bit-flipped or
mis-keyed files raise :class:`SpillFormatError`, which the cache layer
turns into a clean miss (never a crash, never stale rows).

The module uses only the standard library and imports nothing from
:mod:`repro.service` (the ``ColumnBatch`` container is pulled from
:mod:`repro.execution` lazily, and only on the columnar paths), so the
feedback store and the cache tier can both build on it without import
cycles.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "SPILL_FORMAT",
    "SPILL_FORMAT_COLUMNAR",
    "SpillCodecError",
    "SpillError",
    "SpillFormatError",
    "SpillHeader",
    "decode_batch",
    "decode_rows",
    "decode_value",
    "encode_batch",
    "encode_rows",
    "encode_value",
    "read_spill_batch",
    "read_spill_file",
    "read_spill_header",
    "wire_token",
    "write_spill_file",
]

Row = Dict[str, object]

#: Format 1: the original row layout (one encoded list of dict rows).
SPILL_FORMAT = 1
#: Format 2: the columnar layout (per-column type-tagged vectors, see
#: :func:`encode_batch`).  Readers accept both; writers pick per file.
SPILL_FORMAT_COLUMNAR = 2

_KNOWN_FORMATS = (SPILL_FORMAT, SPILL_FORMAT_COLUMNAR)

MAGIC = b"REPRO-SPILL\n"


class SpillError(Exception):
    """Base class for everything the spill tier can raise."""


class SpillCodecError(SpillError):
    """A value the codec cannot represent was passed to ``encode``."""


class SpillFormatError(SpillError):
    """A spill file or payload is truncated, corrupt or mis-versioned."""


# ---------------------------------------------------------------------------
# Value codec: type-tagged binary encoding with exact round trips.
# ---------------------------------------------------------------------------

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TUPLE = b"t"
_TAG_LIST = b"l"
_TAG_DICT = b"d"

_DOUBLE = struct.Struct(">d")


def _write_uvarint(out: io.BytesIO, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_uvarint(buf: memoryview, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise SpillFormatError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63 + 7:  # > 2**70: nothing the codec writes is this long
            raise SpillFormatError("varint out of range")


def _encode_value(out: io.BytesIO, value: object) -> None:
    if value is None:
        out.write(_TAG_NONE)
    elif value is True:
        out.write(_TAG_TRUE)
    elif value is False:
        out.write(_TAG_FALSE)
    elif isinstance(value, int):
        # bool is handled above; arbitrary-precision two's complement.
        length = max(1, (value.bit_length() + 8) // 8)
        out.write(_TAG_INT)
        _write_uvarint(out, length)
        out.write(value.to_bytes(length, "big", signed=True))
    elif isinstance(value, float):
        out.write(_TAG_FLOAT)
        out.write(_DOUBLE.pack(value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.write(_TAG_STR)
        _write_uvarint(out, len(encoded))
        out.write(encoded)
    elif isinstance(value, bytes):
        out.write(_TAG_BYTES)
        _write_uvarint(out, len(value))
        out.write(value)
    elif isinstance(value, tuple):
        out.write(_TAG_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, list):
        out.write(_TAG_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.write(_TAG_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpillCodecError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            encoded = key.encode("utf-8")
            _write_uvarint(out, len(encoded))
            out.write(encoded)
            _encode_value(out, item)
    else:
        raise SpillCodecError(f"cannot encode a value of type {type(value).__name__}")


def _decode_value(buf: memoryview, pos: int) -> Tuple[object, int]:
    if pos >= len(buf):
        raise SpillFormatError("truncated value")
    tag = bytes(buf[pos : pos + 1])
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise SpillFormatError("truncated int")
        return int.from_bytes(buf[pos : pos + length], "big", signed=True), pos + length
    if tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise SpillFormatError("truncated float")
        return _DOUBLE.unpack_from(buf, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise SpillFormatError("truncated string")
        try:
            return str(buf[pos : pos + length], "utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise SpillFormatError(f"corrupt UTF-8 payload: {exc}") from None
    if tag == _TAG_BYTES:
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise SpillFormatError("truncated bytes")
        return bytes(buf[pos : pos + length]), pos + length
    if tag in (_TAG_TUPLE, _TAG_LIST):
        count, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_DICT:
        count, pos = _read_uvarint(buf, pos)
        row: Dict[str, object] = {}
        for _ in range(count):
            length, pos = _read_uvarint(buf, pos)
            if pos + length > len(buf):
                raise SpillFormatError("truncated dict key")
            try:
                key = str(buf[pos : pos + length], "utf-8")
            except UnicodeDecodeError as exc:
                raise SpillFormatError(f"corrupt UTF-8 dict key: {exc}") from None
            pos += length
            row[key], pos = _decode_value(buf, pos)
        return row, pos
    raise SpillFormatError(f"unknown type tag {tag!r}")


def encode_value(value: object) -> bytes:
    """Encode one value; ``decode_value(encode_value(v)) == v`` exactly."""
    out = io.BytesIO()
    _encode_value(out, value)
    return out.getvalue()


def decode_value(payload: bytes) -> object:
    """Decode one value, rejecting trailing garbage and truncation."""
    value, pos = _decode_value(memoryview(payload), 0)
    if pos != len(payload):
        raise SpillFormatError(f"{len(payload) - pos} trailing bytes after value")
    return value


def encode_rows(rows: Sequence[Row]) -> bytes:
    """Encode a materialized row set (a list of string-keyed dict rows)."""
    return encode_value(list(rows))


def decode_rows(payload: bytes) -> List[Row]:
    """Decode a row set, verifying the expected list-of-dicts shape."""
    value = decode_value(payload)
    if not isinstance(value, list) or any(not isinstance(row, dict) for row in value):
        raise SpillFormatError("payload is not a row set (list of dict rows)")
    return value


# ---------------------------------------------------------------------------
# Columnar payload (format 2): per-column type-tagged vectors.
# ---------------------------------------------------------------------------
#
# Layout (all integers uvarint unless stated):
#
#   row_count  column_count
#   per column:
#     name_len  name_utf8
#     presence: 0x00 (every row has the key) or 0x01 + bitmap of
#               ceil(row_count/8) bytes, LSB-first (bit set = key present)
#     vector tag:
#       b"q"  packed int64, row_count × 8 bytes big-endian signed — used
#             when every value is a plain int (bool is NOT an int here:
#             True must never come back as 1) in int64 range;
#       b"d"  packed float64, row_count × 8 bytes IEEE-754 big-endian —
#             used when every value is a plain float;
#       b"g"  generic: row_count recursively tagged values (the format-1
#             value codec), which covers None, bool, big ints, strings,
#             bytes, containers — everything, exactly.
#
# Absent cells (presence bit clear) hold None in the value vector, matching
# the in-memory ColumnBatch invariant, and force the generic vector tag.

_COL_PACKED_INT = b"q"
_COL_PACKED_FLOAT = b"d"  # column-tag namespace, distinct from the value tags
_COL_GENERIC = b"g"

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _column_batch_cls():
    # Imported lazily: the storage layer must stay importable (and the row
    # spill path free) without pulling the execution package in at import
    # time.
    from ..execution.columnar.batch import ColumnBatch

    return ColumnBatch


def _pack_bitmap(bits: Sequence[bool]) -> bytes:
    packed = bytearray((len(bits) + 7) // 8)
    for index, bit in enumerate(bits):
        if bit:
            packed[index >> 3] |= 1 << (index & 7)
    return bytes(packed)


def _unpack_bitmap(buf: memoryview, pos: int, count: int) -> Tuple[List[bool], int]:
    length = (count + 7) // 8
    if pos + length > len(buf):
        raise SpillFormatError("truncated presence bitmap")
    bits = [bool(buf[pos + (i >> 3)] & (1 << (i & 7))) for i in range(count)]
    return bits, pos + length


def encode_batch(batch) -> bytes:
    """Encode a :class:`~repro.execution.columnar.batch.ColumnBatch` (format 2).

    ``decode_batch(encode_batch(b))`` reproduces columns, masks and row
    count exactly, so ``.to_rows()`` of the decoded batch equals the rows
    that were spilled — same bit-identity contract as :func:`encode_rows`.
    """
    out = io.BytesIO()
    n = batch.length
    _write_uvarint(out, n)
    _write_uvarint(out, len(batch.columns))
    for name, values in batch.columns.items():
        encoded_name = name.encode("utf-8")
        _write_uvarint(out, len(encoded_name))
        out.write(encoded_name)
        mask = batch.masks.get(name)
        if mask is None or all(mask):
            out.write(b"\x00")
            mask = None
        else:
            out.write(b"\x01")
            out.write(_pack_bitmap(mask))
        if mask is None and n and all(
            type(value) is int and _INT64_MIN <= value <= _INT64_MAX
            for value in values
        ):
            out.write(_COL_PACKED_INT)
            for value in values:
                out.write(value.to_bytes(8, "big", signed=True))
        elif mask is None and n and all(type(value) is float for value in values):
            out.write(_COL_PACKED_FLOAT)
            for value in values:
                out.write(_DOUBLE.pack(value))
        else:
            out.write(_COL_GENERIC)
            for value in values:
                _encode_value(out, value)
    return out.getvalue()


def decode_batch(payload: bytes):
    """Decode a format-2 payload back into a ``ColumnBatch`` (exact)."""
    ColumnBatch = _column_batch_cls()
    buf = memoryview(payload)
    pos = 0
    n, pos = _read_uvarint(buf, pos)
    column_count, pos = _read_uvarint(buf, pos)
    columns: Dict[str, List[object]] = {}
    masks: Dict[str, Optional[List[bool]]] = {}
    for _ in range(column_count):
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise SpillFormatError("truncated column name")
        try:
            name = str(buf[pos : pos + length], "utf-8")
        except UnicodeDecodeError as exc:
            raise SpillFormatError(f"corrupt UTF-8 column name: {exc}") from None
        pos += length
        if name in columns:
            raise SpillFormatError(f"duplicate column {name!r}")
        if pos >= len(buf):
            raise SpillFormatError("truncated presence marker")
        presence = buf[pos]
        pos += 1
        mask: Optional[List[bool]] = None
        if presence == 1:
            mask, pos = _unpack_bitmap(buf, pos, n)
        elif presence != 0:
            raise SpillFormatError(f"unknown presence marker {presence!r}")
        if pos >= len(buf):
            raise SpillFormatError("truncated column vector")
        tag = bytes(buf[pos : pos + 1])
        pos += 1
        values: List[object]
        if tag == _COL_PACKED_INT:
            end = pos + 8 * n
            if end > len(buf):
                raise SpillFormatError("truncated packed int column")
            values = [
                int.from_bytes(buf[i : i + 8], "big", signed=True)
                for i in range(pos, end, 8)
            ]
            pos = end
        elif tag == _COL_PACKED_FLOAT:
            end = pos + 8 * n
            if end > len(buf):
                raise SpillFormatError("truncated packed float column")
            values = [_DOUBLE.unpack_from(buf, i)[0] for i in range(pos, end, 8)]
            pos = end
        elif tag == _COL_GENERIC:
            values = []
            for _ in range(n):
                value, pos = _decode_value(buf, pos)
                values.append(value)
        else:
            raise SpillFormatError(f"unknown column vector tag {tag!r}")
        columns[name] = values
        if mask is not None:
            masks[name] = mask
    if pos != len(buf):
        raise SpillFormatError(f"{len(buf) - pos} trailing bytes after columns")
    return ColumnBatch(columns, n, masks)


# ---------------------------------------------------------------------------
# Data-version tokens on the wire.
# ---------------------------------------------------------------------------


def wire_token(token: object) -> object:
    """A token in its canonical comparable/JSON-safe form.

    Spill files and feedback snapshots carry the data-version token they
    were written under; after a JSON round trip tuples come back as lists,
    so both the stored and the live token are normalized through this
    function before comparison (tuples and lists collapse to tuples,
    scalars pass through, anything else compares by ``repr`` — which can
    never accidentally equal a *different* process's token for
    content-derived tokens, and intentionally never survives a restart for
    identity-derived ones).
    """
    if isinstance(token, (tuple, list)):
        return tuple(wire_token(item) for item in token)
    if token is None or isinstance(token, (bool, int, float, str)):
        return token
    return repr(token)


def _json_token(token: object) -> object:
    """The JSON-serializable form of a (normalized) token."""
    normalized = wire_token(token)
    if isinstance(normalized, tuple):
        return [_json_token(item) for item in normalized]
    return normalized


# ---------------------------------------------------------------------------
# Spill files: magic + JSON header + checksummed payload.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpillHeader:
    """Everything a spill file asserts about its payload."""

    key: Tuple[str, str]
    token: object
    cost: float
    row_count: int
    payload_bytes: int
    checksum: str
    #: Payload layout: :data:`SPILL_FORMAT` (rows) or
    #: :data:`SPILL_FORMAT_COLUMNAR` (per-column vectors).
    format: int = SPILL_FORMAT


def write_spill_file(
    target: BinaryIO,
    *,
    key: Tuple[str, str],
    rows: Sequence[Row],
    token: object,
    cost: float,
    layout: str = "rows",
) -> int:
    """Write one complete spill file to ``target``; returns bytes written.

    ``layout`` picks the payload encoding: ``"rows"`` writes the original
    format-1 row payload, ``"columnar"`` the format-2 per-column vectors
    (both decode back to the identical rows).  The caller owns atomicity
    (write to a temp file, then ``os.replace``): this function only defines
    the layout.
    """
    if layout == "rows":
        spill_format = SPILL_FORMAT
        payload = encode_rows(rows)
        row_count = len(rows)
    elif layout == "columnar":
        spill_format = SPILL_FORMAT_COLUMNAR
        batch = rows if hasattr(rows, "to_rows") else _column_batch_cls().from_rows(rows)
        payload = encode_batch(batch)
        row_count = batch.length
    else:
        raise ValueError(f"unknown spill layout {layout!r} (want 'rows' or 'columnar')")
    header = {
        "format": spill_format,
        "key": list(key),
        "token": _json_token(token),
        "cost": float(cost),
        "rows": row_count,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_line = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
    target.write(MAGIC)
    target.write(header_line)
    target.write(payload)
    return len(MAGIC) + len(header_line) + len(payload)


def _parse_header(line: bytes) -> SpillHeader:
    try:
        raw = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SpillFormatError(f"corrupt spill header: {exc}") from None
    if not isinstance(raw, dict) or raw.get("format") not in _KNOWN_FORMATS:
        raise SpillFormatError(f"unsupported spill format {raw.get('format')!r}")
    key = raw.get("key")
    if (
        not isinstance(key, list)
        or len(key) != 2
        or not all(isinstance(part, str) for part in key)
    ):
        raise SpillFormatError(f"malformed spill key {key!r}")
    try:
        return SpillHeader(
            key=(key[0], key[1]),
            token=wire_token(raw.get("token")),
            cost=float(raw["cost"]),
            row_count=int(raw["rows"]),
            payload_bytes=int(raw["payload_bytes"]),
            checksum=str(raw["sha256"]),
            format=int(raw["format"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SpillFormatError(f"malformed spill header: {exc}") from None


def read_spill_header(source: BinaryIO) -> SpillHeader:
    """Read and validate the magic and header of a spill file.

    Cheap (no payload read, no checksum): the cache tier uses it to index a
    spill directory at recovery without touching row data.
    """
    magic = source.read(len(MAGIC))
    if magic != MAGIC:
        raise SpillFormatError("not a spill file (bad magic)")
    line = source.readline(1 << 20)
    if not line.endswith(b"\n"):
        raise SpillFormatError("truncated spill header")
    return _parse_header(line[:-1])


def _read_verified_payload(source: BinaryIO) -> Tuple[SpillHeader, bytes]:
    """Read one file's header + payload, verifying length and checksum."""
    header = read_spill_header(source)
    payload = source.read(header.payload_bytes + 1)
    if len(payload) < header.payload_bytes:
        raise SpillFormatError(
            f"truncated payload: expected {header.payload_bytes} bytes, "
            f"got {len(payload)}"
        )
    if len(payload) > header.payload_bytes:
        raise SpillFormatError("trailing bytes after payload")
    if hashlib.sha256(payload).hexdigest() != header.checksum:
        raise SpillFormatError("payload checksum mismatch")
    return header, payload


def read_spill_file(source: BinaryIO) -> Tuple[SpillHeader, List[Row]]:
    """Read, verify and decode one spill file into rows (any known format).

    Raises :class:`SpillFormatError` on any inconsistency: bad magic,
    truncated header or payload, checksum mismatch, undecodable payload, or
    a row count that disagrees with the header.  Format-2 (columnar) files
    are decoded through :func:`decode_batch` and materialized to rows, so
    callers never care which layout a file was written with.
    """
    header, payload = _read_verified_payload(source)
    if header.format == SPILL_FORMAT_COLUMNAR:
        batch = decode_batch(payload)
        if batch.length != header.row_count:
            raise SpillFormatError(
                f"row count mismatch: header says {header.row_count}, "
                f"payload has {batch.length}"
            )
        return header, batch.to_rows()
    rows = decode_rows(payload)
    if len(rows) != header.row_count:
        raise SpillFormatError(
            f"row count mismatch: header says {header.row_count}, payload has {len(rows)}"
        )
    return header, rows


def read_spill_batch(source: BinaryIO):
    """Read, verify and decode one spill file into a ``ColumnBatch``.

    The columnar twin of :func:`read_spill_file`: format-2 payloads decode
    straight into their batch (no rows→columns round trip); format-1 files
    are decoded as rows and transposed, so old files keep working on the
    columnar path too.  Returns ``(header, batch)``.
    """
    header, payload = _read_verified_payload(source)
    if header.format == SPILL_FORMAT_COLUMNAR:
        batch = decode_batch(payload)
    else:
        batch = _column_batch_cls().from_rows(decode_rows(payload))
    if batch.length != header.row_count:
        raise SpillFormatError(
            f"row count mismatch: header says {header.row_count}, "
            f"payload has {batch.length}"
        )
    return header, batch
