"""Workload-harness benchmark: the 1-vs-4-shard matrix, measured honestly.

The harness's own acceptance bar, asserted end-to-end through
:func:`repro.workloads.harness.run_setting` — the same code path as the
``python -m repro.workloads.harness`` CLI: identical Zipf-skewed
multi-tenant traffic is replayed against a 1-shard and a 4-shard
``SessionPool`` (closed-loop, so throughput measures serving capacity,
not the arrival process), with the row-correctness oracle sampling
replays on both.  Both settings must report **zero oracle mismatches**
and **bit-identical sampled rows** (equal digests), and the 4-shard pool
must stay within a bounded throughput overhead of the 1-shard pool
(``MIN_SHARD_EFFICIENCY``).

Why bounded overhead rather than a 4-beats-1 headline: the earlier pool
win (3-13x) was entirely downstream of a superlinear subsumption pass in
the shared memo that sharding happened to dodge.  Capping OR-group
growth per source set (``DagConfig.max_or_groups_per_sources``) removed
that pathology — per-batch optimization got ~175x faster — and with the
memo cost now linear, in-process shards merely duplicate cold template
interning while the GIL serializes their CPU work, so a 4-shard pool
measures parity-within-noise against one shard (~0.85-1.1x across
runs) in a single process.  That is
exactly the regression this harness exists to surface; the
process-per-shard rewrite (see ROADMAP) is the remedy, and this module's
report is its before/after instrument.

Writes ``BENCH_harness.json`` (at the repository root, or
``REPRO_BENCH_OUT``): the full schema-validated harness report for both
settings plus the measured comparison, including the shard-efficiency
ratio.  Under ``REPRO_BENCH_TINY`` the traffic shrinks and the
efficiency floor is skipped — correctness (oracle, digests) always
holds.
"""

import json

import pytest

from _env import bench_path, scaled, tiny
from repro.workloads.harness import (
    HarnessConfig,
    build_report,
    generate_traffic,
    run_setting,
    star_templates,
    validate_report,
)

SHARD_MATRIX = (1, 4)

#: The 4-shard pool must keep at least this fraction of 1-shard throughput.
#: Measured headroom: the pool runs at ~0.85-1.1x in-process (GIL-bound,
#: duplicated cold interning; parity within noise); 0.6 leaves room for
#: CI-runner noise while still catching a real sharding-overhead regression.
MIN_SHARD_EFFICIENCY = 0.6


@pytest.fixture(scope="module")
def base_config():
    return HarnessConfig(
        scale=1.0,
        workload="star",
        requests=scaled(120, 24),
        tenants=8,
        zipf=1.2,
        templates=6,
        arrival="closed",
        workers=4,
        max_batch_size=4,
        oracle=("row",),
        oracle_sample=0.2,
        seed=5,
    )


@pytest.fixture(scope="module")
def traffic(base_config):
    """One request list, replayed verbatim by every setting."""
    templates = star_templates(
        base_config.templates, n_dimensions=base_config.n_dimensions, seed=base_config.seed
    )
    return generate_traffic(templates, base_config.traffic_spec())


def test_shard_matrix_identical_rows_bounded_overhead(base_config, traffic):
    """The acceptance criterion, asserted directly; writes BENCH_harness.json."""
    reports = {}
    for shards in SHARD_MATRIX:
        # Best-of-2 per setting: one drive's scheduling hiccup on a noisy
        # runner must not decide a throughput comparison.
        candidates = [
            run_setting(base_config.with_overrides(shards=shards), traffic=traffic)
            for _ in range(2)
        ]
        reports[shards] = max(candidates, key=lambda r: r.throughput_rps)

    one, four = reports[1], reports[4]

    for report in (one, four):
        assert report.completed == len(traffic)
        assert report.oracle["checked"] > 0
        assert report.oracle["mismatches"] == 0, report.oracle["mismatch_details"]

    assert four.sampled_rows_digest == one.sampled_rows_digest, (
        "sharding must never change sampled rows"
    )
    assert four.sampled_rows == one.sampled_rows

    assert len(four.shard_batches_served) == 4
    assert sum(1 for load in four.shard_batches_served if load) >= 2, (
        "skewed traffic must still spread over shards"
    )

    shard_efficiency = four.throughput_rps / one.throughput_rps
    if not tiny():
        assert shard_efficiency >= MIN_SHARD_EFFICIENCY, (
            f"4-shard pool ({four.throughput_rps:.1f} req/s) fell below "
            f"{MIN_SHARD_EFFICIENCY:.0%} of the 1-shard baseline "
            f"({one.throughput_rps:.1f} req/s): sharding overhead regressed"
        )

    document = build_report([one, four])
    validate_report(document)
    document["comparison"] = {
        "tiny": tiny(),
        "one_shard_rps": one.throughput_rps,
        "four_shard_rps": four.throughput_rps,
        "shard_efficiency": shard_efficiency,
        "min_shard_efficiency": MIN_SHARD_EFFICIENCY,
        "digests_identical": True,
        "oracle_mismatches": 0,
        "note": (
            "in-process shards are GIL-serialized and duplicate cold "
            "interning; the process-per-shard rewrite (ROADMAP) is expected "
            "to lift shard_efficiency above 1.0"
        ),
    }
    bench_path("BENCH_harness.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
