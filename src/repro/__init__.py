"""repro — a reproduction of "Efficient and Provable Multi-Query Optimization".

Kathuria & Sudarshan (PODS 2017) reformulate multi-query optimization (MQO)
as unconstrained normalized submodular maximization (UNSM) of the
materialization benefit and give the MarginalGreedy algorithm with a
matching approximation guarantee and hardness result.

This package provides:

* the UNSM algorithms themselves (:mod:`repro.core`),
* a complete Volcano-style query-optimization substrate — catalog,
  relational algebra, AND-OR DAG / memo, transformation rules, cost model,
  plan extraction (:mod:`repro.catalog`, :mod:`repro.algebra`,
  :mod:`repro.dag`, :mod:`repro.rules`, :mod:`repro.cost`,
  :mod:`repro.optimizer`),
* an in-memory execution engine for validating shared plans
  (:mod:`repro.execution`),
* the TPCD workloads of the paper's evaluation (:mod:`repro.workloads`), and
* an experiment harness that regenerates every figure
  (:mod:`repro.experiments`).

Quick start::

    from repro import MultiQueryOptimizer, workloads
    from repro.catalog.tpcd import tpcd_catalog

    catalog = tpcd_catalog(scale_factor=1)
    batch = workloads.composite_batch(2)          # BQ2: Q3 and Q5, twice each
    optimizer = MultiQueryOptimizer(catalog)
    result = optimizer.optimize(batch, strategy="marginal-greedy")
    print(result.summary())
"""

from __future__ import annotations

__version__ = "1.0.0"

from . import core  # noqa: F401  (re-exported subpackage)

__all__ = ["core", "__version__"]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily expose heavyweight entry points at the package top level.

    ``MultiQueryOptimizer`` pulls in the whole optimizer stack; importing it
    lazily keeps ``import repro`` cheap for users who only need the
    submodular toolkit.
    """
    if name == "MultiQueryOptimizer":
        from .core.mqo import MultiQueryOptimizer

        return MultiQueryOptimizer
    if name == "OptimizerSession":
        from .service.session import OptimizerSession

        return OptimizerSession
    if name == "BatchScheduler":
        from .service.scheduler import BatchScheduler

        return BatchScheduler
    if name == "MaterializationCache":
        from .service.matcache import MaterializationCache

        return MaterializationCache
    if name == "workloads":
        # ``from . import workloads`` would re-enter this __getattr__ through
        # the import system's fromlist handling and recurse forever; import
        # the submodule directly instead.
        import importlib

        return importlib.import_module(".workloads", __name__)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
