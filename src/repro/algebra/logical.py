"""Logical operator trees.

A :class:`LogicalPlan` is the surface representation of a query: the query
builder (:mod:`repro.algebra.builder`) and the SQL parser
(:mod:`repro.parser`) both produce these trees.  Before optimization they
are normalized into SPJA blocks (:mod:`repro.dag.blocks`) and folded into
the shared AND-OR DAG.

Only the operators needed for the paper's workloads are provided: base
relations, selection, projection, inner join, grouping/aggregation and
derived tables (named sub-queries, used for decorrelated queries and
shared views such as TPC-D's ``revenue`` view in Q15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from .expressions import AggregateExpr, ColumnRef, Predicate, conjuncts

__all__ = [
    "LogicalPlan",
    "Relation",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "DerivedTable",
    "Query",
    "QueryBatch",
    "walk",
]


@dataclass(frozen=True)
class LogicalPlan:
    """Base class for logical operators (frozen; children are attributes)."""

    def children(self) -> Tuple["LogicalPlan", ...]:
        return ()

    def pretty(self, indent: int = 0) -> str:
        """A human-readable, indented rendering of the operator tree."""
        pad = "  " * indent
        lines = [pad + self._describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class Relation(LogicalPlan):
    """A base relation scan, optionally renamed with an alias."""

    table: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        """The alias if given, otherwise the table name."""
        return self.alias or self.table

    def _describe(self) -> str:
        if self.alias and self.alias != self.table:
            return f"Relation({self.table} AS {self.alias})"
        return f"Relation({self.table})"


@dataclass(frozen=True)
class Select(LogicalPlan):
    """Selection: keep only the rows satisfying ``predicate``."""

    child: LogicalPlan
    predicate: Predicate

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return f"Select({self.predicate})"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Projection onto a tuple of columns."""

    child: LogicalPlan
    columns: Tuple[ColumnRef, ...]

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return "Project(" + ", ".join(str(c) for c in self.columns) + ")"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Inner join of two inputs on an optional predicate (None = cross product)."""

    left: LogicalPlan
    right: LogicalPlan
    predicate: Optional[Predicate] = None

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def _describe(self) -> str:
        return f"Join({self.predicate})" if self.predicate else "Join(cross)"


@dataclass(frozen=True)
class Aggregate(LogicalPlan):
    """Grouping and aggregation.

    ``group_by`` may be empty (a scalar aggregate producing a single row).
    """

    child: LogicalPlan
    group_by: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggregateExpr, ...]

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def _describe(self) -> str:
        keys = ", ".join(str(c) for c in self.group_by) or "()"
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"Aggregate(group by {keys}; {aggs})"


@dataclass(frozen=True)
class DerivedTable(LogicalPlan):
    """A named sub-query used as a source (a FROM-clause derived table).

    Derived tables are the block boundaries of the normalizer: the inner
    plan is optimized as its own SPJA block, and the outer block treats its
    result as a source named ``alias``.
    """

    child: LogicalPlan
    alias: str

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return f"DerivedTable(AS {self.alias})"


@dataclass(frozen=True)
class Query:
    """A named query: the unit submitted to the (multi-)query optimizer."""

    name: str
    plan: LogicalPlan

    def pretty(self) -> str:
        return f"-- {self.name}\n{self.plan.pretty()}"


@dataclass(frozen=True)
class QueryBatch:
    """A batch of queries optimized together (the MQO input)."""

    name: str
    queries: Tuple[Query, ...]

    def __post_init__(self) -> None:
        names = [q.name for q in self.queries]
        if len(names) != len(set(names)):
            raise ValueError("query names within a batch must be unique")
        if not self.queries:
            raise ValueError("a query batch must contain at least one query")

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def pretty(self) -> str:
        return "\n\n".join(q.pretty() for q in self.queries)


def walk(plan: LogicalPlan) -> Iterator[LogicalPlan]:
    """Yield every operator of the tree in pre-order."""
    yield plan
    for child in plan.children():
        yield from walk(child)
