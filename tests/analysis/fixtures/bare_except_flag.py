"""Must-flag fixture for ``bare-except-swallow``.  Never imported."""


def swallow_everything(path):
    try:
        return open(path).read()
    except Exception:
        pass


def swallow_bare(handle):
    try:
        handle.close()
    except:  # noqa: E722
        pass


def swallow_specific(store, key):
    try:
        del store[key]
    except KeyError:
        pass
