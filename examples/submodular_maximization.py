#!/usr/bin/env python3
"""Using the UNSM toolkit directly (no query optimizer involved).

The algorithmic core of the paper — MarginalGreedy for unconstrained
normalized submodular maximization with possibly negative values — is usable
on its own.  This example builds a Profitted Max Coverage instance (the
objective family from the paper's hardness proof), decomposes it, runs
MarginalGreedy and its lazy variant, and compares the result against the
exhaustive optimum and the Theorem-1 guarantee.

Run with::

    python examples/submodular_maximization.py
"""

from repro.core.coverage import ProfittedMaxCoverage, perfect_cover_instance
from repro.core.decomposition import canonical_decomposition
from repro.core.exhaustive import maximize
from repro.core.marginal_greedy import (
    lazy_marginal_greedy,
    marginal_greedy,
    theorem1_bound,
    theorem1_factor,
)


def main() -> None:
    instance = perfect_cover_instance(n_elements=24, cover_size=4, n_decoys=6, seed=11)
    problem = ProfittedMaxCoverage(instance, gamma=2.5)
    decomposition = problem.decomposition()

    print(f"Ground set: {instance.n_elements} elements, {instance.n_subsets} subsets, "
          f"budget l={instance.budget}, gamma={problem.gamma}")

    optimum = maximize(decomposition.original)
    print(f"Exhaustive optimum: f(Θ) = {optimum.best_value:.4f} with {len(optimum.best_set)} sets")

    eager = marginal_greedy(decomposition)
    lazy = lazy_marginal_greedy(decomposition)
    print(f"MarginalGreedy      : f(X) = {eager.value:.4f} with {len(eager.selected)} sets "
          f"({eager.monotone_evaluations} marginal evaluations)")
    print(f"LazyMarginalGreedy  : f(X) = {lazy.value:.4f} with {len(lazy.selected)} sets "
          f"({lazy.monotone_evaluations} marginal evaluations)")

    c_opt = decomposition.cost.value(optimum.best_set)
    factor = theorem1_factor(optimum.best_value, c_opt)
    bound = theorem1_bound(optimum.best_value, c_opt)
    print(f"Theorem 1 factor    : {factor:.4f}  (guaranteed value {bound:.4f})")
    print(f"Bound satisfied     : {eager.value >= bound - 1e-9}")

    # The canonical (Proposition 1) decomposition can also be derived
    # automatically from the objective alone.
    canonical = canonical_decomposition(decomposition.original)
    rerun = marginal_greedy(canonical)
    print(f"With the canonical decomposition: f(X) = {rerun.value:.4f}")


if __name__ == "__main__":
    main()
