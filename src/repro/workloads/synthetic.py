"""Synthetic catalogs and workloads for tests, examples and micro-benchmarks.

Two families are provided:

* the *textbook* catalog and query pair of the paper's Example 1 / Figure 1
  (relations A, B, C, D with unit costs chosen so that sharing ``B ⋈ C`` is
  profitable), and
* random star-join workloads over a synthetic catalog, used by the
  property-based integration tests and the scalability benchmarks.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence, Tuple

from ..algebra import builder as qb
from ..algebra.expressions import col, eq, ge, lt
from ..algebra.logical import Query, QueryBatch
from ..catalog.catalog import Catalog
from ..catalog.schema import Column, DataType, Index, Table
from ..catalog.statistics import ColumnStatistics, TableStatistics

__all__ = [
    "example1_catalog",
    "example1_batch",
    "star_schema_catalog",
    "star_schema_database",
    "drifting_star_database",
    "random_star_query",
    "random_star_batch",
    "zipfian_cdf",
    "zipfian_index",
]


# ---------------------------------------------------------------------------
# Seeded randomness helpers
#
# RNG hygiene contract for this module: every generator draws exclusively
# from an explicit ``random.Random`` it seeds (or is handed) itself — never
# from the module-level ``random`` functions, whose hidden global state
# would make two same-seed runs diverge as soon as anything else in the
# process draws.  ``tests/workloads/test_rng_hygiene.py`` audits the AST
# for violations and pins same-seed ⇒ byte-identical databases.
# ---------------------------------------------------------------------------


def zipfian_cdf(n: int, s: float) -> List[float]:
    """The cumulative Zipf(s) distribution over ranks ``0 .. n-1``.

    Rank ``k`` (0-based) carries probability ``(k+1)^-s / H(n, s)``; with
    ``s == 0`` every rank is equally likely.  The returned list is what
    :func:`zipfian_index` bisects, so callers sampling many times should
    compute it once.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if s < 0:
        raise ValueError("zipf exponent must be non-negative")
    weights = [(k + 1) ** -s for k in range(n)]
    total = sum(weights)
    return list(itertools.accumulate(w / total for w in weights))


def zipfian_index(rng: random.Random, cdf: Sequence[float]) -> int:
    """Draw a 0-based rank from a :func:`zipfian_cdf` distribution."""
    return min(bisect.bisect_left(cdf, rng.random()), len(cdf) - 1)


# ---------------------------------------------------------------------------
# Example 1 (Figure 1 of the paper)
# ---------------------------------------------------------------------------


def example1_catalog(
    large_rows: int = 2_000_000, small_rows: int = 10_000, join_fanout: int = 10
) -> Catalog:
    """Four relations A, B, C, D with join keys arranged as in Example 1.

    A joins B (``a_join = b_key``), B joins C (``b_join = c_key``) and C
    joins D (``c_join = d_key``).  B plays the role of the expensive
    relation: it is ``large_rows`` wide while A, C and D are small lookup
    relations, and B's join column draws from a domain ``join_fanout`` times
    larger than C (only a fraction of B matches), so computing ``B ⋈ C``
    requires a full pass over B but its result is small — the situation of
    the paper's Example 1, where materializing ``B ⋈ C`` once and reading it
    from both queries beats the locally optimal plans that each recompute
    it.
    """
    catalog = Catalog()
    sizes = {"a": small_rows, "b": large_rows, "c": small_rows, "d": small_rows}
    # Domain of the column each relation's join column refers to.
    join_targets = {
        "a": large_rows,
        "b": small_rows * join_fanout,
        "c": small_rows,
        "d": small_rows,
    }
    for name in ("a", "b", "c", "d"):
        rows = sizes[name]
        key = f"{name}_key"
        join_col = f"{name}_join"
        table = Table(
            name=name,
            columns=(
                Column(key, DataType.INTEGER),
                Column(join_col, DataType.INTEGER),
                Column(f"{name}_payload", DataType.STRING, width=64),
            ),
            primary_key=(key,),
        )
        catalog.add_table(
            table,
            TableStatistics(
                row_count=rows,
                row_width=table.row_width,
                columns={
                    key: ColumnStatistics(distinct_count=rows, min_value=0, max_value=rows),
                    join_col: ColumnStatistics(
                        distinct_count=min(rows, join_targets[name]),
                        min_value=0,
                        max_value=join_targets[name],
                    ),
                },
            ),
            indexes=[Index(f"{name}_pk", name, (key,), clustered=True)],
        )
    return catalog


def example1_batch() -> QueryBatch:
    """The two queries of Example 1: ``A ⋈ B ⋈ C`` and ``B ⋈ C ⋈ D``."""
    q1 = (
        qb.scan("a")
        .join(qb.scan("b"), eq(col("a_join"), col("b_key")))
        .join(qb.scan("c"), eq(col("b_join"), col("c_key")))
        .query("ABC")
    )
    q2 = (
        qb.scan("b")
        .join(qb.scan("c"), eq(col("b_join"), col("c_key")))
        .join(qb.scan("d"), eq(col("c_join"), col("d_key")))
        .query("BCD")
    )
    return QueryBatch("example1", (q1, q2))


# ---------------------------------------------------------------------------
# Random star-join workloads
# ---------------------------------------------------------------------------


def star_schema_catalog(
    n_dimensions: int = 6,
    fact_rows: int = 1_000_000,
    dimension_rows: int = 10_000,
    key_fanout: int = 1,
) -> Catalog:
    """A star schema: one fact table referencing ``n_dimensions`` dimensions.

    ``key_fanout`` widens the domain the fact table's foreign keys draw
    from to ``dimension_rows × key_fanout``: with a fanout above 1 only
    ``1/key_fanout`` of the fact rows match a dimension, so fact⋈dimension
    results are *small* relative to the fact scan that produces them — the
    selective-join situation in which materializing a shared subexpression
    pays off.  The default of 1 keeps the every-row-matches data shape;
    note that the foreign keys' distinct counts are now additionally capped
    by ``fact_rows`` (a column cannot have more distinct values than the
    table has rows), which tightens estimates for catalogs whose fact table
    is smaller than its dimensions.
    """
    catalog = Catalog()
    key_domain = dimension_rows * max(key_fanout, 1)
    fact_columns: List[Column] = [Column("f_id", DataType.INTEGER)]
    fact_stats = {"f_id": ColumnStatistics(fact_rows, 0, fact_rows)}
    for i in range(n_dimensions):
        fact_columns.append(Column(f"f_d{i}_key", DataType.INTEGER))
        fact_stats[f"f_d{i}_key"] = ColumnStatistics(
            min(fact_rows, key_domain), 0, key_domain
        )
    fact_columns.append(Column("f_value", DataType.FLOAT))
    fact_stats["f_value"] = ColumnStatistics(min(fact_rows, 100_000), 0.0, 1e6)
    fact = Table("fact", tuple(fact_columns), primary_key=("f_id",))
    catalog.add_table(
        fact,
        TableStatistics(fact_rows, fact.row_width, fact_stats),
        indexes=[Index("fact_pk", "fact", ("f_id",), clustered=True)],
    )
    for i in range(n_dimensions):
        name = f"dim{i}"
        table = Table(
            name,
            (
                Column(f"d{i}_key", DataType.INTEGER),
                Column(f"d{i}_attr", DataType.INTEGER),
                Column(f"d{i}_label", DataType.STRING, width=32),
            ),
            primary_key=(f"d{i}_key",),
        )
        catalog.add_table(
            table,
            TableStatistics(
                dimension_rows,
                table.row_width,
                {
                    f"d{i}_key": ColumnStatistics(dimension_rows, 0, dimension_rows),
                    f"d{i}_attr": ColumnStatistics(100, 0, 100),
                },
            ),
            indexes=[Index(f"dim{i}_pk", name, (f"d{i}_key",), clustered=True)],
        )
    return catalog


def star_schema_database(
    *,
    seed: int = 0,
    n_dimensions: int = 6,
    fact_rows: int = 300,
    dimension_rows: int = 40,
    key_fanout: int = 1,
    value_skew: float = 0.0,
):
    """In-memory data matching :func:`star_schema_catalog`, sized for execution.

    Cardinalities are small enough that the differential correctness harness
    can run every strategy's consolidated plan in milliseconds, but large
    enough that the random star-join queries return non-trivial row sets.
    ``f_value`` is an integral float, so SUM aggregates are exact and every
    strategy's results compare bit-for-bit regardless of addition order.
    ``key_fanout`` must match the catalog's: foreign keys are drawn from
    ``dimension_rows × key_fanout`` values, so only ``1/key_fanout`` of the
    fact rows join with a dimension.

    ``value_skew`` above 0 draws the fact table's foreign keys from a
    Zipfian distribution over the same domain instead of uniformly (rank 0
    = key 0 is the hottest), so a scaled workload harness can generate the
    hot-key data shape production traffic has.  The default of 0.0 keeps
    the draw sequence — and therefore every historical database —
    byte-identical.
    """
    from ..execution.data import Database

    rng = random.Random(seed)
    key_domain = dimension_rows * max(key_fanout, 1)
    key_cdf = zipfian_cdf(key_domain, value_skew) if value_skew > 0 else None

    def draw_key() -> int:
        if key_cdf is None:
            return rng.randrange(key_domain)
        return zipfian_index(rng, key_cdf)

    db = Database()
    for i in range(n_dimensions):
        db.add_table(
            f"dim{i}",
            [
                {
                    f"d{i}_key": key,
                    f"d{i}_attr": rng.randrange(100),
                    f"d{i}_label": f"d{i}-{key}",
                }
                for key in range(dimension_rows)
            ],
        )
    db.add_table(
        "fact",
        [
            {
                "f_id": fid,
                **{f"f_d{i}_key": draw_key() for i in range(n_dimensions)},
                "f_value": float(rng.randrange(1, 1000)),
            }
            for fid in range(fact_rows)
        ],
    )
    return db


def drifting_star_database(
    passes: int = 3,
    *,
    seed: int = 0,
    n_dimensions: int = 6,
    fact_rows: int = 300,
    dimension_rows: int = 40,
    key_fanout: int = 1,
    value_skew: float = 0.0,
    drift_factor: float = 1.0,
    hot_fraction: float = 0.2,
):
    """A star database whose fact table drifts between passes (a generator).

    The first ``next()`` yields a database identical to
    :func:`star_schema_database` (same ``seed``, ``key_fanout`` and
    ``value_skew``); every
    later ``next()`` mutates **the same**
    :class:`~repro.execution.data.Database` instance via ``replace_table``
    (bumping its version, so the serving layer's caches invalidate exactly
    as they would for a real data change) and yields it again.  Pass ``p``
    redraws the fact table with

    * ``fact_rows × drift_factor ** p`` rows (``drift_factor`` below 1.0
      shrinks the table, above 1.0 grows it), and
    * foreign keys concentrated on the ``hot_fraction`` hottest rows of
      each dimension — with a ``key_fanout`` above 1 the uniform workload
      joins only ``1/key_fanout`` of the fact rows, so the skew makes
      *every* row match and fact⋈dimension results explode by a factor of
      ``key_fanout`` against the static estimate.

    The catalog statistics (:func:`star_schema_catalog` sized for pass 0)
    never change, so an adaptive session sees a widening gap between
    estimated and observed cardinalities: exactly the scenario the
    drift-triggered re-optimization of :mod:`repro.adaptive` exists for.
    """
    if passes < 1:
        raise ValueError("passes must be positive")
    db = star_schema_database(
        seed=seed,
        n_dimensions=n_dimensions,
        fact_rows=fact_rows,
        dimension_rows=dimension_rows,
        key_fanout=key_fanout,
        value_skew=value_skew,
    )
    yield db
    rng = random.Random(seed ^ 0x5EED)
    for index in range(1, passes):
        rows = max(4, int(round(fact_rows * drift_factor ** index)))
        hot = max(1, int(round(dimension_rows * hot_fraction)))
        db.replace_table(
            "fact",
            [
                {
                    "f_id": fid,
                    **{
                        f"f_d{i}_key": rng.randrange(hot)
                        for i in range(n_dimensions)
                    },
                    "f_value": float(rng.randrange(1, 1000)),
                }
                for fid in range(rows)
            ],
        )
        yield db


def random_star_query(
    name: str,
    rng: random.Random,
    *,
    n_dimensions_available: int = 6,
    min_dimensions: int = 2,
    max_dimensions: int = 4,
) -> Query:
    """A random star-join query: the fact table joined with a few dimensions."""
    count = rng.randint(min_dimensions, min(max_dimensions, n_dimensions_available))
    chosen = sorted(rng.sample(range(n_dimensions_available), count))
    plan = qb.scan("fact")
    for i in chosen:
        plan = plan.join(qb.scan(f"dim{i}"), eq(col(f"f_d{i}_key"), col(f"d{i}_key")))
    # A selective predicate on one of the chosen dimensions.
    pick = rng.choice(chosen)
    plan = plan.filter(lt(col(f"d{pick}_attr"), rng.randint(10, 90)))
    group_key = f"d{chosen[0]}_attr"
    return plan.aggregate([group_key], [("sum", "f_value", "total")]).query(name)


def random_star_batch(
    n_queries: int,
    seed: int = 0,
    *,
    n_dimensions: int = 6,
    min_dimensions: int = 2,
    max_dimensions: int = 4,
) -> QueryBatch:
    """A batch of random star-join queries (deterministic for a given seed)."""
    rng = random.Random(seed)
    queries = tuple(
        random_star_query(
            f"S{i}",
            rng,
            n_dimensions_available=n_dimensions,
            min_dimensions=min_dimensions,
            max_dimensions=max_dimensions,
        )
        for i in range(n_queries)
    )
    return QueryBatch(f"star-{n_queries}-{seed}", queries)
