"""The executor-backend registry: name → Executor class.

The serving layer selects its execution backend by name
(``OptimizerSession(catalog, executor="columnar")``) so sessions, pools and
the CLI runner can plumb one string through instead of importing executor
classes.  Four backends ship:

* ``"row"`` — the tuple-at-a-time interpreter
  (:class:`~repro.execution.executor.Executor`); slow but transparently
  simple, kept as the differential oracle;
* ``"columnar"`` — the vectorized backend
  (:class:`~repro.execution.columnar.executor.ColumnarExecutor`);
* ``"sqlite"`` — the SQL oracle
  (:class:`~repro.execution.sql.executor.SQLiteExecutor`): plans rendered
  to SQL and executed on stdlib ``sqlite3``, an engine-independent ground
  truth for the Python backends;
* ``"duckdb"`` — the same oracle on DuckDB
  (:class:`~repro.execution.sql.executor.DuckDBExecutor`); registered
  always, but constructing it requires the optional ``duckdb`` package.
"""

from __future__ import annotations

from typing import Callable, Dict, Type

from .data import Database
from .executor import Executor

__all__ = ["DEFAULT_BACKEND", "available_backends", "create_executor", "resolve_backend"]

DEFAULT_BACKEND = "row"


def _registry() -> Dict[str, Type[Executor]]:
    # Imported lazily so `repro.execution` does not pay for the columnar or
    # SQL modules on the (default) row path.  Importing the SQL module never
    # imports duckdb itself — that happens when a DuckDBExecutor is built —
    # so the optional dependency stays optional at registry level.
    from .columnar.executor import ColumnarExecutor
    from .sql.executor import DuckDBExecutor, SQLiteExecutor

    return {
        "row": Executor,
        "columnar": ColumnarExecutor,
        "sqlite": SQLiteExecutor,
        "duckdb": DuckDBExecutor,
    }


def available_backends() -> tuple:
    """The registered backend names, default first."""
    names = _registry()
    return tuple(sorted(names, key=lambda name: (name != DEFAULT_BACKEND, name)))


def resolve_backend(name: str) -> Type[Executor]:
    """The executor class registered under ``name``.

    Raises ``ValueError`` (listing the valid names) for unknown backends so
    a typo in a session/pool/CLI flag fails loudly at attach time, not at
    first execution.
    """
    registry = _registry()
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"available: {', '.join(sorted(registry))}"
        ) from None


def create_executor(name: str, database: Database) -> Executor:
    """Instantiate the named backend over ``database``."""
    return resolve_backend(name)(database)
