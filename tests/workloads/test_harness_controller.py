"""End-to-end harness tests: tiny runs through the real serving stack."""

import json

import pytest

from repro.workloads.harness import (
    HarnessConfig,
    REPORT_FORMAT,
    run_setting,
    validate_report,
    write_csv,
    write_json,
)
from repro.workloads.harness.__main__ import build_parser, configs_from_args, main
from repro.workloads.harness.controller import _segments
from repro.workloads.harness.report import flatten_setting


TINY = dict(requests=24, tenants=4, templates=3, workers=2, oracle_sample=0.25)


@pytest.fixture(scope="module")
def tiny_report():
    return run_setting(HarnessConfig(shards=2, drift_at=(0.5,), **TINY))


def test_run_completes_everything(tiny_report):
    assert tiny_report.completed == tiny_report.requests == 24
    assert tiny_report.throughput_rps > 0
    assert tiny_report.wall_seconds > 0


def test_run_latency_series_present(tiny_report):
    assert set(tiny_report.latency) >= {"request", "optimize", "execute", "queue_wait"}
    request = tiny_report.latency["request"]
    assert request["count"] == 24
    assert 0 < request["p50"] <= request["p95"] <= request["p99"]


def test_run_counters_schema_stable(tiny_report):
    # Non-spilling, non-adaptive run still reports every counter column.
    assert {"session", "cache", "feedback"} <= set(tiny_report.counters)
    assert "disk_evictions" in tiny_report.counters["cache"]
    assert "records" in tiny_report.counters["feedback"]
    assert tiny_report.counters["session"]["queries_executed"] == 24


def test_run_oracle_checked_and_clean(tiny_report):
    assert tiny_report.oracle["mismatches"] == 0
    assert tiny_report.oracle["checked"] > 0
    assert tiny_report.oracle_mismatches == 0


def test_run_applied_the_drift_schedule(tiny_report):
    assert tiny_report.drift_steps_applied == 1


def test_run_spreads_batches_over_shards(tiny_report):
    assert len(tiny_report.shard_batches_served) == 2
    assert sum(tiny_report.shard_batches_served) > 0


def test_identical_config_identical_digest(tiny_report):
    # Full determinism modulo scheduling: the same config serves the same
    # sampled rows, bit for bit, on a rerun.
    again = run_setting(HarnessConfig(shards=2, drift_at=(0.5,), **TINY))
    assert again.sampled_rows_digest == tiny_report.sampled_rows_digest
    assert again.oracle["mismatches"] == 0


def test_report_roundtrip_and_schema(tiny_report, tmp_path):
    report = write_json([tiny_report], tmp_path / "r.json")
    validate_report(report)
    loaded = json.loads((tmp_path / "r.json").read_text())
    assert loaded["format"] == REPORT_FORMAT
    validate_report(loaded)
    assert loaded["settings"][0]["label"] == tiny_report.label
    # sampled rows must NOT leak into the serialized report
    assert "sampled_rows" not in loaded["settings"][0]


def test_report_csv_one_row_per_setting(tiny_report, tmp_path):
    header = write_csv([tiny_report], tmp_path / "r.csv")
    lines = (tmp_path / "r.csv").read_text().strip().splitlines()
    assert len(lines) == 2
    assert "throughput_rps" in header and "latency_request_p99" in header
    row = flatten_setting(tiny_report.as_dict())
    assert row["oracle_mismatches"] == 0
    assert set(row) == set(header)


@pytest.mark.parametrize(
    "mutation",
    [
        {"format": 99},
        {"kind": "bench"},
        {"settings": []},
    ],
)
def test_validate_report_rejects_bad_envelopes(tiny_report, mutation):
    base = {
        "format": REPORT_FORMAT,
        "kind": "harness",
        "settings": [tiny_report.as_dict()],
    }
    base.update(mutation)
    with pytest.raises(ValueError):
        validate_report(base)


def test_validate_report_rejects_missing_setting_field(tiny_report):
    setting = tiny_report.as_dict()
    del setting["throughput_rps"]
    with pytest.raises(ValueError, match="throughput_rps"):
        validate_report(
            {"format": REPORT_FORMAT, "kind": "harness", "settings": [setting]}
        )


def test_segments_split_at_fractions():
    requests = list(range(10))
    parts = _segments(requests, (0.5,))
    assert [len(p) for p in parts] == [5, 5]
    parts = _segments(requests, (0.3, 0.7))
    assert [len(p) for p in parts] == [3, 4, 3]
    assert _segments(requests, ()) == [requests]


def test_config_validation():
    with pytest.raises(ValueError):
        HarnessConfig(drift_at=(0.0,))
    with pytest.raises(ValueError):
        HarnessConfig(drift_at=(1.5,))
    with pytest.raises(ValueError):
        HarnessConfig(shards=0)
    with pytest.raises(ValueError):
        HarnessConfig(arrival="warp:9")


def test_cli_matrix_cross_product():
    args = build_parser().parse_args(
        ["--scale", "1,2", "--shards", "1,4", "--executor", "row,columnar"]
    )
    configs = configs_from_args(args)
    assert len(configs) == 8
    assert {(c.scale, c.shards, c.executor) for c in configs} == {
        (s, n, e) for s in (1.0, 2.0) for n in (1, 4) for e in ("row", "columnar")
    }


def test_cli_oracle_none_disables_oracle():
    args = build_parser().parse_args(["--oracle", "none"])
    (config,) = configs_from_args(args)
    assert config.oracle == ()


def test_cli_end_to_end(tmp_path, capsys):
    json_path = tmp_path / "out.json"
    csv_path = tmp_path / "out.csv"
    code = main(
        [
            "--requests", "12",
            "--tenants", "3",
            "--templates", "2",
            "--shards", "2",
            "--workers", "2",
            "--oracle-sample", "0.5",
            "--json", str(json_path),
            "--csv", str(csv_path),
        ]
    )
    assert code == 0
    report = validate_report(json.loads(json_path.read_text()))
    assert len(report["settings"]) == 1
    assert csv_path.read_text().count("\n") == 2
    out = capsys.readouterr().out
    assert "0 mismatched" in out


def test_cli_rejects_bad_arrival(tmp_path):
    code = main(
        ["--arrival", "poisson:-1", "--json", str(tmp_path / "x.json"), "--csv", str(tmp_path / "x.csv")]
    )
    assert code == 2
