#!/usr/bin/env python3
"""Quickstart: multi-query optimization on the paper's introductory example.

Reproduces Example 1 / Figure 1 of "Efficient and Provable Multi-Query
Optimization": two queries ``A ⋈ B ⋈ C`` and ``B ⋈ C ⋈ D`` are optimized
(a) independently (plain Volcano, no sharing) and (b) jointly with the
Greedy and MarginalGreedy materialization-selection algorithms, which
discover that computing ``B ⋈ C`` once and reading it from both queries is
cheaper.  The consolidated plans are then run on a tiny in-memory database
to show that sharing does not change the query results.

Run with::

    python examples/quickstart.py
"""

from repro.core.mqo import MultiQueryOptimizer
from repro.execution import Executor, example1_database
from repro.workloads.synthetic import example1_batch, example1_catalog


def main() -> None:
    catalog = example1_catalog()
    batch = example1_batch()

    print("Queries in the batch:")
    print(batch.pretty())
    print()

    optimizer = MultiQueryOptimizer(catalog)
    results = optimizer.compare(batch, strategies=("volcano", "greedy", "marginal-greedy"))

    for strategy, result in results.items():
        print(f"--- {strategy}")
        print(result.summary())
        print()

    # Execute the volcano and the shared plans on a tiny database and check
    # that they return identical results.
    database = example1_database()
    executor = Executor(database)
    volcano_rows = executor.execute_result(results["volcano"].plan)
    shared_rows = executor.execute_result(results["greedy"].plan)
    for query_name in volcano_rows:
        unshared = volcano_rows[query_name]
        shared = shared_rows[query_name]
        same = sorted(map(sorted, (r.items() for r in unshared))) == sorted(
            map(sorted, (r.items() for r in shared))
        )
        print(f"{query_name}: {len(unshared)} rows; shared plan returns the same rows: {same}")


if __name__ == "__main__":
    main()
