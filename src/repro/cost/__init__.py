"""Cost model and cardinality estimation."""

from .model import CostModel, CostParameters, DEFAULT_COST_PARAMETERS
from .cardinality import (
    CatalogResolver,
    ColumnInfo,
    ColumnResolver,
    SelectivityEstimator,
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
)

__all__ = [
    "CostModel",
    "CostParameters",
    "DEFAULT_COST_PARAMETERS",
    "CatalogResolver",
    "ColumnInfo",
    "ColumnResolver",
    "SelectivityEstimator",
    "DEFAULT_EQUALITY_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
]
