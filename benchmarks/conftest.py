"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's figures and prints the same
series the paper reports (use ``pytest benchmarks/ --benchmark-only -s`` to
see the tables).  The TPCD experiments are expensive — a full BQ1–BQ6 run
at both scales takes tens of minutes — so by default the harness runs a
reduced configuration; set the environment variables below for the full
reproduction:

=========================  =========================================  =========
variable                   meaning                                    default
=========================  =========================================  =========
``REPRO_BENCH_BATCHES``    how many composite batches (BQ1..BQn)      3
``REPRO_BENCH_FULL``       set to ``1`` to run BQ1..BQ6                unset
=========================  =========================================  =========
"""

import os

import pytest


def max_batches() -> int:
    if os.environ.get("REPRO_BENCH_FULL"):
        return 6
    return int(os.environ.get("REPRO_BENCH_BATCHES", "3"))


@pytest.fixture(scope="session")
def bench_max_batches() -> int:
    return max_batches()
