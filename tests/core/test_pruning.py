"""Tests for Theorem 4's universe reduction under cardinality constraints."""

import pytest

from repro.core.coverage import ProfittedMaxCoverage, random_instance
from repro.core.decomposition import decomposition_from_parts
from repro.core.marginal_greedy import marginal_greedy
from repro.core.pruning import prune_universe
from repro.core.set_functions import AdditiveFunction, LambdaSetFunction, RestrictedFunction


def make_decomposition(seed=0, n_elements=14, n_subsets=8, budget=3, gamma=2.0):
    instance = random_instance(
        n_elements=n_elements, n_subsets=n_subsets, budget=budget, seed=seed
    )
    return ProfittedMaxCoverage(instance, gamma=gamma).decomposition()


class TestPruneUniverse:
    def test_rejects_nonpositive_cardinality(self):
        dec = make_decomposition()
        with pytest.raises(ValueError):
            prune_universe(dec, 0)

    def test_full_cardinality_keeps_everything(self):
        dec = make_decomposition()
        report = prune_universe(dec, len(dec.universe))
        assert report.kept == dec.universe
        assert report.removed == frozenset()
        assert report.reduction == 0

    def test_kept_plus_removed_is_universe(self):
        dec = make_decomposition(seed=2)
        report = prune_universe(dec, 2)
        assert report.kept | report.removed == dec.universe
        assert not (report.kept & report.removed)

    def test_threshold_is_kth_top_ratio(self):
        dec = make_decomposition(seed=3)
        k = 3
        report = prune_universe(dec, k)
        ordered = sorted(report.top_ratios.values(), reverse=True)
        assert report.threshold == pytest.approx(ordered[k - 1])

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_greedy_output_unchanged_by_pruning(self, seed, k):
        """Theorem 4: MarginalGreedy(U, k) == MarginalGreedy(U', k)."""
        dec = make_decomposition(seed=seed)
        report = prune_universe(dec, k)
        full = marginal_greedy(dec, cardinality=k)

        pruned_dec = decomposition_from_parts(
            RestrictedFunction(dec.monotone, report.kept),
            AdditiveFunction({e: dec.element_cost(e) for e in report.kept}),
            original=RestrictedFunction(dec.original, report.kept),
        )
        reduced = marginal_greedy(pruned_dec, cardinality=k)
        assert reduced.selected == full.selected

    def test_pruning_can_reduce(self):
        """Craft an instance where some element is clearly dominated."""
        monotone = LambdaSetFunction(
            {"good1", "good2", "bad"},
            lambda s: 10.0 * ("good1" in s) + 9.0 * ("good2" in s) + 0.1 * ("bad" in s),
        )
        cost = AdditiveFunction({"good1": 1.0, "good2": 1.0, "bad": 1.0})
        dec = decomposition_from_parts(monotone, cost)
        report = prune_universe(dec, 2)
        assert "bad" in report.removed
        assert {"good1", "good2"} <= set(report.kept)
