"""Zero-dependency metrics for the serving stack.

One :class:`MetricsRegistry` holds every counter, gauge and latency
histogram a serving target (an
:class:`~repro.service.session.OptimizerSession`, a
:class:`~repro.service.pool.SessionPool` and everything hanging off them)
emits.  Metrics are identified by ``(name, labels)`` — labels are how one
shared registry keeps per-shard, per-strategy and per-component series
apart — and are created lazily on first use, so instrumented code never
checks "does this metric exist yet".

Two design rules keep the hot path honest:

* **Counters are plain attribute adds.**  ``Counter.inc()`` is
  ``self.value += n`` — no lock, no dict lookup.  Instrumented components
  hold on to their counter objects (see :class:`StatisticsView`) and
  increment them under whatever lock already guards the code path, exactly
  as the pre-registry dataclass counters did.
* **Histograms own a lock.**  ``observe()`` updates bucket counts and the
  running sum together; snapshots and percentile extraction read under the
  same lock, so a reporter can never see a torn (count, sum) pair.

The existing statistics classes of the serving stack
(:class:`~repro.service.session.SessionStatistics`,
:class:`~repro.service.matcache.CacheStatistics`,
:class:`~repro.storage.spill.SpillStatistics`,
:class:`~repro.adaptive.stats.FeedbackStatistics`) are **views** over a
registry: each public field is a descriptor reading/writing a registry
counter, so ``session.statistics.batches_served`` and the registry's
``session_batches_served`` series are one number — the counters did not
move, they grew an exposition format.  A view constructed without a
registry owns a private one, which keeps every historical construction
pattern (and every historical counter value) bit-identical.

Snapshots are JSON-able dicts (:meth:`MetricsRegistry.snapshot`); the
Prometheus text exposition (:meth:`MetricsRegistry.render_prometheus`)
renders the same state for scrape-style consumers.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "StatisticsView",
    "metric_field",
    "normalize_labels",
]

#: Canonical label form: a sorted tuple of (key, value-as-str) pairs.
Labels = Tuple[Tuple[str, str], ...]

LabelsLike = Union[None, Mapping[str, object], Iterable[Tuple[str, object]]]

#: Fixed latency buckets (seconds): exponential 1 µs → 10 s, the range the
#: serving stack's operations actually span (a warm cache hit is ~µs, a cold
#: scaled TPC-D batch ~seconds).  Fixed — never adaptive — so histograms
#: from different shards/processes merge by plain bucket-count addition.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def normalize_labels(labels: LabelsLike) -> Labels:
    """Labels in canonical form: a tuple of (key, str(value)) pairs, sorted."""
    if not labels:
        return ()
    items = labels.items() if isinstance(labels, Mapping) else labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


class Counter:
    """A monotonically adjustable integer series.

    ``inc`` is deliberately lock-free: every producer in the serving stack
    already increments under a component lock (session, cache, store), and
    the registry's snapshot reading a slightly stale int is harmless —
    what must never happen is a *torn* multi-field read, which the
    :class:`StatisticsView` snapshot helpers take the component lock for.
    """

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """A set-to-current-value series (queue depths, cache bytes, ...)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class HistogramSnapshot:
    """An immutable copy of a histogram's state, with percentile extraction.

    Snapshots of histograms with identical bucket bounds merge by plain
    addition (:meth:`merge`) — how the pool rolls per-shard latency up to
    one p50/p95/p99 without ever sharing a lock across shards.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self,
        bounds: Tuple[float, ...],
        counts: Tuple[int, ...],
        total: float,
        count: int,
    ):
        self.bounds = bounds
        self.counts = counts
        self.sum = total
        self.count = count

    @classmethod
    def merge(cls, parts: "Sequence[HistogramSnapshot]") -> "HistogramSnapshot":
        """Sum snapshots bucket-by-bucket (bounds must match exactly)."""
        if not parts:
            return cls(DEFAULT_LATENCY_BUCKETS, (0,) * (len(DEFAULT_LATENCY_BUCKETS) + 1), 0.0, 0)
        bounds = parts[0].bounds
        for part in parts[1:]:
            if part.bounds != bounds:
                raise ValueError("cannot merge histograms with different bucket bounds")
        counts = [0] * len(parts[0].counts)
        total = 0.0
        count = 0
        for part in parts:
            for index, value in enumerate(part.counts):
                counts[index] += value
            total += part.sum
            count += part.count
        return cls(bounds, tuple(counts), total, count)

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.sum / self.count

    def percentile(self, q: float) -> Optional[float]:
        """The q-quantile (q in [0, 1]) by linear interpolation within buckets.

        Observations above the last finite bound clamp to that bound (the
        overflow bucket has no upper edge to interpolate toward) — the same
        convention Prometheus' ``histogram_quantile`` uses.  ``None`` on an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.bounds):
                    return self.bounds[-1]  # overflow bucket: clamp
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1]  # pragma: no cover - cumulative always reaches count

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(0.95)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(0.99)

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {
                ("+Inf" if index >= len(self.bounds) else repr(self.bounds[index])): value
                for index, value in enumerate(self.counts)
                if value
            },
        }


class Histogram:
    """A fixed-bucket latency histogram with p50/p95/p99 extraction.

    Buckets are cumulative-*exclusive* internally (``counts[i]`` holds the
    observations in ``(bounds[i-1], bounds[i]]``; the last slot is the
    overflow bucket) and rendered cumulatively for Prometheus.  Bounds are
    fixed at construction — percentiles are approximate within a bucket but
    merging across shards/processes stays exact.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count", "_lock")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # bisect_left keeps a boundary value in its (lower, upper] bucket —
        # consistent with the cumulative le (≤) semantics of the exposition.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                self.bounds, tuple(self._counts), self._sum, self._count
            )

    def percentile(self, q: float) -> Optional[float]:
        return self.snapshot().percentile(q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            count = self._count
        return f"Histogram({self.name}{dict(self.labels)} n={count})"


_KINDS = {"counter": Counter, "gauge": Gauge}


class MetricsRegistry:
    """Every metric of one serving target, keyed by ``(name, labels)``.

    Thread-safe: creation is locked, and lookups return the same object for
    the same identity, so concurrent components share series instead of
    clobbering each other.  A metric name is bound to one kind — asking for
    ``counter("x")`` after ``histogram("x")`` raises instead of silently
    forking the series.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: Dict[Tuple[str, Labels], object] = {}
        self._kinds: Dict[str, str] = {}

    # ----------------------------------------------------------- get-or-create

    def _get_or_create(self, kind: str, name: str, labels: LabelsLike, factory):
        canonical = normalize_labels(labels)
        key = (name, canonical)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if self._kinds[name] != kind:
                    raise ValueError(
                        f"metric {name!r} is a {self._kinds[name]}, not a {kind}"
                    )
                return existing
            bound = self._kinds.setdefault(name, kind)
            if bound != kind:
                raise ValueError(f"metric {name!r} is a {bound}, not a {kind}")
            metric = factory(name, canonical)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, labels: LabelsLike = None) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, labels: LabelsLike = None) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: LabelsLike = None,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels, lambda n, l: Histogram(n, l, buckets)
        )

    # ------------------------------------------------------------------- reads

    def metrics(self) -> List[object]:
        """Every registered metric, in (name, labels) order."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def histogram_snapshots(self, name: str) -> Dict[Labels, HistogramSnapshot]:
        """All label series of one histogram name, snapshotted."""
        with self._lock:
            series = [
                metric
                for (metric_name, _), metric in self._metrics.items()
                if metric_name == name and isinstance(metric, Histogram)
            ]
        return {histogram.labels: histogram.snapshot() for histogram in series}

    def snapshot(self) -> Dict[str, object]:
        """The whole registry as one JSON-able dict.

        Counters and gauges are plain numbers; histograms expand to their
        bucket counts plus derived count/sum/mean/p50/p95/p99.  Series are
        keyed ``name`` or ``name{k=v,...}`` — stable, sorted, diff-able.
        """
        out: Dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            key = _series_key(metric.name, metric.labels)
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            else:
                out["histograms"][key] = metric.snapshot().as_dict()
        return out

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4).

        Histograms render cumulatively with the conventional ``_bucket``
        (``le`` label), ``_sum`` and ``_count`` series.
        """
        lines: List[str] = []
        seen_types: set = set()
        for metric in self.metrics():
            if metric.name not in seen_types:
                seen_types.add(metric.name)
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{metric.name}{_render_labels(metric.labels)} {metric.value}")
                continue
            snap = metric.snapshot()
            cumulative = 0
            for index, value in enumerate(snap.counts):
                cumulative += value
                le = "+Inf" if index >= len(snap.bounds) else _format_float(snap.bounds[index])
                labels = metric.labels + (("le", le),)
                lines.append(f"{metric.name}_bucket{_render_labels(labels)} {cumulative}")
            lines.append(
                f"{metric.name}_sum{_render_labels(metric.labels)} {_format_float(snap.sum)}"
            )
            lines.append(f"{metric.name}_count{_render_labels(metric.labels)} {snap.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _series_key(name: str, labels: Labels) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _format_float(value: float) -> str:
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Labels) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels) + "}"


# --------------------------------------------------------------------------
# Statistics views: the serving stack's public counter bundles, re-based on
# a registry without changing any public field.
# --------------------------------------------------------------------------


class _MetricField:
    """Descriptor exposing a registry counter as a plain int attribute.

    ``stats.hits`` reads the counter's value, ``stats.hits += 1`` writes it
    back — the exact mutation idiom the former dataclasses supported, so no
    instrumented call site changes.
    """

    __slots__ = ("name",)

    def __set_name__(self, owner, name: str) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._counters[self.name].value

    def __set__(self, obj, value) -> None:
        obj._counters[self.name].value = value


def metric_field() -> _MetricField:
    """Declare one counter-backed field on a :class:`StatisticsView`."""
    return _MetricField()


class StatisticsView:
    """A bundle of named counters that is a live view over a registry.

    Subclasses declare fields with :func:`metric_field` and set ``_prefix``
    (the registry name of field ``f`` is ``_prefix + f``); construction
    without arguments creates a private registry, so standalone statistics
    objects — and :meth:`aggregate` results — behave exactly like the
    dataclasses they replace.  Constructed *with* a shared registry (what
    the serving layer does), the same fields become labeled series of that
    registry for free.
    """

    _prefix: str = ""

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, *, labels: LabelsLike = None
    ):
        registry = registry if registry is not None else MetricsRegistry()
        canonical = normalize_labels(labels)
        self._registry = registry
        self._labels = canonical
        self._counters = {
            name: registry.counter(self._prefix + name, canonical)
            for name in self.field_names()
        }

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """Every metric field, base classes first, in declaration order."""
        cached = cls.__dict__.get("_field_names_cache")
        if cached is not None:
            return cached
        names: List[str] = []
        for klass in reversed(cls.__mro__):
            for name, attr in vars(klass).items():
                if isinstance(attr, _MetricField) and name not in names:
                    names.append(name)
        result = tuple(names)
        cls._field_names_cache = result
        return result

    @classmethod
    def aggregate(cls, parts: "Iterable[StatisticsView]") -> "StatisticsView":
        """Sum counters across views (the pool's shard-level roll-up)."""
        total = cls()
        for part in parts:
            for name in cls.field_names():
                setattr(total, name, getattr(total, name) + getattr(part, name))
        return total

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.field_names()}

    def __eq__(self, other) -> bool:
        if not isinstance(other, StatisticsView):
            return NotImplemented
        return type(self) is type(other) and self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({fields})"
