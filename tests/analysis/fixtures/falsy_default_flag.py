"""Must-flag fixture for ``falsy-default``.

Contains the literal shapes of the PR 3 matcache bug and the PR 4 feedback
bug — the two incidents this checker exists to prevent.  Never imported;
the checker tests lint this file's source.
"""


class OptimizerSessionLike:
    def __init__(self, matcache=None, feedback=None):
        # The PR 3 bug, verbatim shape: an explicitly passed (empty) cache
        # was falsy, so the session silently built its own private one.
        self.matcache = matcache or MaterializationCache()  # noqa: F821
        # The PR 4 bug, verbatim shape: same failure for the shared store.
        self.feedback = feedback or FeedbackStatsStore()  # noqa: F821


def make_store(materialized=None):
    return dict(materialized or {})


def collect(rows=None, masks=None):
    rows = rows or []
    masks = masks or {}
    return rows, masks


def construct(config=None):
    return config or SomeConfig()  # noqa: F821
