"""Durable cache tier benchmark: cold vs warm-from-disk vs warm-from-RAM.

The acceptance bar for the disk tier (:mod:`repro.storage`): on a working
set **twice the RAM budget** — so the hot tier demonstrably cannot hold the
traffic and the spill path is doing real work — a restarted serving stack
pointed at the spill directory must execute the same pass at least **2×
faster** than the cold stack that computed every materialization, with
**zero** re-materializations and bit-identical rows.

Methodology:

* The workload is highly selective star joins (``key_fanout=16``: 1/16 of
  the fact table's 20k rows match a dimension), where materializing shared
  fact⋈dim subexpressions is exactly what the paper's strategies choose —
  computing one costs a full fact-side hash join, re-reading it costs a
  fraction of that.
* Every batch is optimized by a **fresh session** over one shared
  materialization cache.  Cross-batch reuse by semantic fingerprint is the
  cache tier's contract ("one cache serves every batch, and would even
  survive a session rebuild") and per-batch memos keep optimizer time —
  which is identical on both sides and not what this benchmark measures —
  out of the wall clock (the single shared memo's subsumption pass is
  superlinear in traffic diversity; that is ``bench_pool``'s subject).
* Only :meth:`OptimizerSession.execute_plans` is timed.  Three passes:
  **cold** (a spilling cache with the halved RAM budget computes every
  materialization; mid-pass eviction spills are charged to this side,
  where they occur in production), **warm-from-disk** (a new cache
  instance over the same directory — the restarted process — faults
  everything back in), and **warm-from-RAM** (an unconstrained in-memory
  cache's second pass: the bound the disk tier approximates).

Besides the assertions, writes ``BENCH_spill.json`` at the repository root
for CI to upload next to ``BENCH_pool.json``.
"""

import json
import time

import pytest

from _env import bench_path, scaled, tiny
from repro.service import MaterializationCache, OptimizerSession
from repro.storage import SpillingMaterializationCache
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)

N_DIMENSIONS = 4
KEY_FANOUT = 16
STRATEGY = "greedy"


def fact_rows() -> int:
    return scaled(20_000, 4_000)


def n_batches() -> int:
    return scaled(8, 4)


@pytest.fixture(scope="module")
def catalog():
    return star_schema_catalog(n_dimensions=N_DIMENSIONS, key_fanout=KEY_FANOUT)


def fresh_database():
    # Regenerated per serving stack: the restarted side must not inherit
    # the object, only the content (the durable token is content-derived).
    return star_schema_database(
        seed=9, n_dimensions=N_DIMENSIONS, key_fanout=KEY_FANOUT, fact_rows=fact_rows()
    )


def serve_pass(catalog, database, matcache):
    """Serve the traffic through fresh per-batch sessions over one cache.

    Optimization is not timed; the returned latency is execution only.
    Returns (seconds, rows per batch, materializations computed).
    """
    elapsed = 0.0
    rows = {}
    materialized = 0
    for seed in range(n_batches()):
        batch = random_star_batch(3, seed=seed, n_dimensions=N_DIMENSIONS)
        session = OptimizerSession(catalog, database=database, matcache=matcache)
        result = session.optimize(batch, strategy=STRATEGY)
        started = time.perf_counter()
        execution = session.execute_plans(result)
        elapsed += time.perf_counter() - started
        rows[batch.name] = execution.rows
        materialized += execution.materializations
    return elapsed, rows, materialized


def test_warm_from_disk_beats_cold_2x_on_a_working_set_twice_the_ram_budget(
    catalog, tmp_path
):
    spill_dir = tmp_path / "spill"

    # Reference stack: unconstrained RAM, no disk tier.  Its cold pass
    # sizes the working set; its second pass is the warm-from-RAM bound.
    reference_cache = MaterializationCache()
    _, reference_rows, reference_materialized = serve_pass(
        catalog, fresh_database(), reference_cache
    )
    assert reference_materialized >= n_batches(), (
        "the workload must materialize heavily enough to measure"
    )
    working_set = reference_cache.current_bytes
    largest_entry = max(e.bytes for e in reference_cache._entries.values())
    warm_ram_time, warm_ram_rows, warm_ram_materialized = serve_pass(
        catalog, fresh_database(), reference_cache
    )
    assert warm_ram_rows == reference_rows
    assert warm_ram_materialized == 0

    # The RAM budget: half the working set (= the working set is 2× the
    # budget), but never below the largest single entry (a fill the hot
    # tier cannot hold at all would be rejected rather than spilled).
    ram_budget = max(working_set // 2, largest_entry)
    if not tiny():
        assert working_set >= 2 * ram_budget, (
            f"working set ({working_set}B) must be at least twice the RAM "
            f"budget ({ram_budget}B) — grow FACT_ROWS/N_BATCHES if this trips"
        )
    assert working_set > ram_budget, "the hot tier must not hold everything"

    # Cold: compute everything under the tight budget, spilling mid-pass.
    cold_cache = SpillingMaterializationCache(
        spill_dir, max_bytes=ram_budget, max_entries=4096
    )
    cold_time, cold_rows, cold_materialized = serve_pass(
        catalog, fresh_database(), cold_cache
    )
    assert cold_rows == reference_rows
    assert cold_materialized == reference_materialized
    assert cold_cache.statistics.rejected_fills == 0
    assert cold_cache.statistics.spills >= 1, (
        "a working set above the RAM budget must force eviction spills"
    )
    cold_cache.checkpoint()  # planned shutdown: persist the hot remainder
    del cold_cache

    # Warm-from-disk: a restarted stack — new cache instance, fresh
    # database object, same spill directory — faults everything back in.
    warm_cache = SpillingMaterializationCache(
        spill_dir, max_bytes=ram_budget, max_entries=4096
    )
    assert warm_cache.statistics.recovered >= 1
    warm_disk_time, warm_disk_rows, warm_disk_materialized = serve_pass(
        catalog, fresh_database(), warm_cache
    )
    assert warm_disk_rows == reference_rows, "recovery must be bit-identical"
    assert warm_disk_materialized == 0, (
        "a restarted stack must serve every materialization from disk"
    )
    stats = warm_cache.statistics
    assert stats.faults >= 1
    assert stats.stale_files_dropped == 0 and stats.corrupt_files_dropped == 0

    if not tiny():
        assert warm_disk_time * 2 <= cold_time, (
            f"warm-from-disk ({warm_disk_time:.3f}s) must beat cold "
            f"({cold_time:.3f}s) by at least 2x"
        )

    bench_path("BENCH_spill.json").write_text(
        json.dumps(
            {
                "unit": "seconds",
                "strategy": STRATEGY,
                "tiny": tiny(),
                "distinct_batches": n_batches(),
                "materialized_nodes": reference_materialized,
                "working_set_bytes": working_set,
                "ram_budget_bytes": ram_budget,
                "working_set_over_budget": working_set / ram_budget,
                "cold_time": cold_time,
                "warm_from_disk_time": warm_disk_time,
                "warm_from_ram_time": warm_ram_time,
                "cold_over_warm_disk": cold_time / warm_disk_time,
                "warm_disk_over_warm_ram": warm_disk_time / max(warm_ram_time, 1e-9),
                "warm_disk_faults": stats.faults,
                "warm_disk_rematerializations": warm_disk_materialized,
                "rows_identical": True,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
