"""Unit tests for scalar expressions, predicates and entailment."""

import pytest

from repro.algebra.expressions import (
    AggregateExpr,
    AggregateFunction,
    And,
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Literal,
    Or,
    TruePredicate,
    between,
    col,
    conjunction,
    conjuncts,
    disjunction,
    eq,
    ge,
    gt,
    implies,
    in_list,
    is_equijoin_predicate,
    is_join_predicate,
    le,
    lit,
    lt,
    ne,
    referenced_columns,
    referenced_qualifiers,
    single_column,
)


class TestColumnRef:
    def test_qualifier_parsing(self):
        assert col("n1.n_name") == ColumnRef("n_name", "n1")
        assert col("o_orderdate") == ColumnRef("o_orderdate", None)
        assert str(col("n1.n_name")) == "n1.n_name"

    def test_with_qualifier(self):
        assert col("x").with_qualifier("t") == ColumnRef("x", "t")


class TestConstructors:
    def test_comparison_builders(self):
        assert eq("a", 1) == Comparison(col("a"), ComparisonOp.EQ, lit(1))
        assert ne("a", 1).op is ComparisonOp.NE
        assert lt("a", 1).op is ComparisonOp.LT
        assert le("a", 1).op is ComparisonOp.LE
        assert gt("a", 1).op is ComparisonOp.GT
        assert ge("a", 1).op is ComparisonOp.GE

    def test_column_to_column(self):
        predicate = eq(col("a"), col("b"))
        assert isinstance(predicate.right, ColumnRef)
        assert is_join_predicate(predicate)
        assert is_equijoin_predicate(predicate)
        assert not is_equijoin_predicate(lt(col("a"), col("b")))
        assert not is_join_predicate(eq("a", 5))

    def test_between_and_in(self):
        b = between("a", 1, 10)
        assert isinstance(b, Between)
        assert b.low == lit(1) and b.high == lit(10)
        i = in_list("a", [1, 2, 3])
        assert isinstance(i, InList)
        assert len(i.values) == 3

    def test_operator_flip(self):
        assert ComparisonOp.LT.flip() is ComparisonOp.GT
        assert ComparisonOp.EQ.flip() is ComparisonOp.EQ


class TestConjunctionDisjunction:
    def test_conjunction_flattens(self):
        p = conjunction([eq("a", 1), conjunction([eq("b", 2), eq("c", 3)])])
        assert isinstance(p, And)
        assert len(conjuncts(p)) == 3

    def test_conjunction_of_nothing_is_true(self):
        assert isinstance(conjunction([]), TruePredicate)
        assert conjuncts(TruePredicate()) == ()
        assert conjuncts(None) == ()

    def test_single_conjunct_unwrapped(self):
        assert conjunction([eq("a", 1)]) == eq("a", 1)

    def test_disjunction_dedups(self):
        p = disjunction([eq("a", 1), eq("a", 1)])
        assert p == eq("a", 1)
        q = disjunction([eq("a", 1), eq("a", 2)])
        assert isinstance(q, Or)

    def test_predicate_operators(self):
        p = eq("a", 1) & eq("b", 2)
        assert isinstance(p, And)
        q = eq("a", 1) | eq("a", 2)
        assert isinstance(q, Or)


class TestReferences:
    def test_referenced_columns(self):
        p = conjunction([eq(col("t1.a"), col("t2.b")), lt(col("t1.c"), 5)])
        assert referenced_columns(p) == {col("t1.a"), col("t2.b"), col("t1.c")}
        assert referenced_qualifiers(p) == {"t1", "t2"}

    def test_single_column(self):
        assert single_column(lt(col("a"), 5)) == col("a")
        assert single_column(eq(col("a"), col("b"))) is None
        assert single_column(between(col("a"), 1, 2)) == col("a")


class TestImplies:
    def test_identical(self):
        assert implies(eq("a", 5), eq("a", 5))

    def test_true_is_weakest(self):
        assert implies(eq("a", 5), TruePredicate())

    def test_range_containment(self):
        assert implies(lt("a", 5), lt("a", 10))
        assert not implies(lt("a", 10), lt("a", 5))
        assert implies(eq("a", 7), between("a", 1, 10))
        assert implies(between("a", 3, 4), between("a", 1, 10))
        assert not implies(between("a", 0, 4), between("a", 1, 10))

    def test_le_vs_lt_boundaries(self):
        assert implies(lt("a", 5), le("a", 5))
        assert not implies(le("a", 5), lt("a", 5))
        assert implies(gt("a", 5), ge("a", 5))

    def test_different_columns_never_imply(self):
        assert not implies(lt("a", 5), lt("b", 10))

    def test_or_weakening(self):
        assert implies(eq("a", 1), disjunction([eq("a", 1), eq("a", 2)]))

    def test_strings_not_interval_checked(self):
        assert not implies(eq("a", "x"), eq("a", "y"))
        assert implies(eq("a", "x"), eq("a", "x"))


class TestAggregates:
    def test_aggregate_expr_str(self):
        a = AggregateExpr(AggregateFunction.SUM, col("l_extendedprice"), "revenue")
        assert "sum" in str(a)
        assert "revenue" in str(a)

    def test_count_star(self):
        a = AggregateExpr(AggregateFunction.COUNT, None, "n")
        assert "*" in str(a)
