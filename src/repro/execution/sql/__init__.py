"""SQL oracle execution backend (stdlib SQLite, optional DuckDB).

Renders physical plans — shared materializations included, as temp tables —
to SQL and executes them on a real engine, giving the differential suites a
ground truth that is independent of both Python interpreters.  See
:mod:`.executor` for the backend, :mod:`.render` for the algebra→SQL layer
and :mod:`.driver` for the engine drivers.
"""

from .driver import DuckDBDriver, SQLiteDriver, create_driver
from .executor import DuckDBExecutor, SQLExecutor, SQLiteExecutor
from .render import Rendered, render_plan, render_predicate

__all__ = [
    "DuckDBDriver",
    "DuckDBExecutor",
    "Rendered",
    "SQLExecutor",
    "SQLiteDriver",
    "SQLiteExecutor",
    "create_driver",
    "render_plan",
    "render_predicate",
]
