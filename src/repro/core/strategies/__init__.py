"""Pluggable materialization-selection strategies.

The package splits strategy *selection* (which nodes to materialize) from
the surrounding machinery (DAG construction, final cost evaluation, result
assembly).  Built-in strategies register themselves on import; third-party
code adds strategies with :func:`register_strategy` and they immediately
become available to :class:`~repro.core.mqo.MultiQueryOptimizer`, the
serving layer and ``repro.core.mqo.STRATEGIES`` — no core change needed.
"""

from .base import Strategy, StrategyContext, ordered_selection
from .registry import (
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy,
    unregister_strategy,
)
from .builtin import (
    ExhaustiveStrategy,
    GreedyStrategy,
    MarginalGreedyStrategy,
    ShareAllStrategy,
    VolcanoStrategy,
)

__all__ = [
    "Strategy",
    "StrategyContext",
    "ordered_selection",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "resolve_strategy",
    "unregister_strategy",
    "VolcanoStrategy",
    "GreedyStrategy",
    "MarginalGreedyStrategy",
    "ShareAllStrategy",
    "ExhaustiveStrategy",
]
