#!/usr/bin/env python3
"""Intra-query sharing: the paper's Experiment-2 workloads (Q2-D, Q11, Q15).

Multi-query optimization also pays off for a *single* complex query whose
sub-blocks contain common subexpressions: Q15 uses its ``revenue`` view both
to join with suppliers and to compute the maximum revenue, Q11 aggregates
the same partsupp⋈supplier⋈nation join twice, and the decorrelated Q2-D
shares the minimum-supply-cost subquery's join with its outer query.

Run with::

    python examples/single_query_sharing.py [--scale SF]
"""

import argparse

from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.workloads.tpcd_queries import standalone_workloads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="TPC-D scale factor")
    args = parser.parse_args()

    catalog = tpcd_catalog(args.scale)
    optimizer = MultiQueryOptimizer(catalog)

    for name, workload in standalone_workloads().items():
        dag = optimizer.build_dag(workload)
        engine = optimizer.make_engine(dag)
        result = optimizer.optimize_with(
            dag, engine, batch_name=name, strategy="marginal-greedy"
        )
        print(f"=== {name}")
        print(f"  no-sharing cost : {result.volcano_cost / 1000.0:10.1f} s")
        print(f"  with sharing    : {result.total_cost / 1000.0:10.1f} s "
              f"({result.improvement:.1%} better)")
        if result.materialized_labels:
            print("  materialized    :")
            for label in result.materialized_labels:
                print(f"    * {label}")
        else:
            print("  materialized    : (nothing beneficial found)")
        print()


if __name__ == "__main__":
    main()
