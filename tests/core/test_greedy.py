"""Tests for the Greedy baseline of Roy et al. and LazyGreedy."""

import pytest

from repro.core.greedy import greedy, lazy_greedy
from repro.core.exhaustive import minimize
from repro.core.set_functions import (
    CallCountingFunction,
    LambdaSetFunction,
    TabularSetFunction,
    all_subsets,
)


def simple_cost_oracle():
    """A supermodular-ish bestCost oracle over three candidate nodes.

    Materializing "n1" saves 40 at a cost of 10; "n2" saves 15 at a cost of
    10; "n3" costs more than it saves.
    """
    savings = {"n1": 40.0, "n2": 15.0, "n3": 5.0}
    mat_cost = {"n1": 10.0, "n2": 10.0, "n3": 10.0}
    base = 460.0

    def bc(subset):
        return base - sum(savings[e] - mat_cost[e] for e in subset)

    return LambdaSetFunction(savings.keys(), bc)


def interacting_cost_oracle():
    """bestCost where two nodes overlap: picking both saves less than the sum."""
    base = 100.0
    values = {}
    for subset in all_subsets({"x", "y", "z"}):
        saving = 0.0
        if "x" in subset:
            saving += 30.0
        if "y" in subset:
            saving += 25.0
        if "x" in subset and "y" in subset:
            saving -= 20.0  # they share the benefit
        if "z" in subset:
            saving -= 15.0  # z is pure overhead
        values[subset] = base - saving
    return TabularSetFunction({"x", "y", "z"}, values)


class TestGreedy:
    def test_picks_only_beneficial_nodes(self):
        result = greedy(simple_cost_oracle())
        assert result.selected == frozenset({"n1", "n2"})
        assert result.final_cost == pytest.approx(460.0 - 30.0 - 5.0)
        assert result.benefit == pytest.approx(35.0)

    def test_order_is_most_beneficial_first(self):
        result = greedy(simple_cost_oracle())
        assert result.order[0] == "n1"

    def test_stops_on_no_improvement(self):
        oracle = interacting_cost_oracle()
        result = greedy(oracle)
        assert "z" not in result.selected
        assert result.final_cost == pytest.approx(minimize(oracle).best_value)

    def test_cardinality_limit(self):
        result = greedy(simple_cost_oracle(), cardinality=1)
        assert result.selected == frozenset({"n1"})

    def test_initial_cost_is_empty_set_cost(self):
        oracle = simple_cost_oracle()
        result = greedy(oracle)
        assert result.initial_cost == pytest.approx(oracle.value(frozenset()))

    def test_trace_costs_decrease(self):
        result = greedy(interacting_cost_oracle())
        costs = [result.initial_cost] + [s.cost_after for s in result.steps]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_empty_universe(self):
        oracle = LambdaSetFunction(frozenset(), lambda s: 42.0)
        result = greedy(oracle)
        assert result.selected == frozenset()
        assert result.final_cost == 42.0


class TestLazyGreedy:
    def test_matches_greedy_on_supermodular_oracle(self):
        for oracle in (simple_cost_oracle(), interacting_cost_oracle()):
            eager = greedy(oracle)
            lazy = lazy_greedy(oracle)
            assert lazy.selected == eager.selected
            assert lazy.final_cost == pytest.approx(eager.final_cost)

    def test_lazy_saves_oracle_calls(self):
        inner = interacting_cost_oracle()
        eager_counter = CallCountingFunction(inner)
        greedy(eager_counter)
        lazy_counter = CallCountingFunction(inner)
        lazy_greedy(lazy_counter)
        assert lazy_counter.calls <= eager_counter.calls

    def test_reported_calls_match_counter(self):
        inner = interacting_cost_oracle()
        counter = CallCountingFunction(inner)
        result = lazy_greedy(counter)
        assert result.oracle_calls == counter.calls

    def test_cardinality(self):
        eager = greedy(simple_cost_oracle(), cardinality=1)
        lazy = lazy_greedy(simple_cost_oracle(), cardinality=1)
        assert eager.selected == lazy.selected
