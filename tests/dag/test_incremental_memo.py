"""Incremental memo growth: interning, versioning and derivation scoping."""

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.dag.build import DagBuilder
from repro.dag.sharing import BatchDag
from repro.workloads.tpcd_queries import batched_queries


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.05)


class TestInternQuery:
    def test_reinterning_is_idempotent(self, catalog):
        builder = DagBuilder(catalog)
        query = batched_queries(1)[0]
        root1, blocks1 = builder.intern_query(query)
        version = builder.memo.version
        root2, blocks2 = builder.intern_query(query)
        assert root1 == root2
        assert blocks1 == blocks2
        assert builder.memo.version == version  # nothing new was added

    def test_overlapping_queries_unify_by_fingerprint(self, catalog):
        q3a, q3b = batched_queries(1)
        together = DagBuilder(catalog)
        root_a, _ = together.intern_query(q3a)
        root_b, _ = together.intern_query(q3b)
        assert root_a != root_b  # different selection constants
        alone = DagBuilder(catalog)
        alone_root, _ = alone.intern_query(q3a)
        # The shared sub-structure means interning both adds fewer groups
        # than two independent builds would contain.
        assert len(together.memo) < 2 * len(alone.memo)

    def test_version_tracks_all_mutations(self, catalog):
        builder = DagBuilder(catalog)
        assert builder.memo.version == 0
        builder.intern_query(batched_queries(1)[0])
        grown = builder.memo.version
        assert grown > 0
        builder.finalize()
        assert builder.memo.version >= grown


class TestDerivationScoping:
    def _dag_for(self, builder, queries):
        roots = {}
        blocks = []
        for query in queries:
            root, query_blocks = builder.intern_query(query)
            roots[query.name] = root
            blocks.extend(query_blocks)
        return BatchDag(
            memo=builder.memo,
            catalog=builder.catalog,
            query_roots=roots,
            block_roots=tuple(blocks),
            config=builder.config,
        )

    def test_cross_batch_derivations_inactive_for_single_batch(self, catalog):
        q3a, q3b = batched_queries(1)
        builder = DagBuilder(catalog)
        # Serve q3a alone, then q3b alone: the subsumption pass relates the
        # two queries' groups across batches.
        dag_a = self._dag_for(builder, [q3a])
        builder.finalize()
        dag_b = self._dag_for(builder, [q3b])
        builder.finalize()

        # A fresh single-query build has no cross-query derivations, so the
        # scoped view of the shared memo must not show any either.
        fresh = DagBuilder(catalog)
        fresh_dag = self._dag_for(fresh, [q3a])
        fresh.finalize()
        scoped = {
            gid: len(dag_a.iter_mexprs(gid)) for gid in sorted(dag_a.scoped_groups())
        }
        fresh_counts = {
            gid: len(fresh_dag.iter_mexprs(gid)) for gid in sorted(fresh_dag.scoped_groups())
        }
        assert sum(scoped.values()) == sum(fresh_counts.values())
        assert len(dag_a.scoped_groups()) == len(fresh_dag.scoped_groups())

        # But a batch containing both queries activates the derivations.
        dag_both = self._dag_for(builder, [q3a, q3b])
        both_mexprs = sum(len(dag_both.iter_mexprs(g)) for g in dag_both.scoped_groups())
        assert both_mexprs > sum(scoped.values())

    def test_summary_is_scoped_to_the_batch(self, catalog):
        q3a, q3b = batched_queries(1)
        builder = DagBuilder(catalog)
        dag_a = self._dag_for(builder, [q3a])
        builder.finalize()
        self._dag_for(builder, [q3b])
        builder.finalize()

        fresh = DagBuilder(catalog)
        fresh_dag = self._dag_for(fresh, [q3a])
        fresh.finalize()
        summary = dict(dag_a.summary())
        fresh_summary = dict(fresh_dag.summary())
        assert summary == fresh_summary


class TestDerivationClassification:
    def test_classification_is_immutable_once_set(self, catalog):
        from repro.dag.memo import Memo, ScanMExpr, SelectMExpr
        from repro.dag.fingerprint import RelationSignature, SPJSignature
        from repro.algebra.expressions import col, lt

        memo = Memo()
        base = memo.group_for(RelationSignature(table="orders", alias="orders"))
        memo.add_mexpr(base, ScanMExpr(table="orders", alias="orders"))
        predicate = lt(col("o_orderdate"), 19950101)
        spj = memo.group_for(
            SPJSignature(
                sources=frozenset({("orders", base.signature)}),
                predicates=frozenset({predicate}),
            )
        )
        mexpr = SelectMExpr(predicate, base.id)
        assert memo.add_derivation(spj, mexpr, (spj.id, base.id))
        assert memo.is_derivation(spj.id, mexpr)
        # A duplicate structural registration must not flip the
        # classification (batch scopes are frozen once computed)...
        assert not memo.add_mexpr(spj, mexpr)
        assert memo.is_derivation(spj.id, mexpr)
        # ...and a structural expression never becomes a derivation either.
        scan = ScanMExpr(table="orders", alias="orders")
        assert not memo.add_derivation(base, scan, (base.id, spj.id))
        assert not memo.is_derivation(base.id, scan)
