"""``falsy-default`` — parameters defaulted with ``or`` instead of ``is None``.

The bug class this repo has shipped twice:

* PR 3: ``self.matcache = matcache or MaterializationCache()`` silently
  replaced an explicitly passed *empty* cache (``len() == 0`` makes it
  falsy) with a fresh private one.
* PR 4: ``feedback or FeedbackStatsStore(...)`` dropped a shared-but-empty
  observation store the pool had handed every shard.

The pattern is only safe when every falsy value of the parameter is
meaningless — which is never true for containers (empty is a legal state)
or collaborator objects (anything with ``__len__``/``__bool__`` can be
falsy when empty).  The checker flags ``<param> or <fallback>`` where the
left side is a parameter of the enclosing function and the fallback is a
container display/constructor or a collaborator construction (a call to a
CapWords name).  Scalar fallbacks (``name or "anon"``, ``count or 1``) are
deliberately not flagged: replacing falsy scalars is the usual intent.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..visitor import LintVisitor, ModuleContext, register_checker

__all__ = ["FalsyDefaultChecker"]

#: Builtin/stdlib container constructors whose call is a container fallback.
_CONTAINER_CTORS = {
    "dict",
    "list",
    "tuple",
    "set",
    "frozenset",
    "OrderedDict",
    "defaultdict",
    "Counter",
    "deque",
}


def _terminal_name(func: ast.expr) -> str:
    """The last name segment of a call target (``a.b.C()`` → ``C``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_container_or_collaborator(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Tuple, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        if name in _CONTAINER_CTORS:
            return True
        # A CapWords call is (by this repo's conventions) a class being
        # constructed — the collaborator-default shape of the PR 3/4 bugs.
        return bool(name) and name[0].isupper()
    return False


@register_checker
class FalsyDefaultChecker(LintVisitor):
    id = "falsy-default"
    rationale = (
        "container/collaborator parameters defaulted via 'x or Fallback()' "
        "silently replace explicitly passed empty (falsy) values — the PR 3 "
        "matcache / PR 4 feedback-store bug class; use 'if x is None'"
    )

    def begin_module(self, module: ModuleContext) -> None:
        #: Parameters of every enclosing function, innermost last.
        self._param_stack: List[Set[str]] = []

    # ------------------------------------------------------------- functions

    def _visit_function(self, node) -> None:
        args = node.args
        names = {
            arg.arg
            for arg in (
                list(getattr(args, "posonlyargs", []))
                + list(args.args)
                + list(args.kwonlyargs)
            )
        }
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        names.discard("self")
        names.discard("cls")
        self._param_stack.append(names)
        try:
            self.generic_visit(node)
        finally:
            self._param_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # --------------------------------------------------------------- BoolOp

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if isinstance(node.op, ast.Or) and self._param_stack:
            head = node.values[0]
            params = set().union(*self._param_stack)
            if isinstance(head, ast.Name) and head.id in params:
                for fallback in node.values[1:]:
                    if _is_container_or_collaborator(fallback):
                        self.flag(
                            node,
                            f"parameter {head.id!r} defaulted with 'or': an "
                            "explicitly passed empty container/collaborator "
                            "is falsy and would be silently replaced; use "
                            f"'{head.id} if {head.id} is not None else ...'",
                        )
                        break
        self.generic_visit(node)
