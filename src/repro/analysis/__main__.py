"""``python -m repro.analysis`` — the lint CLI that gates CI.

Exit codes: 0 clean, 1 findings, 2 usage error.  ``--output FILE`` always
writes the JSON report (the CI artifact) regardless of ``--format``, which
only controls what goes to stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .lint import CHECKERS, lint_paths, render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro static-analysis checkers over Python sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if it exists)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format written to stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="list suppressed findings (with reasons) in text output",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list registered checker ids with their rationale and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        for checker_id in sorted(CHECKERS):
            print(f"{checker_id}: {CHECKERS[checker_id].rationale}")
        return 0

    paths = list(args.paths)
    if not paths:
        default = Path("src")
        if not default.is_dir():
            parser.error("no paths given and no src/ directory here")
        paths = [str(default)]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such file or directory: {', '.join(missing)}")

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        report = lint_paths(paths, select=select)
    except ValueError as exc:  # unknown checker id
        parser.error(str(exc))

    if args.output:
        Path(args.output).write_text(render_json(report) + "\n", encoding="utf-8")
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, verbose_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
