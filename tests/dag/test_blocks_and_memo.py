"""Tests for block normalization, binding, fingerprints and the memo."""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, gt, lt
from repro.algebra.logical import Aggregate, Join, Relation
from repro.catalog.tpcd import tpcd_catalog
from repro.dag.blocks import (
    BindingError,
    NormalizationError,
    bind_block,
    normalize,
    normalize_query,
)
from repro.dag.fingerprint import RelationSignature, SPJSignature
from repro.dag.memo import (
    JoinMExpr,
    Memo,
    ScanMExpr,
    SelectMExpr,
    mexpr_children,
)


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.01)


class TestNormalization:
    def test_simple_spj_block(self):
        query = (
            qb.scan("customer")
            .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
            .filter(lt(col("o_orderdate"), 19950101))
            .query("q")
        )
        block = normalize_query(query)
        assert block.aliases == ("customer", "orders")
        assert len(block.predicates) == 2
        assert block.aggregation is None

    def test_aggregate_and_having(self):
        query = (
            qb.scan("orders")
            .aggregate(["o_custkey"], [("sum", "o_totalprice", "total")])
            .filter(gt(col("total"), 100))
            .query("q")
        )
        block = normalize_query(query)
        assert block.aggregation is not None
        assert len(block.having) == 1

    def test_derived_table_becomes_nested_block(self):
        inner = qb.scan("lineitem").aggregate(["l_suppkey"], [("sum", "l_extendedprice", "rev")])
        query = (
            qb.scan("supplier")
            .join(inner.as_derived("revenue"), eq(col("s_suppkey"), col("revenue.l_suppkey")))
            .query("q")
        )
        block = normalize_query(query)
        assert len(block.sources) == 2
        derived = [s for s in block.sources if not s.is_base][0]
        assert derived.alias == "revenue"
        assert derived.block.aggregation is not None

    def test_joining_bare_aggregate_rejected(self):
        inner = Aggregate(Relation("lineitem"), (col("l_suppkey"),), ())
        with pytest.raises(NormalizationError):
            normalize(Join(Relation("supplier"), inner))

    def test_aggregate_over_aggregate_rejected(self):
        plan = Aggregate(Aggregate(Relation("orders"), (col("o_custkey"),), ()), (), ())
        with pytest.raises(NormalizationError):
            normalize(plan)

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(NormalizationError):
            normalize(Join(Relation("nation"), Relation("nation")))

    def test_output_columns(self, catalog):
        query = (
            qb.scan("orders")
            .aggregate(["o_custkey"], [("sum", "o_totalprice", "total")])
            .query("q")
        )
        block = normalize_query(query)
        assert block.output_columns(catalog) == ("o_custkey", "total")


class TestBinding:
    def test_unqualified_columns_get_qualified(self, catalog):
        query = (
            qb.scan("customer")
            .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
            .query("q")
        )
        block = bind_block(normalize_query(query), catalog)
        predicate = block.predicates[0]
        assert predicate.left.qualifier == "customer"
        assert predicate.right.qualifier == "orders"

    def test_unknown_column_rejected(self, catalog):
        query = qb.scan("customer").filter(eq(col("no_such_column"), 1)).query("q")
        with pytest.raises(BindingError):
            bind_block(normalize_query(query), catalog)

    def test_unknown_qualifier_rejected(self, catalog):
        query = qb.scan("customer").filter(eq(col("zzz.c_custkey"), 1)).query("q")
        with pytest.raises(BindingError):
            bind_block(normalize_query(query), catalog)

    def test_ambiguous_column_rejected(self, catalog):
        # Self-join without qualifying the filter column.
        query = (
            qb.scan("nation", "n1")
            .join(qb.scan("nation", "n2"), eq(col("n1.n_regionkey"), col("n2.n_regionkey")))
            .filter(eq(col("n_name"), "FRANCE"))
            .query("q")
        )
        with pytest.raises(BindingError):
            bind_block(normalize_query(query), catalog)

    def test_unknown_table_rejected(self, catalog):
        query = qb.scan("not_a_table").query("q")
        with pytest.raises(BindingError):
            bind_block(normalize_query(query), catalog)


class TestMemo:
    def test_group_for_is_idempotent(self):
        memo = Memo()
        sig = RelationSignature("orders", "orders")
        g1 = memo.group_for(sig)
        g2 = memo.group_for(sig)
        assert g1 is g2
        assert len(memo) == 1
        assert memo.find(sig) is g1
        assert memo.find(RelationSignature("lineitem", "lineitem")) is None

    def test_add_mexpr_dedups(self):
        memo = Memo()
        group = memo.group_for(RelationSignature("orders", "orders"))
        assert memo.add_mexpr(group, ScanMExpr("orders", "orders"))
        assert not memo.add_mexpr(group, ScanMExpr("orders", "orders"))
        assert len(group.mexprs) == 1

    def test_self_reference_rejected(self):
        memo = Memo()
        group = memo.group_for(RelationSignature("orders", "orders"))
        with pytest.raises(ValueError):
            memo.add_mexpr(group, SelectMExpr(eq(col("a"), 1), group.id))

    def test_unknown_child_rejected(self):
        memo = Memo()
        group = memo.group_for(RelationSignature("orders", "orders"))
        with pytest.raises(ValueError):
            memo.add_mexpr(group, SelectMExpr(eq(col("a"), 1), 42))

    def test_mexpr_children(self):
        assert mexpr_children(ScanMExpr("t", "t")) == ()
        assert mexpr_children(SelectMExpr(eq(col("a"), 1), 3)) == (3,)
        assert mexpr_children(JoinMExpr(None, 1, 2)) == (1, 2)

    def test_parents_and_reachability(self):
        memo = Memo()
        base = memo.group_for(RelationSignature("orders", "orders"))
        memo.add_mexpr(base, ScanMExpr("orders", "orders"))
        filtered = memo.group_for(
            SPJSignature(frozenset({("orders", base.signature)}), frozenset({eq(col("o_custkey"), 1)}))
        )
        memo.add_mexpr(filtered, SelectMExpr(eq(col("o_custkey"), 1), base.id))
        parents = memo.parents()
        assert filtered.id in parents[base.id]
        assert memo.reachable_from(filtered.id) == {base.id, filtered.id}
        stats = memo.stats()
        assert stats["groups"] == 2 and stats["mexprs"] == 2 and stats["relations"] == 1
