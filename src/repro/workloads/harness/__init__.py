"""Scale-factor workload harness + multi-tenant traffic simulator.

The harness closes the loop between the repository's serving stack and
its correctness machinery: one :class:`HarnessConfig` names a data scale,
a traffic mix and a serving configuration; :func:`run_setting` builds the
world, drives the traffic open-loop through a real
:class:`~repro.service.pool.SessionPool` + scheduler, replays sampled
answers against independent reference executors, and reports throughput,
latency percentiles, cache/feedback/spill counters and the oracle verdict
in one schema-validated document.

Run it from the command line::

    python -m repro.workloads.harness --scale 4 --tenants 16 --zipf 1.2 \
        --arrival poisson:200 --drift-at 0.5 --shards 4 \
        --executor columnar --oracle row

Comma-separate ``--scale``/``--shards``/``--executor`` to sweep a matrix
in one report.
"""

from .controller import (
    HarnessConfig,
    SettingReport,
    drive_requests,
    run_setting,
)
from .oracle import CorrectnessOracle, OracleMismatch, canonical_rows
from .report import (
    REPORT_FORMAT,
    build_report,
    validate_report,
    write_csv,
    write_json,
)
from .scale import WORKLOADS, HarnessWorld, ScaleSpec, build_world, merge_catalogs
from .traffic import (
    ARRIVAL_KINDS,
    QueryTemplate,
    Request,
    TrafficSpec,
    arrival_offsets,
    generate_traffic,
    star_templates,
    templates_for,
    tpcd_templates,
)

__all__ = [
    "ARRIVAL_KINDS",
    "CorrectnessOracle",
    "HarnessConfig",
    "HarnessWorld",
    "OracleMismatch",
    "QueryTemplate",
    "REPORT_FORMAT",
    "Request",
    "ScaleSpec",
    "SettingReport",
    "TrafficSpec",
    "WORKLOADS",
    "arrival_offsets",
    "build_report",
    "build_world",
    "canonical_rows",
    "drive_requests",
    "generate_traffic",
    "merge_catalogs",
    "run_setting",
    "star_templates",
    "templates_for",
    "tpcd_templates",
    "validate_report",
    "write_csv",
    "write_json",
]
