"""Drift detection and the adaptive subsystem's configuration.

A cached plan was chosen against the cardinality estimates that were
current when it was optimized.  When execution observes cardinalities that
disagree with those estimates by more than a configurable factor — because
the data changed underneath the session, or because the static estimate
was simply wrong — the plan's cost ranking is no longer trustworthy and the
affected cached results should be re-optimized with corrected statistics.
:class:`DriftDetector` makes that call per observed plan node;
:class:`AdaptiveConfig` bundles every knob of the feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .stats import ObservedStats

__all__ = ["AdaptiveConfig", "DriftDetector", "DriftEvent"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the runtime-feedback loop (see :mod:`repro.adaptive`).

    Attributes:
        enabled: master switch; a session given a disabled config behaves
            exactly like one with no adaptive config at all.
        drift_threshold: observed/estimated ratio (in either direction)
            above which a plan node counts as drifted.
        min_observations: observations required before a node may be
            declared drifted (1 = react to the first measurement).
        min_confidence: store confidence required both to declare drift and
            for the estimator overlay to use an observed value verbatim.
        ewma_alpha / epoch_decay: forwarded to the
            :class:`~repro.adaptive.stats.FeedbackStatsStore`.
        correct_row_width: also correct the drifted group's row width from
            the observed bytes-per-row, not just its cardinality.
        benefit_cache_policy: give the session's materialization cache the
            benefit-aware admission/eviction policy
            (:class:`~repro.adaptive.policy.BenefitAwarePolicy`) fed from
            the same store.
    """

    enabled: bool = True
    drift_threshold: float = 2.0
    min_observations: int = 1
    min_confidence: float = 0.5
    ewma_alpha: float = 0.5
    epoch_decay: float = 0.5
    correct_row_width: bool = True
    benefit_cache_policy: bool = True


@dataclass(frozen=True)
class DriftEvent:
    """One detected estimate/observation disagreement."""

    key: str
    estimated: float
    observed: float
    ratio: float

    def describe(self) -> str:
        return (
            f"drift on {self.key}: estimated {self.estimated:.0f} rows, "
            f"observed {self.observed:.0f} (×{self.ratio:.1f})"
        )


class DriftDetector:
    """Flags plan nodes whose observed cardinality contradicts the estimate."""

    def __init__(
        self,
        *,
        threshold: float = 2.0,
        min_observations: int = 1,
        min_confidence: float = 0.0,
    ):
        if threshold < 1.0:
            raise ValueError("threshold must be at least 1.0")
        if min_observations < 1:
            raise ValueError("min_observations must be positive")
        self.threshold = threshold
        self.min_observations = min_observations
        self.min_confidence = min_confidence

    @staticmethod
    def ratio(estimated: float, observed: float) -> float:
        """The symmetric over/under-estimation factor (always ≥ 1)."""
        estimated = max(estimated, 1.0)
        observed = max(observed, 1.0)
        return max(estimated / observed, observed / estimated)

    def check(
        self,
        estimated: float,
        stats: Optional[ObservedStats],
        *,
        confidence: float = 1.0,
    ) -> Optional[DriftEvent]:
        """A :class:`DriftEvent` when the node drifted, else None."""
        if stats is None or stats.observations < self.min_observations:
            return None
        if confidence < self.min_confidence:
            return None
        ratio = self.ratio(estimated, stats.rows)
        if ratio <= self.threshold:
            return None
        return DriftEvent(
            key=stats.key, estimated=estimated, observed=stats.rows, ratio=ratio
        )
