"""Semantic fingerprints ("expression signatures") for equivalence nodes.

Roy et al. identify common subexpressions — including syntactically
different but semantically equivalent ones — with a hashing scheme applied
in one bottom-up pass over the combined query DAG.  This module plays that
role: every equivalence node (memo group) is keyed by a *signature* that
canonically describes the result set it produces, so two sub-plans from
different queries that compute the same thing land in the same group
automatically.

Signatures are recursive:

* a base relation is identified by its table and alias,
* an SPJ block is identified by the *set* of its sources and the *set* of
  applied predicates (join order and selection placement therefore do not
  matter — exactly the equivalences join associativity/commutativity and
  select push-down generate),
* an aggregation is identified by its input signature, grouping keys and
  aggregate list, and
* a residual filter (e.g. a HAVING clause) by its input and predicate set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from ..algebra.expressions import AggregateExpr, ColumnRef, Predicate

__all__ = [
    "Signature",
    "RelationSignature",
    "SPJSignature",
    "AggregateSignature",
    "FilterSignature",
    "signature_sources",
]


@dataclass(frozen=True)
class RelationSignature:
    """A base relation under an alias."""

    table: str
    alias: str

    def describe(self) -> str:
        if self.alias != self.table:
            return f"{self.table} AS {self.alias}"
        return self.table


@dataclass(frozen=True)
class SPJSignature:
    """A select-project-join block: a set of sources plus applied predicates."""

    sources: FrozenSet[Tuple[str, "Signature"]]
    predicates: FrozenSet[Predicate]

    def aliases(self) -> FrozenSet[str]:
        return frozenset(alias for alias, _ in self.sources)

    def describe(self) -> str:
        names = " ⋈ ".join(sorted(alias for alias, _ in self.sources))
        if self.predicates:
            preds = " AND ".join(sorted(str(p) for p in self.predicates))
            return f"{names} | σ[{preds}]"
        return names


@dataclass(frozen=True)
class AggregateSignature:
    """Aggregation of an input signature by a set of keys."""

    input: "Signature"
    group_by: FrozenSet[ColumnRef]
    aggregates: Tuple[AggregateExpr, ...]

    def describe(self) -> str:
        keys = ", ".join(sorted(str(c) for c in self.group_by)) or "()"
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"γ[{keys}; {aggs}]({self.input.describe()})"


@dataclass(frozen=True)
class FilterSignature:
    """A residual filter over a non-SPJ input (e.g. a HAVING clause)."""

    input: "Signature"
    predicates: FrozenSet[Predicate]

    def describe(self) -> str:
        preds = " AND ".join(sorted(str(p) for p in self.predicates))
        return f"σ[{preds}]({self.input.describe()})"


Signature = Union[RelationSignature, SPJSignature, AggregateSignature, FilterSignature]


def signature_sources(signature: Signature) -> FrozenSet[Tuple[str, Signature]]:
    """The (alias, signature) sources of an SPJ signature; empty otherwise."""
    if isinstance(signature, SPJSignature):
        return signature.sources
    return frozenset()
