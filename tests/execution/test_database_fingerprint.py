"""Database.fingerprint(): the durable data-version token's identity rules.

The fingerprint is what a restarted process compares spill files and
feedback snapshots against, so it must be **stable** (same content ⇒ same
token, across objects and processes), **sensitive** (any content change ⇒
different token) and **unambiguous** (structurally different content must
never collide through clever key/value strings).
"""

from repro.execution.data import Database, tiny_tpcd_database


def test_same_content_same_fingerprint_across_objects():
    a = tiny_tpcd_database(seed=3, orders=50)
    b = tiny_tpcd_database(seed=3, orders=50)
    assert a is not b
    assert a.fingerprint() == b.fingerprint()


def test_different_content_different_fingerprint():
    a = tiny_tpcd_database(seed=3, orders=50)
    b = tiny_tpcd_database(seed=4, orders=50)
    assert a.fingerprint() != b.fingerprint()


def test_mutations_change_the_fingerprint():
    db = tiny_tpcd_database(seed=3, orders=50)
    before = db.fingerprint()
    db.replace_table("orders", db.table("orders")[:10])
    assert db.fingerprint() != before

    in_place = db.fingerprint()
    db.table("orders")[0]["o_comment"] = "mutated"
    db.touch()  # in-place mutations must be announced to bump the version
    assert db.fingerprint() != in_place


def test_contentless_touch_keeps_the_fingerprint():
    """touch() without an actual change recomputes the same hash — the
    durable tier correctly survives spurious invalidation signals."""
    db = tiny_tpcd_database(seed=3, orders=50)
    before = db.fingerprint()
    db.touch()
    assert db.fingerprint() == before


def test_row_order_is_part_of_the_identity():
    a = Database()
    a.add_table("t", [{"k": 1}, {"k": 2}])
    b = Database()
    b.add_table("t", [{"k": 2}, {"k": 1}])
    assert a.fingerprint() != b.fingerprint()


def test_ambiguous_separator_strings_cannot_collide():
    """Regression: with separator-joined hashing ('=', ';'), a key crafted
    to contain the separators made these two *different* databases hash
    identically — and the durable tier would have served one database's
    spill files as valid for the other."""
    a = Database()
    a.add_table("t", [{"a": "v", "b": "w"}])
    b = Database()
    b.add_table("t", [{"a=str:'v';b": "w"}])
    assert a.tables != b.tables
    assert a.fingerprint() != b.fingerprint()


def test_value_types_are_part_of_the_identity():
    a = Database()
    a.add_table("t", [{"k": 1}])
    b = Database()
    b.add_table("t", [{"k": "1"}])
    assert a.fingerprint() != b.fingerprint()


def test_fingerprint_is_cached_per_version():
    db = tiny_tpcd_database(seed=3, orders=50)
    assert db.fingerprint() is db.fingerprint()  # memoized, not recomputed
