"""Must-pass fixture for ``stats-snapshot``: every sanctioned read shape.

Never imported; the checker tests lint this file's source and assert zero
findings.
"""


def report(session):
    # The sanctioned aggregation path: a consistent under-the-lock copy.
    return session.statistics_snapshot()


def single_field(cache):
    # One field cannot tear.
    return cache.statistics.hits


class Owner:
    def statistics_snapshot(self):
        # The snapshot method itself is the exempt copy site.
        with self._lock:
            return self.statistics.as_dict()

    def _aggregate_locked(self):
        # *_locked convention: the lock is held by contract.
        return self.statistics.hits + self.statistics.misses

    def locked_read(self):
        with self._stats_lock:
            return (self.statistics.hits, self.statistics.misses)

    def count_up(self):
        # The owner *mutating* two counters is what readers are protected
        # from, not an instance of the torn-read hazard.
        self.statistics.hits += 1
        self.statistics.misses += 1
