"""In-memory execution engine used to validate shared plans end to end."""

from .backends import DEFAULT_BACKEND, available_backends, create_executor, resolve_backend
from .columnar import ColumnBatch, ColumnarExecutor
from .data import Database, Row, example1_database, tiny_tpcd_database
from .evaluate import ColumnNotFound, evaluate_predicate, resolve_column
from .executor import ExecutionError, Executor

__all__ = [
    "Database",
    "Row",
    "example1_database",
    "tiny_tpcd_database",
    "ColumnNotFound",
    "evaluate_predicate",
    "resolve_column",
    "ExecutionError",
    "Executor",
    "ColumnBatch",
    "ColumnarExecutor",
    "DEFAULT_BACKEND",
    "available_backends",
    "create_executor",
    "resolve_backend",
]
