"""The durable cache tier: disk spill under the serving layer's caches.

Everything the serving layer keeps hot —
:class:`~repro.service.matcache.MaterializationCache` row sets and
:class:`~repro.adaptive.stats.FeedbackStatsStore` observations — dies with
the process by default.  This package adds the disk tier that makes those
caches survive restarts and working sets larger than RAM:

* :mod:`repro.storage.codec` — an exact, checksummed spill-file format for
  materialized row sets (type-tagged binary payloads; truncation and
  corruption are always detected, never served),
* :class:`~repro.storage.spill.SpillingMaterializationCache` — the
  two-level (hot RAM / warm disk) cache: evictions spill, gets fault back
  in, stale or damaged files degrade to clean misses.

Feedback-store durability lives on the store itself
(:meth:`~repro.adaptive.stats.FeedbackStatsStore.snapshot` /
:meth:`~repro.adaptive.stats.FeedbackStatsStore.restore`); the serving
layer wires both through ``OptimizerSession(spill_dir=...)`` and
``SessionPool(spill_dir=...)`` — per-shard spill subdirectories, one shared
feedback snapshot — with ``snapshot()`` persisting everything still hot.
"""

from .codec import (
    SPILL_FORMAT,
    SPILL_FORMAT_COLUMNAR,
    SpillCodecError,
    SpillError,
    SpillFormatError,
    SpillHeader,
    decode_batch,
    decode_rows,
    decode_value,
    encode_batch,
    encode_rows,
    encode_value,
    read_spill_batch,
    read_spill_file,
    read_spill_header,
    wire_token,
    write_spill_file,
)
from .spill import SpillConfig, SpillStatistics, SpillingMaterializationCache

__all__ = [
    "SPILL_FORMAT",
    "SPILL_FORMAT_COLUMNAR",
    "SpillCodecError",
    "SpillConfig",
    "SpillError",
    "SpillFormatError",
    "SpillHeader",
    "SpillStatistics",
    "SpillingMaterializationCache",
    "decode_batch",
    "decode_rows",
    "decode_value",
    "encode_batch",
    "encode_rows",
    "encode_value",
    "read_spill_batch",
    "read_spill_file",
    "read_spill_header",
    "wire_token",
    "write_spill_file",
]
