"""Tests for schema objects, statistics and the TPC-D catalog generator."""

import pytest

from repro.catalog import (
    Catalog,
    CatalogError,
    Column,
    ColumnStatistics,
    DataType,
    Index,
    Table,
    TableStatistics,
    collect_statistics,
    tpcd_catalog,
    tpcd_date,
)


class TestSchema:
    def test_table_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            Table("t", (Column("a"), Column("a")))

    def test_table_rejects_bad_primary_key(self):
        with pytest.raises(ValueError):
            Table("t", (Column("a"),), primary_key=("missing",))

    def test_row_width_and_lookup(self):
        table = Table("t", (Column("a", DataType.INTEGER), Column("s", DataType.STRING, width=20)))
        assert table.row_width == 24
        assert table.column("s").byte_width == 20
        assert table.has_column("a") and not table.has_column("zzz")
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_index_leading_column(self):
        index = Index("pk", "t", ("a", "b"), clustered=True)
        assert index.leading_column == "a"


class TestStatistics:
    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnStatistics(distinct_count=0)
        with pytest.raises(ValueError):
            TableStatistics(row_count=-1, row_width=10)
        with pytest.raises(ValueError):
            TableStatistics(row_count=10, row_width=0)

    def test_distinct_defaults_to_rows(self):
        stats = TableStatistics(row_count=100, row_width=8, columns={})
        assert stats.distinct("whatever") == 100
        assert stats.column("whatever") is None

    def test_collect_statistics(self):
        table = Table("t", (Column("a", DataType.INTEGER), Column("s", DataType.STRING)))
        rows = [{"a": 1, "s": "x"}, {"a": 2, "s": "x"}, {"a": 2, "s": None}]
        stats = collect_statistics(table, rows)
        assert stats.row_count == 3
        assert stats.column("a").distinct_count == 2
        assert stats.column("a").min_value == 1
        assert stats.column("a").max_value == 2
        assert stats.column("s").null_fraction == pytest.approx(1 / 3)


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        table = Table("t", (Column("a"),), primary_key=("a",))
        catalog.add_table(table, TableStatistics(10, 4), [Index("pk", "t", ("a",), clustered=True)])
        assert catalog.table("t") is table
        assert catalog.clustered_index("t").name == "pk"
        assert "t" in catalog and len(catalog) == 1

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        table = Table("t", (Column("a"),))
        catalog.add_table(table, TableStatistics(10, 4))
        with pytest.raises(CatalogError):
            catalog.add_table(table, TableStatistics(10, 4))

    def test_index_validation(self):
        catalog = Catalog()
        catalog.add_table(Table("t", (Column("a"),)), TableStatistics(10, 4))
        with pytest.raises(CatalogError):
            catalog.add_index(Index("bad", "missing", ("a",)))
        with pytest.raises(CatalogError):
            catalog.add_index(Index("bad", "t", ("zzz",)))

    def test_unknown_lookups(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("nope")
        with pytest.raises(CatalogError):
            catalog.table_statistics("nope")
        assert catalog.clustered_index("nope") is None

    def test_find_table_for_column(self):
        catalog = tpcd_catalog(1)
        assert catalog.find_table_for_column("o_orderdate") == "orders"
        assert catalog.find_table_for_column("no_such_column") is None


class TestTpcdCatalog:
    def test_all_tables_present(self):
        catalog = tpcd_catalog(1)
        for name in ("region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"):
            assert catalog.has_table(name)
            assert catalog.clustered_index(name) is not None

    def test_scale_factor_scales_big_tables_only(self):
        small = tpcd_catalog(1)
        big = tpcd_catalog(100)
        assert big.table_statistics("lineitem").row_count == pytest.approx(
            100 * small.table_statistics("lineitem").row_count
        )
        assert big.table_statistics("nation").row_count == small.table_statistics("nation").row_count

    def test_row_counts_match_spec(self):
        catalog = tpcd_catalog(1)
        assert catalog.table_statistics("orders").row_count == 1_500_000
        assert catalog.table_statistics("customer").row_count == 150_000
        assert catalog.table_statistics("supplier").row_count == 10_000

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            tpcd_catalog(0)

    def test_tpcd_date(self):
        assert tpcd_date(1995, 3, 15) == 19950315
