"""Built-in row-correctness oracles: every perf run is a differential run.

A :class:`CorrectnessOracle` owns one *independent* reference
:class:`~repro.service.session.OptimizerSession` per oracle backend —
fresh memo, fresh caches, nothing shared with the serving stack under
measurement except the immutable catalog and the one database — and
replays sampled requests against it, comparing rows:

* **exactly** (``==``, order included) when both the serving backend and
  the oracle backend are Python executors (``row``/``columnar``), whose
  differential suites prove bit-identical row order, and
* **order-normalized with floats rounded** when either side is a SQL
  engine (``sqlite``/``duckdb``), the same discipline as
  ``tests/execution/test_sql_differential.py`` — engines sum and emit in
  different orders.

Replays happen *between* drift steps (the run controller drains the
scheduler first), so the reference always executes against the same data
version the serving stack answered from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...catalog.catalog import Catalog
from ...execution.data import Database, Row
from ...execution.evaluate import total_order_key
from ...service.session import OptimizerSession
from .traffic import Request

__all__ = ["CorrectnessOracle", "OracleMismatch", "canonical_rows"]

#: Backends whose row *order* is bit-identical across the Python executors.
_EXACT_ORDER_BACKENDS = frozenset({"row", "columnar"})

#: How many mismatches to keep in full detail before only counting.
_MISMATCH_DETAIL_CAP = 16


def canonical_rows(rows: Sequence[Row]) -> List[Tuple[Tuple[str, object], ...]]:
    """Order-normalized rows with floats rounded (the SQL-differential idiom)."""
    normalized = [
        tuple(
            sorted(
                (k, round(v, 6) if isinstance(v, float) else v) for k, v in row.items()
            )
        )
        for row in rows
    ]
    return sorted(normalized, key=lambda row: [(k, total_order_key(v)) for k, v in row])


@dataclass(frozen=True)
class OracleMismatch:
    """One sampled request whose serving rows differed from a reference."""

    request_index: int
    template_id: str
    tenant: str
    backend: str
    detail: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "request_index": self.request_index,
            "template": self.template_id,
            "tenant": self.tenant,
            "backend": self.backend,
            "detail": self.detail,
        }


@dataclass
class CorrectnessOracle:
    """Replays sampled requests against independent reference backends.

    Args:
        catalog / database: the world under test; the reference sessions
            attach the *same* database object, so drift applied between
            segments is visible to them the moment it happens.
        serving_backend: the backend the measured stack executes with —
            decides exact vs. order-normalized comparison per reference.
        backends: reference backends to replay on; ``("row",)`` is the
            canonical oracle, add ``"sqlite"`` for an engine-independent
            second opinion.
        strategy: the strategy the references optimize with.  Correct
            executors return identical rows under *any* strategy, so this
            only affects oracle speed.
    """

    catalog: Catalog
    database: Database
    serving_backend: str = "row"
    backends: Tuple[str, ...] = ("row",)
    strategy: str = "marginal-greedy"
    checked: int = 0
    mismatch_count: int = 0
    mismatches: List[OracleMismatch] = field(default_factory=list)
    _sessions: Dict[str, OptimizerSession] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not self.backends:
            raise ValueError("at least one oracle backend is required")
        for backend in self.backends:
            self._sessions[backend] = OptimizerSession(
                self.catalog, database=self.database, executor=backend
            )

    def verify(self, request: Request, rows: Optional[List[Row]]) -> bool:
        """Replay one sampled request on every reference; record mismatches.

        Returns True when every backend agreed.  ``rows=None`` (a request
        whose rows were lost, e.g. a cancelled future) counts as a
        mismatch: a perf run that silently drops sampled answers must not
        pass its correctness gate.
        """
        self.checked += 1
        ok = True
        for backend, session in self._sessions.items():
            if rows is None:
                self._record(request, backend, "serving rows missing")
                ok = False
                continue
            expected = session.execute(request.query, strategy=self.strategy)
            if self._exact(backend):
                matched = rows == expected
            else:
                matched = canonical_rows(rows) == canonical_rows(expected)
            if not matched:
                self._record(
                    request,
                    backend,
                    f"{len(rows)} serving rows != {len(expected)} reference rows "
                    f"(template {request.template_id}, params {request.params!r})",
                )
                ok = False
        return ok

    def _exact(self, backend: str) -> bool:
        return (
            backend in _EXACT_ORDER_BACKENDS
            and self.serving_backend in _EXACT_ORDER_BACKENDS
        )

    def _record(self, request: Request, backend: str, detail: str) -> None:
        self.mismatch_count += 1
        if len(self.mismatches) < _MISMATCH_DETAIL_CAP:
            self.mismatches.append(
                OracleMismatch(
                    request_index=request.index,
                    template_id=request.template_id,
                    tenant=request.tenant,
                    backend=backend,
                    detail=detail,
                )
            )

    def report(self) -> Dict[str, object]:
        return {
            "backends": list(self.backends),
            "serving_backend": self.serving_backend,
            "checked": self.checked,
            "mismatches": self.mismatch_count,
            "mismatch_details": [m.as_dict() for m in self.mismatches],
        }
