"""Executor tests: shared plans must return exactly the same rows as unshared ones."""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, ge, lt
from repro.algebra.logical import QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.execution import ExecutionError, Executor, example1_database, tiny_tpcd_database
from repro.execution.evaluate import ColumnNotFound, evaluate_predicate, resolve_column
from repro.optimizer.plan import PhysicalOp, PhysicalPlan
from repro.workloads.synthetic import example1_batch, example1_catalog
from repro.workloads.tpcd_queries import q11, q15


def canonical(rows):
    """Order-independent canonical form of a list of result rows."""
    return sorted(tuple(sorted((k, round(v, 6) if isinstance(v, float) else v) for k, v in row.items())) for row in rows)


class TestEvaluate:
    def test_resolve_exact_and_suffix(self):
        row = {"orders.o_orderkey": 1, "revenue_total": 5}
        assert resolve_column(row, col("orders.o_orderkey")) == 1
        assert resolve_column(row, col("o_orderkey")) == 1
        with pytest.raises(ColumnNotFound):
            resolve_column(row, col("missing"))

    def test_ambiguous_reference(self):
        row = {"n1.n_name": "FRANCE", "n2.n_name": "GERMANY"}
        assert resolve_column(row, col("n1.n_name")) == "FRANCE"
        with pytest.raises(ColumnNotFound):
            resolve_column(row, col("n_name"))

    def test_predicates(self):
        row = {"t.a": 5, "t.b": "x"}
        assert evaluate_predicate(row, eq(col("t.a"), 5))
        assert not evaluate_predicate(row, lt(col("t.a"), 5))
        assert evaluate_predicate(row, eq(col("t.a"), 5) & eq(col("t.b"), "x"))
        assert evaluate_predicate(row, None)


class TestDataGenerators:
    def test_tiny_tpcd_referential_integrity(self):
        db = tiny_tpcd_database(seed=1)
        order_keys = {r["o_orderkey"] for r in db.table("orders")}
        for line in db.table("lineitem"):
            assert line["l_orderkey"] in order_keys
        supplier_keys = {r["s_suppkey"] for r in db.table("supplier")}
        for ps in db.table("partsupp"):
            assert ps["ps_suppkey"] in supplier_keys

    def test_deterministic(self):
        assert tiny_tpcd_database(seed=3).table("orders") == tiny_tpcd_database(seed=3).table("orders")

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            tiny_tpcd_database().table("nope")


class TestSharedPlansReturnSameRows:
    def test_example1(self):
        catalog = example1_catalog()
        batch = example1_batch()
        optimizer = MultiQueryOptimizer(catalog)
        results = optimizer.compare(batch, strategies=("volcano", "greedy"))
        executor = Executor(example1_database())
        plain = executor.execute_result(results["volcano"].plan)
        shared = executor.execute_result(results["greedy"].plan)
        assert results["greedy"].materialized_count >= 1
        for name in plain:
            assert canonical(plain[name]) == canonical(shared[name])
            assert plain[name], f"query {name} should return rows on the tiny database"

    def test_repeated_tpcd_style_queries(self):
        catalog = tpcd_catalog(0.001)
        db = tiny_tpcd_database(seed=7, orders=200)

        def make(name, cutoff):
            return (
                qb.scan("orders")
                .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
                .filter(lt(col("o_orderdate"), cutoff))
                .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
                .query(name)
            )

        batch = QueryBatch("pair", (make("A", 19960101), make("B", 19970101)))
        optimizer = MultiQueryOptimizer(catalog)
        results = optimizer.compare(batch, strategies=("volcano", "share-all"))
        executor = Executor(db)
        plain = executor.execute_result(results["volcano"].plan)
        shared = executor.execute_result(results["share-all"].plan)
        for name in plain:
            assert canonical(plain[name]) == canonical(shared[name])

    @pytest.mark.parametrize("workload_factory", [q11, q15], ids=["Q11", "Q15"])
    def test_intra_query_sharing_workloads(self, workload_factory):
        catalog = tpcd_catalog(0.001)
        db = tiny_tpcd_database(seed=11, orders=150)
        batch = workload_factory()
        optimizer = MultiQueryOptimizer(catalog)
        results = optimizer.compare(batch, strategies=("volcano", "share-all"))
        executor = Executor(db)
        plain = executor.execute_result(results["volcano"].plan)
        shared = executor.execute_result(results["share-all"].plan)
        for name in plain:
            assert canonical(plain[name]) == canonical(shared[name])

    def test_hash_join_unknown_alias_raises_execution_error(self):
        """Unresolvable join columns are an ExecutionError, not a KeyError."""
        db = example1_database()

        def scan(table):
            return PhysicalPlan(
                op=PhysicalOp.TABLE_SCAN, group=0, cost=1.0, local_cost=1.0,
                rows=1.0, width=1.0, table=table, alias=table,
            )

        join = PhysicalPlan(
            op=PhysicalOp.MERGE_JOIN, group=1, cost=3.0, local_cost=1.0,
            rows=1.0, width=1.0, children=(scan("a"), scan("b")),
            predicate=eq(col("zz.nope"), col("ww.nah")),
        )
        with pytest.raises(ExecutionError, match="unknown alias"):
            Executor(db).execute(join)

    def test_hash_join_one_sided_unknown_alias(self):
        """One resolvable side is not enough: the probe side must raise too."""
        db = example1_database()

        def scan(table):
            return PhysicalPlan(
                op=PhysicalOp.TABLE_SCAN, group=0, cost=1.0, local_cost=1.0,
                rows=1.0, width=1.0, table=table, alias=table,
            )

        join = PhysicalPlan(
            op=PhysicalOp.MERGE_JOIN, group=1, cost=3.0, local_cost=1.0,
            rows=1.0, width=1.0, children=(scan("a"), scan("b")),
            predicate=eq(col("a.a_join"), col("ww.nah")),
        )
        with pytest.raises(ExecutionError, match="cannot resolve"):
            Executor(db).execute(join)

    def test_hash_join_mixed_orientation_conjuncts(self):
        """Equi conjuncts written in opposite orientations still hash-join."""
        db = example1_database()

        def scan(table):
            return PhysicalPlan(
                op=PhysicalOp.TABLE_SCAN, group=0, cost=1.0, local_cost=1.0,
                rows=1.0, width=1.0, table=table, alias=table,
            )

        joins = {}
        for name, predicate in (
            ("fwd", eq(col("a.a_join"), col("b.b_key")) & eq(col("a.a_key"), col("b.b_join"))),
            ("mixed", eq(col("a.a_join"), col("b.b_key")) & eq(col("b.b_join"), col("a.a_key"))),
        ):
            plan = PhysicalPlan(
                op=PhysicalOp.MERGE_JOIN, group=1, cost=3.0, local_cost=1.0,
                rows=1.0, width=1.0, children=(scan("a"), scan("b")),
                predicate=predicate,
            )
            joins[name] = Executor(db).execute(plan)
        expected = [
            {**{f"a.{k}": v for k, v in ra.items()}, **{f"b.{k}": v for k, v in rb.items()}}
            for ra in db.table("a")
            for rb in db.table("b")
            if ra["a_join"] == rb["b_key"] and ra["a_key"] == rb["b_join"]
        ]
        assert canonical(joins["fwd"]) == canonical(joins["mixed"]) == canonical(expected)

    def test_execute_result_consumes_seeds_and_publishes_fills(self):
        """Pre-seeded materializations are not recomputed; fills are reported."""
        catalog = example1_catalog()
        batch = example1_batch()
        optimizer = MultiQueryOptimizer(catalog)
        result = optimizer.optimize(batch, strategy="greedy").plan
        assert result.materialization_plans, "greedy should materialize on example 1"
        executor = Executor(example1_database())

        fills = {}
        rows = executor.execute_result(
            result, fill_listener=lambda gid, plan, r: fills.update({gid: r})
        )
        assert set(fills) == set(result.materialization_plans)

        # Seeding every materialization suppresses recomputation entirely...
        refills = []
        seeded_rows = executor.execute_result(
            result,
            materialized=fills,
            fill_listener=lambda gid, plan, r: refills.append(gid),
        )
        assert refills == []
        assert seeded_rows == rows

        # ...and a poisoned (emptied) seed visibly flows into the results,
        # proving the seed — not a recomputation — was read.
        poisoned = {gid: [] for gid in fills}
        empty_rows = executor.execute_result(result, materialized=poisoned)
        for name, plan in result.query_plans.items():
            if plan.uses_materialized() and rows[name]:
                assert empty_rows[name] != rows[name]

        # The queries filter restricts row production without touching the
        # other queries' plans.
        some = next(iter(result.query_plans))
        only = executor.execute_result(result, materialized=fills, queries=[some])
        assert set(only) == {some}
        assert only[some] == rows[some]

    def test_execute_single_plan(self):
        catalog = tpcd_catalog(0.001)
        db = tiny_tpcd_database(seed=5)
        query = (
            qb.scan("orders")
            .filter(ge(col("o_orderdate"), 19920101))
            .aggregate([], [("count", None, "n"), ("max", "o_totalprice", "max_price")])
            .query("counts")
        )
        optimizer = MultiQueryOptimizer(catalog)
        dag = optimizer.build_dag(QueryBatch("single", (query,)))
        engine = optimizer.make_engine(dag)
        plan = engine.evaluate(frozenset()).query_plans["counts"]
        rows = Executor(db).execute(plan)
        assert len(rows) == 1
        assert rows[0]["n"] == len(db.table("orders"))
        assert rows[0]["max_price"] == max(r["o_totalprice"] for r in db.table("orders"))
