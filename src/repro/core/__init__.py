"""The paper's contribution: provable multi-query optimization via UNSM.

This package contains the algorithmic core of the reproduction:

* :mod:`repro.core.set_functions` — set-function abstractions and checks,
* :mod:`repro.core.decomposition` — Proposition 1/2 decompositions,
* :mod:`repro.core.marginal_greedy` — MarginalGreedy and LazyMarginalGreedy
  (Algorithm 2, Theorem 1, Section 5 speed-ups),
* :mod:`repro.core.greedy` — the Greedy baseline of Roy et al. (Algorithm 1),
* :mod:`repro.core.pruning` — Theorem 4 universe reduction,
* :mod:`repro.core.exhaustive` — brute-force optima for verification,
* :mod:`repro.core.coverage` — Max Coverage / Profitted Max Coverage
  (the Section 4 hardness construction),
* :mod:`repro.core.benefit` — the materialization-benefit oracle bridging
  the optimizer's ``bestCost`` to UNSM,
* :mod:`repro.core.strategies` — the pluggable strategy registry and the
  built-in materialization-selection strategies,
* :mod:`repro.core.mqo` — the user-facing :class:`MultiQueryOptimizer`
  facade (see :mod:`repro.service` for the persistent serving layer).
"""

from .set_functions import (
    AdditiveFunction,
    CachedSetFunction,
    CallCountingFunction,
    LambdaSetFunction,
    SetFunction,
    TabularSetFunction,
    all_subsets,
)
from .decomposition import (
    Decomposition,
    canonical_decomposition,
    decomposition_from_parts,
    improve_decomposition,
    verify_decomposition,
)
from .marginal_greedy import (
    MarginalGreedyResult,
    lazy_marginal_greedy,
    marginal_greedy,
    theorem1_bound,
    theorem1_factor,
)
from .greedy import GreedyResult, greedy, lazy_greedy
from .pruning import PruningReport, prune_universe
from .exhaustive import ExhaustiveResult, maximize, minimize
from .coverage import (
    CoverageFunction,
    MaxCoverageInstance,
    ProfittedMaxCoverage,
    greedy_max_coverage,
    greedy_set_cover,
    perfect_cover_instance,
    random_instance,
)
from .benefit import (
    BestCostFunction,
    MaterializationBenefit,
    UseCostBenefit,
    UseCostFunction,
    mqo_decomposition,
    standalone_materialization_costs,
)
from .mqo import MQOResult, MultiQueryOptimizer, run_strategy
from .strategies import (
    Strategy,
    StrategyContext,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy,
    unregister_strategy,
)

__all__ = [
    "BestCostFunction",
    "MaterializationBenefit",
    "UseCostBenefit",
    "UseCostFunction",
    "mqo_decomposition",
    "standalone_materialization_costs",
    "MQOResult",
    "MultiQueryOptimizer",
    "STRATEGIES",
    "run_strategy",
    "Strategy",
    "StrategyContext",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "resolve_strategy",
    "unregister_strategy",
    "AdditiveFunction",
    "CachedSetFunction",
    "CallCountingFunction",
    "LambdaSetFunction",
    "SetFunction",
    "TabularSetFunction",
    "all_subsets",
    "Decomposition",
    "canonical_decomposition",
    "decomposition_from_parts",
    "improve_decomposition",
    "verify_decomposition",
    "MarginalGreedyResult",
    "lazy_marginal_greedy",
    "marginal_greedy",
    "theorem1_bound",
    "theorem1_factor",
    "GreedyResult",
    "greedy",
    "lazy_greedy",
    "PruningReport",
    "prune_universe",
    "ExhaustiveResult",
    "maximize",
    "minimize",
    "CoverageFunction",
    "MaxCoverageInstance",
    "ProfittedMaxCoverage",
    "greedy_max_coverage",
    "greedy_set_cover",
    "perfect_cover_instance",
    "random_instance",
]


def __getattr__(name):
    # Keep ``repro.core.STRATEGIES`` a live view of the strategy registry
    # (an eager from-import here would freeze an import-time snapshot and
    # miss strategies registered later by third-party code).
    if name == "STRATEGIES":
        from .strategies import available_strategies

        return available_strategies()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
