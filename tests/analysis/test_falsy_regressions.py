"""Regressions for the live ``falsy-default`` findings this PR fixed.

``param or fallback`` silently replaces an *explicitly passed* value
whenever that value is falsy.  For the mapping-shaped parameters fixed
here the distinction is observable with a falsy-but-nonempty mapping — a
``dict`` subclass whose ``__bool__`` is False, the shape a lazily-counting
or view-backed mapping legitimately has.  Before the fix each of these
call sites dropped such an argument on the floor; these tests pin the
repaired semantics: **None means default, anything else is honored.**
"""

from repro.catalog.tpcd import tpcd_catalog
from repro.cost.cardinality import CatalogResolver
from repro.execution.columnar.batch import ColumnBatch
from repro.execution.columnar.executor import ColumnarExecutor
from repro.execution.data import Database
from repro.execution.executor import Executor


class FalsyDict(dict):
    """A mapping that is falsy regardless of contents (e.g. a lazy view)."""

    def __bool__(self):
        return False


def test_falsydict_premise():
    d = FalsyDict({1: "x"})
    assert not d and len(d) == 1  # the shape the old `or` idiom mishandled


# --------------------------------------------------------------- executors


def test_row_executor_store_honors_falsy_materialized_mapping():
    executor = Executor(Database(tables={}))
    rows = [{"a": 1}]
    store = executor._make_store(FalsyDict({7: rows}))
    assert store == {7: rows}  # the old `materialized or {}` dropped this
    assert executor._make_store(None) == {}


def test_columnar_executor_store_honors_falsy_materialized_mapping():
    executor = ColumnarExecutor(Database(tables={}))
    rows = [{"a": 1}]
    store = executor._make_store(FalsyDict({7: rows}))
    assert dict(store) == {7: rows}
    assert dict(executor._make_store(None)) == {}


def test_sql_executor_store_honors_falsy_materialized_mapping():
    from repro.execution.sql.executor import SQLExecutor

    executor = SQLExecutor(Database(tables={}))
    rows = [{"a": 1}]
    store = executor._make_store(FalsyDict({7: rows}))
    assert dict(store) == {7: rows}
    assert dict(executor._make_store(None)) == {}


# ------------------------------------------------------------- column batch


def test_column_batch_honors_falsy_masks_mapping():
    columns = {"t.a": [1, None], "t.b": [10, 20]}
    masks = FalsyDict({"t.a": [True, False]})  # row 1 has no 't.a' cell
    batch = ColumnBatch(dict(columns), 2, masks)
    rows = batch.to_rows()
    assert rows == [{"t.a": 1, "t.b": 10}, {"t.b": 20}]
    # None still means "no masks": every cell present.
    dense = ColumnBatch(dict(columns), 2, None)
    assert dense.to_rows() == [
        {"t.a": 1, "t.b": 10},
        {"t.a": None, "t.b": 20},
    ]


# ------------------------------------------------------ cardinality resolver


def test_catalog_resolver_honors_falsy_alias_mappings():
    catalog = tpcd_catalog(0.01)
    table = next(iter(catalog.tables))
    column = next(iter(catalog.tables[table].columns))

    from repro.algebra.expressions import ColumnRef

    aliased = CatalogResolver(
        catalog, alias_tables=FalsyDict({"v": table}), derived_rows=None
    )
    direct = CatalogResolver(catalog, alias_tables={"v": table})
    ref = ColumnRef(name=column, qualifier="v")
    assert aliased.resolve(ref) == direct.resolve(ref)

    derived = CatalogResolver(catalog, derived_rows=FalsyDict({"d": 42.0}))
    info = derived.resolve(ColumnRef(name="anything", qualifier="d"))
    assert info is not None and info.distinct == 42.0
