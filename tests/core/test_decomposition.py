"""Tests for Proposition 1 / Proposition 2 decompositions."""

import pytest

from repro.core.decomposition import (
    canonical_decomposition,
    decomposition_from_parts,
    improve_decomposition,
    verify_decomposition,
)
from repro.core.set_functions import (
    AdditiveFunction,
    LambdaSetFunction,
    all_subsets,
)


def make_normalized_submodular():
    """A normalized submodular function taking negative values.

    f(S) = coverage(S) − 1.5·|S| over three sets covering {1..4}.
    """
    sets = {"a": frozenset({1, 2}), "b": frozenset({2, 3}), "c": frozenset({3, 4})}

    def f(subset):
        covered = frozenset().union(*(sets[e] for e in subset)) if subset else frozenset()
        return float(len(covered)) - 1.5 * len(subset)

    return LambdaSetFunction(sets.keys(), f)


class TestCanonicalDecomposition:
    def test_is_valid(self):
        f = make_normalized_submodular()
        dec = canonical_decomposition(f)
        assert verify_decomposition(dec)

    def test_monotone_part_is_submodular(self):
        dec = canonical_decomposition(make_normalized_submodular())
        assert dec.monotone.is_submodular()
        assert dec.monotone.is_monotone()

    def test_cost_weights_formula(self):
        f = make_normalized_submodular()
        dec = canonical_decomposition(f)
        full = f.value(f.universe)
        for e in f.universe:
            assert dec.element_cost(e) == pytest.approx(f.value(f.universe - {e}) - full)

    def test_value_matches_original(self):
        f = make_normalized_submodular()
        dec = canonical_decomposition(f)
        for subset in all_subsets(f.universe):
            assert dec.value(subset) == pytest.approx(f.value(subset))

    def test_negative_values_allowed(self):
        f = make_normalized_submodular()
        assert f.value(f.universe) < f.value({"a"})
        dec = canonical_decomposition(f)
        assert verify_decomposition(dec)


class TestImproveDecomposition:
    def test_canonical_is_fixed_point(self):
        f = make_normalized_submodular()
        dec = canonical_decomposition(f)
        improved = improve_decomposition(dec)
        for e in f.universe:
            assert improved.element_cost(e) == pytest.approx(dec.element_cost(e))
        for subset in all_subsets(f.universe):
            assert improved.monotone.value(subset) == pytest.approx(dec.monotone.value(subset))

    def test_improvement_keeps_validity_and_monotonicity(self):
        f = make_normalized_submodular()
        # Start from a deliberately bad decomposition: fM = f + big additive.
        bulk = AdditiveFunction({e: 10.0 for e in f.universe})
        dec = decomposition_from_parts(f + bulk, bulk, original=f)
        assert verify_decomposition(dec)
        improved = improve_decomposition(dec)
        assert verify_decomposition(improved)

    def test_improvement_reduces_cost(self):
        f = make_normalized_submodular()
        bulk = AdditiveFunction({e: 10.0 for e in f.universe})
        dec = decomposition_from_parts(f + bulk, bulk, original=f)
        improved = improve_decomposition(dec)
        # The improvement subtracts a nonnegative linear term from c.
        for e in f.universe:
            assert improved.element_cost(e) <= dec.element_cost(e) + 1e-9


class TestDecompositionHelpers:
    def test_from_parts_requires_same_universe(self):
        f = make_normalized_submodular()
        with pytest.raises(ValueError):
            decomposition_from_parts(f, AdditiveFunction({"zzz": 1.0}))

    def test_from_parts_reconstructs_original(self):
        f = make_normalized_submodular()
        cost = AdditiveFunction({e: 1.0 for e in f.universe})
        dec = decomposition_from_parts(f + cost, cost)
        for subset in all_subsets(f.universe):
            assert dec.value(subset) == pytest.approx(f.value(subset))

    def test_ratio_and_negative_cost_elements(self):
        f = make_normalized_submodular()
        cost = AdditiveFunction({"a": 2.0, "b": -1.0, "c": 0.0})
        dec = decomposition_from_parts(f + cost, cost, original=f)
        assert dec.negative_cost_elements() == frozenset({"b"})
        assert dec.ratio("b", frozenset()) == float("inf")
        assert dec.ratio("c", frozenset()) == float("inf")
        assert dec.ratio("a", frozenset()) == pytest.approx(dec.monotone_marginal("a", frozenset()) / 2.0)

    def test_non_exhaustive_verification(self):
        f = make_normalized_submodular()
        dec = canonical_decomposition(f)
        assert verify_decomposition(dec, exhaustive=False)

    def test_consistency_error_zero(self):
        dec = canonical_decomposition(make_normalized_submodular())
        assert dec.consistency_error({"a", "c"}) == pytest.approx(0.0)
