"""An in-memory interpreter for physical plans.

The executor walks a :class:`~repro.optimizer.plan.PhysicalPlan` bottom-up
and produces lists of rows.  It exists to *validate* the optimizer and the
MQO sharing machinery (a consolidated plan reading materialized results
must return the same rows as the unshared plans), not to be fast: joins are
executed as hash joins on the equi-join columns with a residual filter, and
all intermediate results are fully materialized in memory.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..algebra.expressions import (
    AggregateExpr,
    AggregateFunction,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Predicate,
    conjuncts,
)
from ..obs import NULL_TRACER
from ..optimizer.plan import PhysicalOp, PhysicalPlan
from ..optimizer.volcano import BestCostResult
from .data import Database, Row
from .evaluate import (
    AmbiguousColumn,
    ColumnNotFound,
    evaluate_predicate,
    resolve_column,
    resolve_in_names,
    total_order_key,
)

__all__ = ["ExecutionError", "Executor"]


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be interpreted."""


def _prefix_row(row: Row, alias: str) -> Row:
    return {f"{alias}.{key}": value for key, value in row.items()}


class Executor:
    """Interprets physical plans against an in-memory :class:`Database`."""

    #: The tracer backend-internal spans go to; the serving layer points it
    #: at the session's tracer in ``attach_database``.  Class-level default
    #: so a bare executor (tests, benchmarks) is always safe to construct.
    tracer = NULL_TRACER

    def __init__(self, database: Database):
        self.database = database

    # ------------------------------------------------------------------ API

    def execute(
        self,
        plan: PhysicalPlan,
        materialized: Optional[Mapping[int, List[Row]]] = None,
    ) -> List[Row]:
        """Execute one plan; ``materialized`` maps group ids to stored results."""
        return self._run(plan, self._make_store(materialized))

    def _make_store(self, materialized: Optional[Mapping[int, List[Row]]]) -> Dict:
        """The mutable materialized-results store one execution call works on.

        A hook so backends can attach per-call state to the store (the
        columnar executor keeps a rows→ColumnBatch memo alongside it, so a
        materialization computed as vectors is not re-transposed by every
        plan that reads it).
        """
        return dict(materialized if materialized is not None else {})

    def execute_result(
        self,
        result: BestCostResult,
        materialized: Optional[Mapping[int, List[Row]]] = None,
        fill_listener: Optional[Callable[[int, PhysicalPlan, List[Row]], None]] = None,
        queries: Optional[Iterable[str]] = None,
        observer: Optional[Callable[[PhysicalPlan, List[Row], float], None]] = None,
    ) -> Dict[str, List[Row]]:
        """Execute a whole ``bestCost`` result: materializations first, then queries.

        Materialization plans may read other materialized nodes, so they are
        executed in dependency order.

        Args:
            result: the consolidated plan (query plans + materialization plans).
            materialized: already-available rows per group id (cache hits from
                a :class:`~repro.service.matcache.MaterializationCache`); the
                corresponding materialization plans are *not* re-executed.
            fill_listener: called as ``fill_listener(gid, plan, rows)`` for
                every materialization actually computed by this call, so a
                cache can be populated with the freshly produced rows.
            queries: restrict row production to these query names (all when
                ``None``); materializations always run — they are the shared
                state the restriction is meant to avoid recomputing later.
            observer: instrumentation hook called as ``observer(plan, rows,
                elapsed_seconds)`` for every materialization and query plan
                this call actually *executed* (cache hits are not observed —
                nothing was measured).  The hook only fires after a plan ran
                successfully; an operator error propagates before the failed
                plan is observed.  Callers aggregating observations across a
                batch should buffer them and discard the buffer when this
                method raises, so a failing query cannot leak partial
                measurements into a statistics store.
        """
        store: Dict[int, List[Row]] = self._make_store(materialized)
        pending = {
            gid: plan
            for gid, plan in result.materialization_plans.items()
            if gid not in store
        }
        while pending:
            progressed = False
            for gid, plan in list(pending.items()):
                needed = set(plan.uses_materialized())
                if needed <= set(store):
                    rows = self._timed_run(plan, store, observer)
                    store[gid] = rows
                    del pending[gid]
                    progressed = True
                    if fill_listener is not None:
                        fill_listener(gid, plan, rows)
            if not progressed:
                raise ExecutionError(
                    f"circular dependency among materialized nodes: {sorted(pending)}"
                )
        wanted = None if queries is None else set(queries)
        return {
            name: self._timed_run(plan, store, observer)
            for name, plan in result.query_plans.items()
            if wanted is None or name in wanted
        }

    def _timed_run(
        self,
        plan: PhysicalPlan,
        store: Mapping[int, List[Row]],
        observer: Optional[Callable[[PhysicalPlan, List[Row], float], None]],
    ) -> List[Row]:
        """Run one top-level plan, reporting (rows, wall seconds) on success."""
        if observer is None:
            return self._run(plan, store)
        started = time.perf_counter()
        rows = self._run(plan, store)
        observer(plan, rows, time.perf_counter() - started)
        return rows

    # ------------------------------------------------------------- operators

    def _run(self, plan: PhysicalPlan, store: Mapping[int, List[Row]]) -> List[Row]:
        op = plan.op
        if op is PhysicalOp.TABLE_SCAN:
            return self._scan(plan)
        if op is PhysicalOp.INDEX_SCAN:
            rows = self._scan(plan)
            return [r for r in rows if evaluate_predicate(r, plan.predicate)]
        if op is PhysicalOp.FILTER:
            rows = self._run(plan.children[0], store)
            return [r for r in rows if evaluate_predicate(r, plan.predicate)]
        if op is PhysicalOp.SORT:
            rows = self._run(plan.children[0], store)
            return self._sort(rows, plan)
        if op in (PhysicalOp.MERGE_JOIN, PhysicalOp.NESTED_LOOP_JOIN):
            left = self._run(plan.children[0], store)
            right = self._run(plan.children[1], store)
            return self._join(left, right, plan.predicate)
        if op is PhysicalOp.INDEX_NL_JOIN:
            outer = self._run(plan.children[0], store)
            if plan.table is None or plan.alias is None:
                raise ExecutionError("index nested-loop join is missing its inner table")
            inner = [
                _prefix_row(row, plan.alias) for row in self.database.table(plan.table)
            ]
            return self._join(outer, inner, plan.predicate)
        if op in (PhysicalOp.SORT_AGGREGATE, PhysicalOp.SCALAR_AGGREGATE):
            rows = self._run(plan.children[0], store)
            return self._aggregate(rows, plan)
        if op is PhysicalOp.MATERIALIZE:
            return self._run(plan.children[0], store)
        if op is PhysicalOp.READ_MATERIALIZED:
            if plan.group not in store:
                raise ExecutionError(f"materialized result for G{plan.group} is not available")
            return [dict(row) for row in store[plan.group]]
        raise ExecutionError(f"cannot execute operator {op}")

    def _scan(self, plan: PhysicalPlan) -> List[Row]:
        if plan.table is None:
            raise ExecutionError("scan node is missing its table")
        alias = plan.alias or plan.table
        return [_prefix_row(row, alias) for row in self.database.table(plan.table)]

    @staticmethod
    def _sort(rows: List[Row], plan: PhysicalPlan) -> List[Row]:
        columns = plan.order.columns
        if not columns:
            return list(rows)

        def key(row: Row) -> Tuple:
            values = []
            for column in columns:
                try:
                    value = resolve_column(row, column)
                except ColumnNotFound:
                    value = None
                values.append(total_order_key(value))
            return tuple(values)

        return sorted(rows, key=key)

    def _join(
        self, left: List[Row], right: List[Row], predicate: Optional[Predicate]
    ) -> List[Row]:
        equi: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Predicate] = []
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.right, ColumnRef)
            ):
                equi.append((conjunct.left, conjunct.right))
            else:
                residual.append(conjunct)

        if not left or not right:
            # An inner join with an empty operand is empty, full stop.  This
            # also keeps the empty-but-schema-known case out of the O(n·m)
            # nested-loop fallback below, which it used to hit because the
            # hash path orients its equi-columns by probing left[0]/right[0].
            return []

        output: List[Row] = []
        if equi:
            # Hash join; each equi pair is oriented independently, so
            # `t.x = u.y AND u.z = t.w` works no matter how it was written.
            # Orientation works on the operands' *schemas* (the union of row
            # keys), not on a sampled first row — a column a heterogeneous
            # operand only carries on later rows must still orient the pair.
            left_names = frozenset(key for row in left for key in row)
            right_names = frozenset(key for row in right for key in row)

            def side(names: frozenset, column: ColumnRef) -> Optional[str]:
                try:
                    return resolve_in_names(names, column)
                except AmbiguousColumn:
                    return None

            left_cols: List[str] = []
            right_cols: List[str] = []
            for a, b in equi:
                la, rb = side(left_names, a), side(right_names, b)
                if la is not None and rb is not None:
                    left_cols.append(la)
                    right_cols.append(rb)
                    continue
                lb, ra = side(left_names, b), side(right_names, a)
                if lb is not None and ra is not None:
                    left_cols.append(lb)
                    right_cols.append(ra)
                    continue
                # The conjunct references an alias neither operand has.
                raise ExecutionError(
                    f"hash join cannot resolve join columns of '{a} = {b}' "
                    f"against either operand (unknown alias?)"
                )

            def key_for(row: Row, names: List[str]) -> Optional[Tuple]:
                # SQL equality semantics: a NULL (or absent) key component
                # matches nothing, exactly as the residual/nested-loop path
                # evaluates `a = b` to false when an operand is None.
                values = []
                for name in names:
                    value = row.get(name)
                    if value is None:
                        return None
                    values.append(value)
                return tuple(values)

            buckets: Dict[Tuple, List[Row]] = defaultdict(list)
            for row in right:
                build_key = key_for(row, right_cols)
                if build_key is not None:
                    buckets[build_key].append(row)
            for row in left:
                probe_key = key_for(row, left_cols)
                if probe_key is None:
                    continue
                for match in buckets.get(probe_key, ()):
                    merged = {**row, **match}
                    if all(evaluate_predicate(merged, p) for p in residual):
                        output.append(merged)
            return output

        for lrow in left:
            for rrow in right:
                merged = {**lrow, **rrow}
                if evaluate_predicate(merged, predicate):
                    output.append(merged)
        return output

    def _aggregate(self, rows: List[Row], plan: PhysicalPlan) -> List[Row]:
        groups: Dict[Tuple, List[int]] = defaultdict(list)
        for index, row in enumerate(rows):
            key = []
            for column in plan.group_by:
                try:
                    key.append(resolve_column(row, column))
                except AmbiguousColumn:
                    raise
                except ColumnNotFound:
                    # SQL semantics: a missing grouping column is a NULL
                    # group key, matching the aggregate-*input* extraction
                    # below (which already degrades missing cells to None).
                    key.append(None)
            groups[tuple(key)].append(index)
        if not plan.group_by and not groups:
            groups[()] = []

        # Resolve each aggregate's input column once over the whole input.
        # Doing it inside the per-group loop re-ran resolve_column's key scan
        # per (group, row) pair, which dominated aggregation on wide rows.
        extracted: List[Optional[List[object]]] = []
        for aggregate in plan.aggregates:
            if aggregate.func is AggregateFunction.COUNT or aggregate.column is None:
                extracted.append(None)
                continue
            values: List[object] = []
            for row in rows:
                try:
                    values.append(resolve_column(row, aggregate.column))
                except ColumnNotFound:
                    values.append(None)
            extracted.append(values)

        output: List[Row] = []
        for key, members in groups.items():
            out: Row = {}
            for column, value in zip(plan.group_by, key):
                out[str(column)] = value
            for aggregate, values in zip(plan.aggregates, extracted):
                out[aggregate.alias] = self._aggregate_value(aggregate, members, values)
            output.append(out)
        return output

    @staticmethod
    def _aggregate_value(
        aggregate: AggregateExpr,
        members: List[int],
        values: Optional[List[object]],
    ) -> object:
        """Fold one group given pre-extracted input values.

        ``members`` are the group's row positions in the aggregate's input;
        ``values`` is the full extracted input column (missing/unresolvable
        cells already ``None``), or ``None`` for COUNT / column-less
        aggregates which never look at values.
        """
        if aggregate.func is AggregateFunction.COUNT:
            return len(members)
        if values is None:  # non-COUNT aggregate without a column: no input
            return None
        present = [values[i] for i in members if values[i] is not None]
        if not present:
            return None
        if aggregate.func is AggregateFunction.SUM:
            return sum(present)
        if aggregate.func is AggregateFunction.MIN:
            return min(present)
        if aggregate.func is AggregateFunction.MAX:
            return max(present)
        if aggregate.func is AggregateFunction.AVG:
            return sum(present) / len(present)
        raise ExecutionError(f"unsupported aggregate function {aggregate.func}")
