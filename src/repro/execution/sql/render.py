"""Physical-plan → SQL rendering for the oracle backend.

Each :class:`~repro.optimizer.plan.PhysicalPlan` node renders to one
``SELECT`` over its rendered children (as parenthesized derived tables), so
the emitted SQL mirrors the interpreter's bottom-up evaluation exactly.
The renderer tracks every node's *output schema* — the qualified column
names the row executor would put in its dicts — because that is what makes
the oracle bit-comparable: result rows are rebuilt as ``dict(zip(names,
values))`` and must carry the same keys in the same order.

Semantics deliberately reproduced from the Python executors:

* **two-valued predicates**: the interpreter evaluates a comparison with a
  ``None`` operand to plain ``False`` (never UNKNOWN), so under ``NOT`` and
  ``OR`` it composes differently from SQL's three-valued logic.  Every
  rendered comparison is therefore NULL-guarded — ``(x IS NOT NULL AND y IS
  NOT NULL AND x = y)`` — which is two-valued by construction.
* **COUNT counts rows**: the executors' COUNT is the group size whatever
  the column, so it always renders as ``COUNT(*)`` (SQL's ``COUNT(col)``
  would skip NULLs).
* **missing columns**: a grouping or aggregate-input column that does not
  resolve against the child schema reads as NULL (matching the unified
  executor semantics); an *ambiguous* reference raises
  :class:`~repro.execution.evaluate.AmbiguousColumn`, also matching.  A
  predicate column that does not resolve renders as constant false for that
  comparison — the one knowing divergence: the row backends raise at
  evaluation time, and the differential suites do not generate such plans.
* **sort order**: ``ORDER BY expr IS NULL, expr`` puts NULLs last, which
  together with SQLite's numeric < text storage-class order matches
  :func:`~repro.execution.evaluate.total_order_key`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ...algebra.expressions import (
    AggregateFunction,
    And,
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjuncts,
)
from ...optimizer.plan import PhysicalOp, PhysicalPlan
from ..evaluate import AmbiguousColumn, resolve_in_names
from ..executor import ExecutionError
from .driver import quote_identifier

__all__ = ["Rendered", "render_plan", "render_predicate"]


@dataclass(frozen=True)
class Rendered:
    """One rendered relation: its SQL text and its output column names.

    ``names`` are the row-dict keys in order; the SQL's select list aliases
    its expressions to exactly these (or to a ``__void__`` placeholder when
    the relation has no columns, since SQL has no zero-column tables).
    """

    sql: str
    names: Tuple[str, ...]


_AGG_SQL = {
    AggregateFunction.SUM: "SUM",
    AggregateFunction.MIN: "MIN",
    AggregateFunction.MAX: "MAX",
    AggregateFunction.AVG: "AVG",
}


def _literal_sql(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            raise ExecutionError(f"SQL oracle cannot render non-finite literal {value!r}")
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise ExecutionError(
        f"SQL oracle cannot render literal of type {type(value).__name__!r}"
    )


def _select_list(items: Sequence[Tuple[str, str]]) -> str:
    if not items:
        return 'NULL AS "__void__"'
    return ", ".join(f"{expr} AS {quote_identifier(alias)}" for expr, alias in items)


Resolver = Callable[[ColumnRef], Optional[str]]


def render_predicate(predicate: Optional[Predicate], resolve: Resolver) -> str:
    """Render a predicate as a two-valued SQL boolean expression.

    ``resolve`` maps a column reference to its SQL expression, or ``None``
    when the reference does not resolve (the comparison is then constant
    false, see the module docstring).  The result is always one of ``1``,
    ``0`` or an expression that cannot evaluate to NULL.
    """
    if predicate is None or isinstance(predicate, TruePredicate):
        return "1"
    if isinstance(predicate, Comparison):
        operands = []
        for operand in (predicate.left, predicate.right):
            if isinstance(operand, ColumnRef):
                expr = resolve(operand)
                if expr is None:
                    return "0"
            else:
                if operand.value is None:
                    return "0"  # comparisons against a NULL literal are false
                expr = _literal_sql(operand.value)
            operands.append(expr)
        left, right = operands
        return (
            f"({left} IS NOT NULL AND {right} IS NOT NULL "
            f"AND {left} {predicate.op.value} {right})"
        )
    if isinstance(predicate, Between):
        expr = resolve(predicate.column)
        if expr is None:
            return "0"
        low = _literal_sql(predicate.low.value)
        high = _literal_sql(predicate.high.value)
        return f"({expr} IS NOT NULL AND {expr} BETWEEN {low} AND {high})"
    if isinstance(predicate, InList):
        expr = resolve(predicate.column)
        if expr is None or not predicate.values:
            return "0"
        rendered = ", ".join(_literal_sql(v.value) for v in predicate.values)
        return f"({expr} IS NOT NULL AND {expr} IN ({rendered}))"
    if isinstance(predicate, And):
        parts = [render_predicate(p, resolve) for p in predicate.operands]
        return "(" + " AND ".join(parts) + ")" if parts else "1"
    if isinstance(predicate, Or):
        parts = [render_predicate(p, resolve) for p in predicate.operands]
        return "(" + " OR ".join(parts) + ")" if parts else "0"
    if isinstance(predicate, Not):
        return f"(NOT {render_predicate(predicate.operand, resolve)})"
    raise ExecutionError(
        f"SQL oracle cannot render predicate of type {type(predicate).__name__}"
    )


class _Renderer:
    """One render pass; ``schemas`` supplies base-table and temp-table shapes."""

    def __init__(self, schemas) -> None:
        self._schemas = schemas
        self._counter = 0

    def _alias(self) -> str:
        self._counter += 1
        return f"__q{self._counter}"

    # -------------------------------------------------------------- resolvers

    @staticmethod
    def _resolve(names: Sequence[str], column: ColumnRef) -> Optional[str]:
        return resolve_in_names(names, column)

    def _scoped(self, alias: str, names: Sequence[str]) -> Resolver:
        def resolve(column: ColumnRef) -> Optional[str]:
            name = self._resolve(names, column)
            if name is None:
                return None
            return f"{alias}.{quote_identifier(name)}"

        return resolve

    # ------------------------------------------------------------------ nodes

    def render(self, plan: PhysicalPlan) -> Rendered:
        op = plan.op
        if op is PhysicalOp.TABLE_SCAN:
            return self._render_scan(plan)
        if op is PhysicalOp.INDEX_SCAN:
            return self._render_where(self._render_scan(plan), plan.predicate)
        if op is PhysicalOp.FILTER:
            return self._render_where(self.render(plan.children[0]), plan.predicate)
        if op is PhysicalOp.SORT:
            return self._render_sort(plan)
        if op in (PhysicalOp.MERGE_JOIN, PhysicalOp.NESTED_LOOP_JOIN):
            left = self.render(plan.children[0])
            right = self.render(plan.children[1])
            return self._render_join(left, right, plan.predicate)
        if op is PhysicalOp.INDEX_NL_JOIN:
            if plan.table is None or plan.alias is None:
                raise ExecutionError("index nested-loop join is missing its inner table")
            outer = self.render(plan.children[0])
            inner = self._render_table(plan.table, plan.alias)
            return self._render_join(outer, inner, plan.predicate)
        if op in (PhysicalOp.SORT_AGGREGATE, PhysicalOp.SCALAR_AGGREGATE):
            return self._render_aggregate(plan)
        if op is PhysicalOp.MATERIALIZE:
            return self.render(plan.children[0])
        if op is PhysicalOp.READ_MATERIALIZED:
            table, names = self._schemas.materialized(plan.group)
            items = [(quote_identifier(name), name) for name in names]
            return Rendered(
                f"SELECT {_select_list(items)} FROM {quote_identifier(table)}", names
            )
        raise ExecutionError(f"cannot execute operator {op}")

    def _render_table(self, table: str, alias: str) -> Rendered:
        base = self._schemas.base_columns(table)
        names = tuple(f"{alias}.{column}" for column in base)
        items = [
            (quote_identifier(column), name) for column, name in zip(base, names)
        ]
        return Rendered(
            f"SELECT {_select_list(items)} FROM {quote_identifier(table)}", names
        )

    def _render_scan(self, plan: PhysicalPlan) -> Rendered:
        if plan.table is None:
            raise ExecutionError("scan node is missing its table")
        return self._render_table(plan.table, plan.alias or plan.table)

    def _render_where(self, child: Rendered, predicate: Optional[Predicate]) -> Rendered:
        alias = self._alias()
        condition = render_predicate(predicate, self._scoped(alias, child.names))
        return Rendered(
            f"SELECT * FROM ({child.sql}) AS {alias} WHERE {condition}", child.names
        )

    def _render_sort(self, plan: PhysicalPlan) -> Rendered:
        child = self.render(plan.children[0])
        alias = self._alias()
        terms: List[str] = []
        for column in plan.order.columns:
            try:
                name = self._resolve(child.names, column)
            except AmbiguousColumn:
                name = None  # sort semantics: ambiguous/missing sorts as None
            if name is None:
                continue
            expr = f"{alias}.{quote_identifier(name)}"
            terms.append(f"{expr} IS NULL, {expr}")
        order = f" ORDER BY {', '.join(terms)}" if terms else ""
        return Rendered(
            f"SELECT * FROM ({child.sql}) AS {alias}{order}", child.names
        )

    def _render_join(
        self, left: Rendered, right: Rendered, predicate: Optional[Predicate]
    ) -> Rendered:
        la, ra = self._alias(), self._alias()
        left_names = set(left.names)
        right_names = set(right.names)
        merged = tuple(left.names) + tuple(
            name for name in right.names if name not in left_names
        )

        def merged_resolver(column: ColumnRef) -> Optional[str]:
            name = self._resolve(merged, column)
            if name is None:
                return None
            # Duplicate names take the right operand's values ({**l, **r}).
            source = ra if name in right_names else la
            return f"{source}.{quote_identifier(name)}"

        def side(names: Sequence[str], column: ColumnRef) -> Optional[str]:
            try:
                return self._resolve(names, column)
            except AmbiguousColumn:
                return None

        conditions: List[str] = []
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.right, ColumnRef)
            ):
                a, b = conjunct.left, conjunct.right
                pair = None
                la_name, rb_name = side(left.names, a), side(right.names, b)
                if la_name is not None and rb_name is not None:
                    pair = (la_name, rb_name)
                else:
                    lb_name, ra_name = side(left.names, b), side(right.names, a)
                    if lb_name is not None and ra_name is not None:
                        pair = (lb_name, ra_name)
                if pair is None:
                    # Mirror the interpreters' orientation error exactly.
                    raise ExecutionError(
                        f"hash join cannot resolve join columns of '{a} = {b}' "
                        f"against either operand (unknown alias?)"
                    )
                lexpr = f"{la}.{quote_identifier(pair[0])}"
                rexpr = f"{ra}.{quote_identifier(pair[1])}"
                conditions.append(
                    f"({lexpr} IS NOT NULL AND {rexpr} IS NOT NULL "
                    f"AND {lexpr} = {rexpr})"
                )
            else:
                conditions.append(render_predicate(conjunct, merged_resolver))
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        items = []
        for name in merged:
            source = ra if name in right_names else la
            items.append((f"{source}.{quote_identifier(name)}", name))
        return Rendered(
            f"SELECT {_select_list(items)} FROM ({left.sql}) AS {la}, "
            f"({right.sql}) AS {ra}{where}",
            merged,
        )

    def _render_aggregate(self, plan: PhysicalPlan) -> Rendered:
        child = self.render(plan.children[0])
        alias = self._alias()
        items: List[Tuple[str, str]] = []
        names: List[str] = []
        group_exprs: List[str] = []
        for column in plan.group_by:
            # AmbiguousColumn propagates: an ambiguous grouping reference is
            # a hard error in every backend.
            name = self._resolve(child.names, column)
            expr = f"{alias}.{quote_identifier(name)}" if name is not None else "NULL"
            items.append((expr, str(column)))
            names.append(str(column))
            group_exprs.append(expr)
        for aggregate in plan.aggregates:
            if aggregate.func is AggregateFunction.COUNT:
                # Executor COUNT is the group size, column or not.
                expr = "COUNT(*)"
            elif aggregate.column is None:
                expr = "NULL"  # non-COUNT aggregate without a column: no input
            else:
                try:
                    name = self._resolve(child.names, aggregate.column)
                except AmbiguousColumn:
                    name = None  # input extraction degrades ambiguous to NULL
                column_expr = (
                    f"{alias}.{quote_identifier(name)}" if name is not None else "NULL"
                )
                expr = f"{_AGG_SQL[aggregate.func]}({column_expr})"
            items.append((expr, aggregate.alias))
            names.append(aggregate.alias)
        # Constant-NULL keys cannot split groups, so they are dropped from
        # GROUP BY (portable: some engines reject grouping by a bare NULL).
        # If *no* key resolved, grouping by nothing must still yield zero
        # groups over zero rows — HAVING over the implicit single group
        # restores that, where a plain scalar SELECT would emit one row.
        real = [expr for expr in group_exprs if expr != "NULL"]
        if real:
            tail = f" GROUP BY {', '.join(real)}"
        elif plan.group_by:
            tail = " HAVING COUNT(*) > 0"
        else:
            tail = ""
        return Rendered(
            f"SELECT {_select_list(items)} FROM ({child.sql}) AS {alias}{tail}",
            tuple(names),
        )


def render_plan(plan: PhysicalPlan, schemas) -> Rendered:
    """Render one physical plan against a schema provider.

    ``schemas`` must expose ``base_columns(table) -> Sequence[str]``
    (unqualified column names of a loaded base table) and
    ``materialized(gid) -> (temp_table_name, qualified_names)``.
    """
    return _Renderer(schemas).render(plan)
