"""Fixture-driven contracts for the four repo-specific checkers.

Every checker has a must-flag / must-pass fixture pair under ``fixtures/``
(plain ``.py`` sources, never imported): the flag file distills the
historical bug shapes (the PR 3/PR 4 falsy-default incidents, the PR 8
torn statistics read), the pass file enumerates the sanctioned escape
hatches that must stay quiet.
"""

from pathlib import Path

import pytest

from repro.analysis import CHECKERS, lint_source
from repro.analysis.lint import lint_file

FIXTURES = Path(__file__).parent / "fixtures"

CASES = [
    ("falsy-default", "falsy_default_flag.py", "falsy_default_pass.py"),
    ("lock-discipline", "lock_discipline_flag.py", "lock_discipline_pass.py"),
    ("stats-snapshot", "stats_snapshot_flag.py", "stats_snapshot_pass.py"),
    ("bare-except-swallow", "bare_except_flag.py", "bare_except_pass.py"),
]


def test_all_four_checkers_are_registered():
    assert {case[0] for case in CASES} <= set(CHECKERS)


@pytest.mark.parametrize("checker,flag_file,_", CASES, ids=[c[0] for c in CASES])
def test_must_flag_fixture_is_flagged(checker, flag_file, _):
    findings, _suppressed = lint_file(FIXTURES / flag_file, select=[checker])
    assert findings, f"{checker} found nothing in {flag_file}"
    assert all(f.checker == checker for f in findings)
    # Every finding carries an actionable location and message.
    for finding in findings:
        assert finding.line > 0
        assert finding.message
        assert str(FIXTURES / flag_file) == finding.path


@pytest.mark.parametrize("checker,_,pass_file", CASES, ids=[c[0] for c in CASES])
def test_must_pass_fixture_is_clean(checker, _, pass_file):
    findings, _suppressed = lint_file(FIXTURES / pass_file, select=[checker])
    assert findings == [], [f.location() + " " + f.message for f in findings]


def test_falsy_default_flags_the_literal_pr3_pr4_lines():
    """The historical bug lines themselves must be among the findings."""
    path = FIXTURES / "falsy_default_flag.py"
    source = path.read_text()
    findings, _ = lint_file(path, select=["falsy-default"])
    flagged_lines = {source.splitlines()[f.line - 1] for f in findings}
    assert any("matcache or MaterializationCache()" in line for line in flagged_lines)
    assert any("feedback or FeedbackStatsStore()" in line for line in flagged_lines)


def test_falsy_default_flags_every_defaulted_parameter():
    findings, _ = lint_file(
        FIXTURES / "falsy_default_flag.py", select=["falsy-default"]
    )
    # matcache, feedback, materialized, rows, masks, config.
    assert len(findings) == 6


def test_lock_discipline_sees_wrapped_lock_constructions():
    findings, _ = lint_file(
        FIXTURES / "lock_discipline_flag.py", select=["lock-discipline"]
    )
    assert any("_hits" in f.message for f in findings)
    assert any("_entries" in f.message or "_bytes" in f.message for f in findings)


def test_lock_free_allowlist_requires_strings():
    source = (
        "import threading\n"
        "class C:\n"
        "    _LOCK_FREE = ('_q',)\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._q = object()\n"
        "        self._n = 0\n"
        "    def a(self):\n"
        "        with self._lock:\n"
        "            self._n += 1\n"
        "            self._q.put(1)\n"
        "    def b(self):\n"
        "        self._q.put(2)\n"  # allowlisted
        "        return self._n\n"  # flagged
    )
    findings, _ = lint_source(source, select=["lock-discipline"])
    assert len(findings) == 1
    assert "'self._n'" in findings[0].message


def test_stats_snapshot_ignores_single_field_reads():
    findings, _ = lint_source(
        "def f(cache):\n    return cache.statistics.hits\n",
        select=["stats-snapshot"],
    )
    assert findings == []


def test_stats_snapshot_flags_second_distinct_field():
    findings, _ = lint_source(
        "def f(cache):\n"
        "    a = cache.statistics.hits\n"
        "    b = cache.statistics.misses\n"
        "    return a + b\n",
        select=["stats-snapshot"],
    )
    assert len(findings) == 1
    assert findings[0].line == 3


def test_checker_rationales_are_documented():
    for checker_id, cls in CHECKERS.items():
        assert cls.id == checker_id
        assert cls.rationale and len(cls.rationale) > 20
