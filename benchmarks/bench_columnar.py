"""Headline backend benchmark: cold execution of one shared plan.

The vectorized backend's acceptance bar: executing the *same* optimized
TPC-D composite plan over a scaled database, the columnar backend must be
at least :data:`MIN_SPEEDUP` (5×) faster than the tuple-at-a-time
interpreter while returning bit-identical rows — the design target is
:data:`TARGET_SPEEDUP` (10×).

Only execution is timed: the plan is optimized once and handed to bare
executors, so neither optimizer time nor materialization-cache hits can
flatter (or mask) the backend difference.  Results go to
``BENCH_columnar.json`` at the repository root for CI to upload.

Beyond the row/columnar pair, the same plan runs on every execution
backend the session can serve with — the SQL oracles included (DuckDB
only when the optional package is installed) — asserting the row
*multiset* identical across all of them and recording the per-backend
times to ``BENCH_backends.json``.  The SQL side is compared
order-normalized with floats rounded, the same discipline as the
differential suites: engines sum in different orders.
"""

import json
import time

import pytest

from _env import bench_path, scaled, tiny
from repro.catalog.tpcd import tpcd_catalog
from repro.execution import (
    ColumnarExecutor,
    DuckDBExecutor,
    Executor,
    SQLiteExecutor,
    tiny_tpcd_database,
    total_order_key,
)
from repro.service import OptimizerSession
from repro.workloads.batches import composite_batch

MIN_SPEEDUP = 5.0  # hard floor, asserted below (full scale only)
TARGET_SPEEDUP = 10.0  # design target, reported but not asserted


def orders() -> int:
    return scaled(4000, 300)  # full: per-row interpretation dominates


REPEATS = 3  # best-of, to shed scheduler noise


@pytest.fixture(scope="module")
def database():
    return tiny_tpcd_database(seed=11, orders=orders())


@pytest.fixture(scope="module")
def shared_plan():
    """One optimized plan both backends execute — sharing decisions and all."""
    session = OptimizerSession(tpcd_catalog(1.0))
    return session.optimize(composite_batch(2)).plan


def best_of(executor, plan, repeats=REPEATS):
    elapsed = float("inf")
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = executor.execute_result(plan)
        elapsed = min(elapsed, time.perf_counter() - started)
    return elapsed, rows


@pytest.mark.benchmark(group="columnar")
def test_row_cold_execute(benchmark, database, shared_plan):
    rows = benchmark(lambda: Executor(database).execute_result(shared_plan))
    assert rows


@pytest.mark.benchmark(group="columnar")
def test_columnar_cold_execute(benchmark, database, shared_plan):
    rows = benchmark(lambda: ColumnarExecutor(database).execute_result(shared_plan))
    assert rows


def test_columnar_speedup_meets_floor(database, shared_plan):
    """The acceptance criterion, asserted directly; writes BENCH_columnar.json."""
    row_time, row_rows = best_of(Executor(database), shared_plan)
    columnar_time, columnar_rows = best_of(ColumnarExecutor(database), shared_plan)

    assert columnar_rows == row_rows, "speed must not change answers"
    speedup = row_time / columnar_time

    bench_path("BENCH_columnar.json").write_text(
        json.dumps(
            {
                "batch": composite_batch(2).name,
                "orders": orders(),
                "tiny": tiny(),
                "unit": "seconds",
                "repeats": REPEATS,
                "row_cold_execute": row_time,
                "columnar_cold_execute": columnar_time,
                "speedup": speedup,
                "min_speedup": MIN_SPEEDUP,
                "target_speedup": TARGET_SPEEDUP,
                "queries": len(row_rows),
                "rows_returned": sum(len(rows) for rows in row_rows.values()),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    if not tiny():
        assert speedup >= MIN_SPEEDUP, (
            f"columnar backend is only {speedup:.2f}x faster than the row "
            f"interpreter (floor {MIN_SPEEDUP}x, target {TARGET_SPEEDUP}x)"
        )


# ---------------------------------------------------------------------------
# Four-backend comparison: every backend the session can serve with runs the
# same consolidated plan; rows must agree as multisets, times are recorded.
# ---------------------------------------------------------------------------


def _canonical(rows):
    """Order-independent canonical form, floats rounded (engines sum in
    different orders) — the differential suites' comparison discipline."""
    normalized = [
        tuple(
            sorted(
                (k, round(v, 6) if isinstance(v, float) else v) for k, v in row.items()
            )
        )
        for row in rows
    ]
    return sorted(
        normalized, key=lambda row: [(k, total_order_key(v)) for k, v in row]
    )


def _backend_executors(database):
    executors = {
        "row": Executor(database),
        "columnar": ColumnarExecutor(database),
        "sqlite": SQLiteExecutor(database),
    }
    try:
        executors["duckdb"] = DuckDBExecutor(database)
    except ImportError:
        pass
    return executors


def test_four_backend_comparison(database, shared_plan):
    """Row/columnar/sqlite(/duckdb) on one plan; writes BENCH_backends.json."""
    executors = _backend_executors(database)
    times = {}
    outputs = {}
    for name, executor in executors.items():
        times[name], outputs[name] = best_of(executor, shared_plan)

    reference = {
        query: _canonical(rows) for query, rows in outputs["row"].items()
    }
    for name, rows_by_query in outputs.items():
        assert set(rows_by_query) == set(reference)
        for query, rows in rows_by_query.items():
            assert _canonical(rows) == reference[query], (
                f"backend {name!r} diverges on {query}"
            )

    row_time = times["row"]
    bench_path("BENCH_backends.json").write_text(
        json.dumps(
            {
                "batch": composite_batch(2).name,
                "orders": orders(),
                "tiny": tiny(),
                "unit": "seconds",
                "repeats": REPEATS,
                "backends": times,
                "speedup_vs_row": {
                    name: row_time / elapsed for name, elapsed in times.items()
                },
                "duckdb_available": "duckdb" in executors,
                "queries": len(reference),
                "rows_identical": True,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
