"""Relational schema objects: columns, tables and indices.

The optimizer never touches actual data — it only needs the schema and the
statistics attached to it (see :mod:`repro.catalog.statistics`).  The tiny
execution engine in :mod:`repro.execution` uses the same schema objects to
type its in-memory rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["DataType", "Column", "Index", "Table"]


class DataType(str, Enum):
    """Column data types (only what the TPC-D schema needs)."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    @property
    def default_width(self) -> int:
        """Approximate storage width in bytes, used for row-size estimates."""
        return {
            DataType.INTEGER: 4,
            DataType.FLOAT: 8,
            DataType.STRING: 16,
            DataType.DATE: 4,
        }[self]


@dataclass(frozen=True)
class Column:
    """A column of a table.

    Attributes:
        name: column name (unique within its table; TPC-D names are unique
            globally thanks to the per-table prefixes).
        dtype: the column's data type.
        width: storage width in bytes; defaults to the type's default width.
    """

    name: str
    dtype: DataType = DataType.INTEGER
    width: Optional[int] = None

    @property
    def byte_width(self) -> int:
        return self.width if self.width is not None else self.dtype.default_width


@dataclass(frozen=True)
class Index:
    """A (possibly clustered) index over a sequence of columns.

    Only clustered primary-key indices are used by the paper's experiments,
    but secondary indices are supported by the cost model as well.
    """

    name: str
    table: str
    columns: Tuple[str, ...]
    clustered: bool = False

    @property
    def leading_column(self) -> str:
        return self.columns[0]


@dataclass(frozen=True)
class Table:
    """A base table: a name plus an ordered collection of columns."""

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in table {self.name!r}")
        missing = [k for k in self.primary_key if k not in names]
        if missing:
            raise ValueError(f"primary key columns {missing} not in table {self.name!r}")

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def row_width(self) -> int:
        """Approximate width of a row in bytes."""
        return sum(c.byte_width for c in self.columns)
