"""Admission/eviction policies for the materialization cache.

The serving layer's :class:`~repro.service.matcache.MaterializationCache`
historically scored entries by *estimated* recomputation cost — the same
static numbers the optimizer guessed with.  The policies here make that
decision pluggable:

* :class:`CostLRUPolicy` reproduces the original behaviour exactly
  (estimated cost × popularity ÷ bytes, least-recently-used tie-break), and
* :class:`BenefitAwarePolicy` replaces the guess with *measured* benefit
  from the :class:`~repro.adaptive.stats.FeedbackStatsStore`: entries are
  scored by observed recomputation seconds × hit recency ÷ observed bytes,
  so the cache keeps the row sets that demonstrably save the most wall
  time per byte, and can refuse to admit entries whose measured
  recomputation is too cheap to be worth caching at all.

A policy sees the cache's private entry records; it must treat them as
read-only.

Layering note: :mod:`repro.service.matcache` imports this module for its
default policy, so nothing here may import from :mod:`repro.service` (keys
are accepted as opaque hashables for exactly this reason) — the dependency
between the packages must stay one-way.
"""

from __future__ import annotations

from typing import Hashable, Optional, Protocol

from .stats import FeedbackStatsStore, ObservedStats

__all__ = ["BenefitAwarePolicy", "CachePolicy", "CostLRUPolicy"]


def _fingerprint_of(key: Hashable) -> str:
    """The canonical-fingerprint component of a cache key.

    The materialization cache keys on ``(canonical fingerprint, stored
    order)``; the feedback store keys on the fingerprint alone (all stored
    orders of one logical result share its runtime statistics).
    """
    if isinstance(key, tuple) and key:
        return str(key[0])
    return str(key)


class CachePolicy(Protocol):
    """Decides what the materialization cache admits and evicts first."""

    def admit(self, key: Hashable, size: int, cost: float) -> bool:
        """Whether a fill for ``key`` (``size`` bytes, estimated recompute
        ``cost``) should be stored at all."""
        ...  # pragma: no cover

    def score(self, key: Hashable, entry, clock: int) -> float:
        """Retention score of a cached entry; the lowest score is evicted
        first (ties broken least-recently-used by the cache)."""
        ...  # pragma: no cover


class CostLRUPolicy:
    """The original estimated-cost policy: keep what is expensive per byte.

    ``score = estimated recompute cost × (1 + hits) / bytes`` — identical to
    the formula the cache used before policies became pluggable, so a cache
    constructed with the default policy behaves bit-for-bit the same.
    """

    def admit(self, key: Hashable, size: int, cost: float) -> bool:
        return True

    def score(self, key: Hashable, entry, clock: int) -> float:
        return entry.cost * (1.0 + entry.hits) / max(entry.bytes, 1)


class BenefitAwarePolicy:
    """Score entries by measured benefit instead of estimated cost.

    ``score = observed recompute seconds × (1 + hits) × recency / bytes``
    where recency halves every ``recency_half_life`` cache operations since
    the entry's last use — an entry that saved a lot of measured wall time,
    is popular, was used recently and is small is kept longest.  Entries the
    store has no timing for fall back to ``fallback`` (default:
    :class:`CostLRUPolicy`), so a cold store degrades gracefully to the
    estimated-cost behaviour.

    Args:
        store: the feedback store supplying observed timings and byte sizes.
        fallback: policy used for entries without observed timings.
        min_benefit_seconds: fills whose *measured* recomputation time is
            below this are not admitted (0.0 admits everything); re-deriving
            them is cheaper than the cache space they would occupy.
        recency_half_life: cache-clock ticks after which an unused entry's
            recency factor halves.
    """

    def __init__(
        self,
        store: FeedbackStatsStore,
        *,
        fallback: Optional[CachePolicy] = None,
        min_benefit_seconds: float = 0.0,
        recency_half_life: float = 16.0,
    ):
        if min_benefit_seconds < 0.0:
            raise ValueError("min_benefit_seconds must be non-negative")
        if recency_half_life <= 0.0:
            raise ValueError("recency_half_life must be positive")
        self.store = store
        self.fallback = fallback if fallback is not None else CostLRUPolicy()
        self.min_benefit_seconds = min_benefit_seconds
        self.recency_half_life = recency_half_life

    def _observed(self, key: Hashable) -> Optional[ObservedStats]:
        entry = self.store.get(_fingerprint_of(key))
        if entry is None or entry.elapsed <= 0.0:
            return None
        return entry

    def admit(self, key: Hashable, size: int, cost: float) -> bool:
        observed = self._observed(key)
        if observed is None:
            return True
        return observed.elapsed >= self.min_benefit_seconds

    def score(self, key: Hashable, entry, clock: int) -> float:
        observed = self._observed(key)
        if observed is None:
            return self.fallback.score(key, entry, clock)
        age = max(clock - entry.last_used, 0)
        recency = 0.5 ** (age / self.recency_half_life)
        size = observed.bytes if observed.bytes > 0 else entry.bytes
        return observed.elapsed * (1.0 + entry.hits) * recency / max(size, 1.0)
