"""The lint engine: walk files, run checkers, apply reasoned suppressions.

Entry points:

* :func:`lint_paths` — lint files/directories (what the CLI calls);
* :func:`lint_file` / :func:`lint_source` — one module (what tests call).

A file that does not parse yields one ``parse-error`` finding instead of
crashing the run — the linter must be able to gate CI on a tree that a
bad merge broke.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .findings import (
    Finding,
    LintReport,
    render_json,
    render_text,
    report_from_json,
)
from .suppressions import MISSING_REASON_ID, scan_suppressions
from .visitor import CHECKERS, Checker, LintVisitor, ModuleContext, register_checker
from . import checkers as _checkers  # noqa: F401  (registers the catalog)

__all__ = [
    "CHECKERS",
    "Checker",
    "Finding",
    "LintReport",
    "LintVisitor",
    "ModuleContext",
    "PARSE_ERROR_ID",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_checker",
    "render_json",
    "render_text",
    "report_from_json",
]

#: Checker id attached to files the engine could not parse.
PARSE_ERROR_ID = "parse-error"


def _selected(select: Optional[Iterable[str]]) -> List[Checker]:
    if select is None:
        names = sorted(CHECKERS)
    else:
        names = list(select)
        unknown = [name for name in names if name not in CHECKERS]
        if unknown:
            raise ValueError(
                f"unknown checker id(s) {unknown}; known: {sorted(CHECKERS)}"
            )
    return [CHECKERS[name]() for name in names]


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one module's source; returns ``(findings, suppressed)``."""
    try:
        module = ModuleContext.parse(source, path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    checker=PARSE_ERROR_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            [],
        )
    raw: List[Finding] = []
    for checker in _selected(select):
        raw.extend(checker.check(module))
    by_line, malformed = scan_suppressions(module.lines, path)
    raw.extend(malformed)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        covering = next(
            (
                suppression
                for suppression in by_line.get(finding.line, ())
                if suppression.covers(finding.checker)
                and finding.checker != MISSING_REASON_ID
            ),
            None,
        )
        if covering is None:
            findings.append(finding)
        else:
            suppressed.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    checker=finding.checker,
                    message=finding.message,
                    suppressed=True,
                    reason=covering.reason,
                )
            )
    return sorted(findings), sorted(suppressed)


def lint_file(
    path: Union[str, Path], *, select: Optional[Iterable[str]] = None
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file on disk; returns ``(findings, suppressed)``."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), select=select)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted, deduped."""
    out: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return out


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` into one :class:`LintReport`."""
    _selected(select)  # validate ids up front, before touching any file
    report = LintReport()
    for path in iter_python_files(paths):
        findings, suppressed = lint_file(path, select=select)
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
        report.files += 1
    return report.sort()
