"""Vectorized columnar execution backend (late-materializing).

Same plans, same rows, different inner loop: operators move
:class:`~repro.execution.columnar.batch.ColumnBatch` objects (one list per
column plus a validity mask) and only convert to row dicts at the API
boundary.  Select it per session with ``OptimizerSession(catalog,
executor="columnar")`` or construct a
:class:`~repro.execution.columnar.executor.ColumnarExecutor` directly.
"""

from .batch import ColumnBatch
from .compile import filter_indices
from .executor import ColumnarExecutor

__all__ = ["ColumnBatch", "ColumnarExecutor", "filter_indices"]
