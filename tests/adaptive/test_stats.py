"""Property tests for the feedback statistics store."""

import random
import threading

import pytest

from repro.adaptive import FeedbackStatsStore


class TestRecordAndGet:
    def test_missing_key_returns_none_and_zero_confidence(self):
        store = FeedbackStatsStore()
        assert store.get("nope") is None
        assert store.confidence("nope") == 0.0
        assert "nope" not in store
        assert len(store) == 0

    def test_first_record_is_taken_verbatim(self):
        store = FeedbackStatsStore()
        entry = store.record("k", rows=42, bytes=1000, elapsed=0.5)
        assert entry.rows == 42.0
        assert entry.bytes == 1000.0
        assert entry.elapsed == 0.5
        assert entry.last_rows == 42.0
        assert entry.observations == 1
        assert store.get("k") == entry

    def test_row_width_requires_both_observations(self):
        store = FeedbackStatsStore()
        assert store.record("a", rows=10, bytes=800).row_width == 80.0
        assert store.record("b", rows=10).row_width is None
        assert store.record("c", rows=0, bytes=100).row_width is None

    def test_ewma_stays_within_observed_bounds(self):
        """Property: for any observation sequence (one epoch), every moving
        average lies within [min, max] of what was actually observed."""
        for seed in range(10):
            rng = random.Random(seed)
            store = FeedbackStatsStore(ewma_alpha=rng.choice([0.2, 0.5, 0.9, 1.0]))
            observed = [rng.uniform(0, 10_000) for _ in range(rng.randint(1, 30))]
            for value in observed:
                entry = store.record("k", rows=value, bytes=2 * value, elapsed=value / 100)
            assert min(observed) <= entry.rows <= max(observed)
            assert 2 * min(observed) <= entry.bytes <= 2 * max(observed)
            assert entry.last_rows == observed[-1]
            assert entry.observations == len(observed)
            store.clear()
            assert len(store) == 0

    def test_alpha_one_keeps_only_the_latest(self):
        store = FeedbackStatsStore(ewma_alpha=1.0)
        store.record("k", rows=10)
        assert store.record("k", rows=70).rows == 70.0

    def test_negative_inputs_are_floored(self):
        store = FeedbackStatsStore()
        entry = store.record("k", rows=-5, bytes=-1, elapsed=-0.1)
        assert entry.rows == 0.0 and entry.bytes == 0.0 and entry.elapsed == 0.0


class TestConfidence:
    def test_confidence_grows_monotonically_with_observations(self):
        store = FeedbackStatsStore(ewma_alpha=0.5)
        previous = 0.0
        for _ in range(8):
            store.record("k", rows=10)
            confidence = store.confidence("k")
            assert 0.0 < confidence <= 1.0
            assert confidence >= previous
            previous = confidence
        assert previous > 0.9

    def test_confidence_decays_per_epoch(self):
        store = FeedbackStatsStore(ewma_alpha=1.0, epoch_decay=0.5)
        store.ensure_token("v0")
        store.record("k", rows=10)
        assert store.confidence("k") == pytest.approx(1.0)
        assert store.ensure_token("v1") is True
        assert store.confidence("k") == pytest.approx(0.5)
        assert store.ensure_token("v2") is True
        assert store.confidence("k") == pytest.approx(0.25)

    def test_record_after_epoch_change_resets_the_averages(self):
        """Observations measured against old data never average into new ones."""
        store = FeedbackStatsStore(ewma_alpha=0.5)
        store.ensure_token("v0")
        for _ in range(4):
            store.record("k", rows=1000)
        store.ensure_token("v1")
        entry = store.record("k", rows=10)
        assert entry.rows == 10.0, "EWMA must restart from the fresh observation"
        assert entry.observations == 1
        assert store.confidence("k") == pytest.approx(0.5)
        assert store.statistics.epoch_resets == 1


class TestTokens:
    def test_first_token_is_adopted_silently(self):
        store = FeedbackStatsStore()
        assert store.ensure_token(("db", 1)) is False
        assert store.token == ("db", 1)
        assert store.epoch == 0

    def test_same_token_is_a_noop(self):
        store = FeedbackStatsStore()
        store.ensure_token(("db", 1))
        assert store.ensure_token(("db", 1)) is False
        assert store.epoch == 0

    def test_token_change_bumps_epoch_but_keeps_entries(self):
        store = FeedbackStatsStore()
        store.ensure_token(("db", 1))
        store.record("k", rows=10)
        assert store.ensure_token(("db", 2)) is True
        assert store.epoch == 1
        assert store.get("k") is not None, "decay, not hard invalidation"
        assert store.statistics.token_changes == 1


class TestEviction:
    def test_least_recently_updated_is_dropped_first(self):
        store = FeedbackStatsStore(max_entries=2)
        store.record("a", rows=1)
        store.record("b", rows=2)
        store.record("a", rows=3)  # refresh a; b is now the oldest
        store.record("c", rows=4)
        assert "b" not in store
        assert "a" in store and "c" in store
        assert store.statistics.evictions == 1

    def test_size_never_exceeds_max_entries(self):
        store = FeedbackStatsStore(max_entries=5)
        for i in range(50):
            store.record(f"k{i % 11}", rows=i)
            assert len(store) <= 5


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"epoch_decay": -0.1},
        {"epoch_decay": 1.1},
        {"max_entries": 0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            FeedbackStatsStore(**kwargs)


class TestThreadSafety:
    def test_concurrent_records_are_all_counted(self):
        store = FeedbackStatsStore()
        barrier = threading.Barrier(4)

        def worker(index):
            barrier.wait(timeout=10)
            for i in range(200):
                store.record(f"k{index}", rows=i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert store.statistics.records == 800
        for index in range(4):
            assert store.get(f"k{index}").observations == 200
