"""End-to-end execution through the serving layer.

Covers the session execute API (cold vs. warm, bit-identical rows, zero
re-materializations on warm traffic — the PR's acceptance criterion),
cache invalidation on data change, the scheduler's row-returning mode, and
the concurrency regression test for the shared-cache locking.
"""

import threading

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.execution import Executor, tiny_tpcd_database
from repro.service import BatchExecution, BatchScheduler, OptimizerSession
from repro.workloads.batches import composite_batch
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(1.0)


@pytest.fixture()
def database():
    return tiny_tpcd_database(seed=3, orders=400)


class TestSessionExecute:
    def test_requires_attached_database(self, catalog):
        session = OptimizerSession(catalog)
        with pytest.raises(RuntimeError, match="no database attached"):
            session.execute_batch(composite_batch(1))

    def test_warm_execute_bit_identical_with_zero_rematerializations(
        self, catalog, database
    ):
        """The acceptance criterion, as a tier-1 test."""
        session = OptimizerSession(catalog, database=database)
        batch = composite_batch(1)

        cold = session.execute_batch(batch)
        assert cold.result.materialized_count >= 1, "BQ1 should share a subexpression"
        assert cold.materializations == len(cold.result.plan.materialization_plans)
        assert cold.cache_hits == 0

        warm = session.execute_batch(batch)
        assert warm.materializations == 0, "warm execution must not re-materialize"
        assert warm.cache_hits == cold.materializations
        assert warm.rows == cold.rows  # bit-identical, not just multiset-equal
        assert session.statistics.batches_executed == 2
        assert session.statistics.materialization_cache_hits == cold.materializations

    def test_execution_matches_standalone_executor(self, catalog, database):
        """Rows served through the cache equal a plain uncached execution."""
        session = OptimizerSession(catalog, database=database)
        batch = composite_batch(2)
        served = session.execute_batch(batch)
        again = session.execute_batch(batch)
        plain = Executor(database).execute_result(served.result.plan)
        assert served.rows == plain
        assert again.rows == plain

    def test_execute_single_query(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        batch = composite_batch(1)
        reference = session.execute_batch(batch)
        for query in batch:
            rows = session.execute(query)
            assert rows == reference.rows[query.name]

    def test_overlapping_batches_share_materializations(self, catalog, database):
        """A later batch containing the same shared node hits the cache."""
        session = OptimizerSession(catalog, database=database)
        first = session.execute_batch(composite_batch(1))
        assert first.materializations >= 1
        # BQ2 extends BQ1; any BQ1 materialization that BQ2's plan reuses
        # (same fingerprint + stored order) is a cache hit, not a recompute.
        second = session.execute_batch(composite_batch(2))
        total = len(second.result.plan.materialization_plans)
        assert second.cache_hits + second.materializations == total
        assert second.cache_hits >= 1, (
            "BQ2 should reuse at least one row set BQ1 materialized"
        )

    def test_data_change_invalidates_cache(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        batch = composite_batch(1)
        cold = session.execute_batch(batch)
        assert cold.materializations >= 1

        # Shrink the orders table; cached joins over it are now stale.
        database.replace_table("orders", database.table("orders")[:50])
        changed = session.execute_batch(batch)
        assert changed.cache_hits == 0
        assert changed.materializations >= 1
        assert session.statistics.data_invalidations >= 1
        plain = Executor(database).execute_result(changed.result.plan)
        assert changed.rows == plain

    def test_touch_invalidates_in_place_mutation(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        batch = composite_batch(1)
        session.execute_batch(batch)
        database.table("orders").clear()
        database.touch()
        changed = session.execute_batch(batch)
        assert changed.cache_hits == 0
        assert all(not rows for rows in changed.rows.values())

    def test_attach_different_database_invalidates(self, catalog):
        db_a = tiny_tpcd_database(seed=3, orders=400)
        db_b = tiny_tpcd_database(seed=4, orders=400)
        session = OptimizerSession(catalog, database=db_a)
        batch = composite_batch(1)
        rows_a = session.execute_batch(batch)
        session.attach_database(db_b)
        rows_b = session.execute_batch(batch)
        assert rows_b.cache_hits == 0
        assert rows_b.rows == Executor(db_b).execute_result(rows_b.result.plan)
        # Reattaching the original database must not serve db_b's rows.
        session.attach_database(db_a)
        rows_a_again = session.execute_batch(batch)
        assert rows_a_again.cache_hits == 0
        assert rows_a_again.rows == rows_a.rows

    def test_attach_identical_content_database_keeps_the_cache(self, catalog):
        """Invalidation is content-token driven: swapping to a *different
        object* holding byte-identical data keeps every cached row valid
        (the same property that lets a restarted process trust its spill
        files)."""
        session = OptimizerSession(catalog, database=tiny_tpcd_database(seed=3, orders=400))
        batch = composite_batch(1)
        cold = session.execute_batch(batch)
        assert cold.materializations >= 1
        session.attach_database(tiny_tpcd_database(seed=3, orders=400))
        warm = session.execute_batch(batch)
        assert warm.rows == cold.rows
        assert warm.materializations == 0
        assert session.statistics.data_invalidations == 0

    def test_foreign_result_is_rejected(self, catalog, database):
        """Group ids are memo-local: a result from another session must not
        be resolved against this session's memo (wrong groups would poison
        the fingerprint-keyed cache)."""
        other = OptimizerSession(catalog)
        foreign = other.optimize(composite_batch(1))
        session = OptimizerSession(catalog, database=database)
        with pytest.raises(ValueError, match="different memo"):
            session.execute_plans(foreign)
        # After reset() the session has a new memo; its own old results are
        # stale in exactly the same way.
        own = session.optimize(composite_batch(1))
        session.reset()
        with pytest.raises(ValueError, match="different memo"):
            session.execute_plans(own)

    def test_facade_session_can_execute(self, catalog, database):
        """The MultiQueryOptimizer facade exposes execution via its session."""
        optimizer = MultiQueryOptimizer(catalog)
        optimizer.session.attach_database(database)
        result = optimizer.optimize(composite_batch(1))
        execution = optimizer.session.execute_plans(result)
        assert execution.rows == Executor(database).execute_result(result.plan)


class TestSchedulerExecution:
    def test_submit_with_execute_returns_rows(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        batch = composite_batch(1)
        reference = session.execute_batch(batch)
        with BatchScheduler(session) as scheduler:
            futures = [scheduler.submit(q, execute=True) for q in batch]
            outcomes = [f.result(timeout=120) for f in futures]
        by_name = {o.query_name: o for o in outcomes}
        for query in batch:
            assert by_name[query.name].rows == reference.rows[query.name]

    def test_submit_without_execute_has_no_rows(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        with BatchScheduler(session) as scheduler:
            outcome = scheduler.submit(composite_batch(1).queries[0]).result(timeout=120)
        assert outcome.rows is None

    def test_submit_batch_execute_resolves_to_execution(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        with BatchScheduler(session) as scheduler:
            execution = scheduler.submit_batch(
                composite_batch(1), execute=True
            ).result(timeout=120)
        assert isinstance(execution, BatchExecution)
        assert execution.rows == Executor(database).execute_result(execution.result.plan)

    def test_restricted_execution_runs_only_requested_queries(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        batch = composite_batch(1)
        full = session.execute_batch(batch)
        name = batch.queries[0].name
        partial = session.execute_plans(full.result, queries=[name])
        assert set(partial.rows) == {name}
        assert partial.rows[name] == full.rows[name]

    def test_execution_failure_spares_optimize_only_companions(self, catalog):
        """A failing execution must not poison futures that never asked for rows."""
        session = OptimizerSession(catalog)  # no database: execution will fail
        queries = composite_batch(2).queries
        # A large collection delay forces both submissions into one micro-batch.
        with BatchScheduler(session, max_delay=1.0, max_batch_size=8) as scheduler:
            plain = scheduler.submit(queries[0])
            executed = scheduler.submit(queries[1], execute=True)
            outcome = plain.result(timeout=120)
            assert outcome.rows is None
            assert outcome.cost > 0
            with pytest.raises(RuntimeError, match="no database attached"):
                executed.result(timeout=120)

    def test_concurrent_threads_get_correct_independent_results(self):
        """Concurrency regression test for the shared-cache locking.

        Two threads push different batches through one warm session via the
        scheduler, repeatedly and simultaneously; every thread must receive
        exactly the rows a serial reference execution produces for *its*
        batch — no cross-talk, no partial row sets, no deadlock.
        """
        catalog = star_schema_catalog(n_dimensions=4)
        database = star_schema_database(seed=9, n_dimensions=4)
        session = OptimizerSession(catalog, database=database)
        batches = [random_star_batch(3, seed=s, n_dimensions=4) for s in (21, 22)]
        references = [
            Executor(database).execute_result(session.optimize(b).plan)
            for b in batches
        ]
        errors = []
        barrier = threading.Barrier(2)

        with BatchScheduler(session, workers=2) as scheduler:

            def worker(index):
                try:
                    barrier.wait(timeout=30)
                    for _ in range(5):
                        execution = scheduler.submit_batch(
                            batches[index], execute=True
                        ).result(timeout=120)
                        if execution.rows != references[index]:
                            errors.append(f"thread {index} got wrong rows")
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
                assert not t.is_alive(), "worker deadlocked"
        assert not errors, errors
