"""``lock-discipline`` — lock-guarded attributes accessed without the lock.

The PR 8 torn-read class: a class creates ``self._lock`` and guards its
mutable ``self._*`` state with it in most methods, but one method reads (or
writes) the same attributes bare — a concurrent reader can observe a torn
multi-field state, which is exactly how the pool's statistics aggregation
tore against a concurrent fill/eviction before ``statistics_snapshot()``.

Per class, the checker:

1. collects its **lock attributes** — any ``self.X`` assigned from a
   ``threading.Lock()``/``RLock()``/``Condition()`` construction (wrapping
   calls like ``sanitize_lock(threading.RLock(), ...)`` count), plus any
   ``self.X`` with an ``_lock``-suffixed name used in a ``with`` item (how
   a subclass uses a lock it inherited);
2. collects its **guarded attributes** — private (``self._*``) attributes
   accessed lexically inside a ``with self.<lock>:`` block in any method;
3. flags accesses to guarded attributes *outside* every such block.

Conservative escape hatches, in decreasing preference:

* take the lock (it is almost always re-entrant here);
* declare the attribute thread-safe-by-construction in a class-level
  ``_LOCK_FREE = ("_attr", ...)`` tuple (e.g. a ``queue.Queue`` that does
  its own locking) — put the why in a comment next to it;
* methods named ``*_locked`` are exempt: by this repo's convention they
  are only called with the lock already held;
* ``__init__``/``__del__`` are exempt: construction happens before the
  object is published to other threads.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from ..visitor import Checker, ModuleContext, register_checker

__all__ = ["LockDisciplineChecker"]

_LOCK_CTORS = {"Lock", "RLock", "Condition"}
_EXEMPT_METHODS = {"__init__", "__del__", "__post_init__"}


def _is_self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _constructs_lock(value: ast.expr) -> bool:
    """Whether an expression (possibly wrapped) constructs a threading lock."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name in _LOCK_CTORS:
                return True
    return False


class _ClassFacts:
    """Everything the checker learned about one class body."""

    def __init__(self, node: ast.ClassDef):
        self.node = node
        self.locks: Set[str] = set()
        self.lock_free: Set[str] = set()
        self.guarded: Set[str] = set()
        #: (method name, attr name, node, locked?) per self._* access.
        self.accesses: List[Tuple[str, str, ast.Attribute, bool]] = []


@register_checker
class LockDisciplineChecker(Checker):
    id = "lock-discipline"
    rationale = (
        "classes that create self._lock must not read/write the mutable "
        "self._* state it guards outside 'with self._lock' — the PR 8 "
        "torn-statistics-read class; allowlist intrinsically thread-safe "
        "attributes in a class-level _LOCK_FREE tuple"
    )

    def check(self, module: ModuleContext):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------- per class

    def _check_class(self, module: ModuleContext, node: ast.ClassDef):
        facts = self._gather(node)
        if not facts.locks:
            return
        for method, attr, access, locked in facts.accesses:
            if locked or attr not in facts.guarded:
                continue
            if attr in facts.lock_free:
                continue
            if method in _EXEMPT_METHODS or method.endswith("_locked"):
                continue
            yield self.finding(
                module,
                access,
                f"'self.{attr}' is guarded by a lock elsewhere in "
                f"{node.name!r} but accessed in {method!r} without holding "
                "one; wrap the access in 'with self._lock' or allowlist the "
                "attribute in _LOCK_FREE with a reason",
            )

    def _gather(self, node: ast.ClassDef) -> _ClassFacts:
        facts = _ClassFacts(node)
        # Class-level statements: _LOCK_FREE tuple.
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id == "_LOCK_FREE":
                        facts.lock_free |= _string_elements(statement.value)
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                if isinstance(target, ast.Name) and target.id == "_LOCK_FREE":
                    if statement.value is not None:
                        facts.lock_free |= _string_elements(statement.value)
        methods = [
            item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pass 1: lock attributes (assignments anywhere in the class).
        for method in methods:
            for child in ast.walk(method):
                if isinstance(child, ast.Assign) and _constructs_lock(child.value):
                    for target in child.targets:
                        attr = _is_self_attr(target)
                        if attr is not None:
                            facts.locks.add(attr)
                elif isinstance(child, (ast.With, ast.AsyncWith)):
                    for item in child.items:
                        attr = _is_self_attr(item.context_expr)
                        if attr is not None and attr.endswith("_lock"):
                            facts.locks.add(attr)
        if not facts.locks:
            return facts
        # Pass 2: accesses, annotated with lexical lock context.
        for method in methods:
            self._walk_method(method, facts)
        for _, attr, _, locked in facts.accesses:
            if locked:
                facts.guarded.add(attr)
        return facts

    def _walk_method(self, method, facts: _ClassFacts) -> None:
        name = method.name

        def walk(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                takes_lock = any(
                    (_is_self_attr(item.context_expr) or "") in facts.locks
                    for item in node.items
                )
                inner = locked or takes_lock
                for item in node.items:
                    walk(item.context_expr, locked)
                    if item.optional_vars is not None:
                        walk(item.optional_vars, locked)
                for child in node.body:
                    walk(child, inner)
                return
            attr = _is_self_attr(node)
            if (
                attr is not None
                and attr.startswith("_")
                and attr not in facts.locks
                and attr != "_LOCK_FREE"
            ):
                facts.accesses.append((name, attr, node, locked))
            for child in ast.iter_child_nodes(node):
                walk(child, locked)

        for statement in method.body:
            walk(statement, False)


def _string_elements(value: ast.expr) -> Set[str]:
    out: Set[str] = set()
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
    return out
