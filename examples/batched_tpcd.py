#!/usr/bin/env python3
"""Experiment-1 style batched TPCD optimization (the paper's Figure 4 workload).

Optimizes the composite batch BQ2 (TPCD Q3 and Q5, each repeated twice with
different selection constants) over the 1GB TPC-D statistics, comparing
plain Volcano, the Greedy algorithm of Roy et al., and the paper's
MarginalGreedy.  Prints the estimated consolidated-plan costs, the chosen
materializations and the resulting shared plan of one query.

Run with::

    python examples/batched_tpcd.py [--batch N] [--scale SF]
"""

import argparse

from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.workloads.batches import composite_batch


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=2, help="composite batch index (1..6)")
    parser.add_argument("--scale", type=float, default=1.0, help="TPC-D scale factor")
    args = parser.parse_args()

    catalog = tpcd_catalog(args.scale)
    batch = composite_batch(args.batch)
    optimizer = MultiQueryOptimizer(catalog)

    dag = optimizer.build_dag(batch)
    print(f"Combined DAG for {batch.name}: {dag.summary()}")
    print()

    results = {}
    for strategy in ("volcano", "greedy", "marginal-greedy"):
        engine = optimizer.make_engine(dag)
        results[strategy] = optimizer.optimize_with(
            dag, engine, batch_name=batch.name, strategy=strategy
        )
        print(f"--- {strategy}")
        print(results[strategy].summary())
        print()

    # Show how the first query's plan changes once sharing is in place.
    first_query = batch.queries[0].name
    print(f"Plan of {first_query} under MarginalGreedy's materializations:")
    print(results["marginal-greedy"].plan.query_plans[first_query].pretty())


if __name__ == "__main__":
    main()
