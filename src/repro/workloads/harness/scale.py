"""Scale-factor control: parameterized databases + catalogs for the harness.

A :class:`ScaleSpec` fixes the *shape* of the data — base row counts, key
fanouts, value skew — and one ``scale`` multiplier sizes it, so a harness
run is reproducible byte-for-byte from ``(seed, spec)`` alone.
:func:`build_world` turns a spec into a :class:`HarnessWorld`: the catalog
the optimizer plans against, the :class:`~repro.execution.data.Database`
the executors run on, and — when the workload contains the star tables —
a drift handle built on the existing
:func:`~repro.workloads.synthetic.drifting_star_database` machinery, so a
mid-run :meth:`~HarnessWorld.inject_drift` mutates the *same* database
instance (bumping its version, invalidating serving caches) exactly the
way the adaptive subsystem's tests and benchmarks do.

Three workloads:

* ``star``  — the selective star-join schema (``fact`` + ``dim0..n``),
* ``tpcd``  — the referentially consistent tiny TPC-D database,
* ``mixed`` — both table families in **one** database and catalog (the
  names never collide), so one pool serves heterogeneous traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Tuple

from ...catalog.catalog import Catalog
from ...catalog.tpcd import tpcd_catalog
from ...execution.data import Database, tiny_tpcd_database
from ..synthetic import drifting_star_database, star_schema_catalog

__all__ = ["ScaleSpec", "HarnessWorld", "WORKLOADS", "build_world", "merge_catalogs"]

#: The workload families the harness can generate.
WORKLOADS: Tuple[str, ...] = ("star", "tpcd", "mixed")


@dataclass(frozen=True)
class ScaleSpec:
    """Sizing of the harness databases; ``scale`` multiplies the base counts.

    The base sizes (scale 1.0) match the repository's differential-test
    defaults, so ``ScaleSpec()`` produces the data shape every executor
    backend is already proven bit-identical on — the harness then only has
    to turn the multiplier up.
    """

    scale: float = 1.0
    #: Star schema: dimensions, base fact/dimension rows, key fanout, skew.
    n_dimensions: int = 4
    star_fact_rows: int = 300
    star_dimension_rows: int = 40
    key_fanout: int = 4
    value_skew: float = 0.0
    #: Drift shape (see :func:`~repro.workloads.synthetic.drifting_star_database`).
    drift_factor: float = 1.0
    hot_fraction: float = 0.2
    #: TPC-D: base entity counts for :func:`~repro.execution.data.tiny_tpcd_database`.
    tpcd_orders: int = 120
    tpcd_customers: int = 40
    tpcd_parts: int = 30
    tpcd_suppliers: int = 10

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.n_dimensions < 1:
            raise ValueError("n_dimensions must be positive")

    def _scaled(self, base: int) -> int:
        return max(4, int(round(base * self.scale)))

    @property
    def fact_rows(self) -> int:
        return self._scaled(self.star_fact_rows)

    @property
    def dimension_rows(self) -> int:
        # Dimensions grow sublinearly, like TPC-H's fixed-size lookup
        # tables: scaling facts 4x without re-keying every dimension keeps
        # the fact:dimension ratio drifting the way real stars do.
        return max(4, int(round(self.star_dimension_rows * self.scale ** 0.5)))

    @property
    def orders(self) -> int:
        return self._scaled(self.tpcd_orders)

    @property
    def customers(self) -> int:
        return self._scaled(self.tpcd_customers)

    @property
    def parts(self) -> int:
        return self._scaled(self.tpcd_parts)

    @property
    def suppliers(self) -> int:
        return self._scaled(self.tpcd_suppliers)

    def at_scale(self, scale: float) -> "ScaleSpec":
        """The same shape at a different multiplier."""
        return replace(self, scale=scale)


@dataclass
class HarnessWorld:
    """One harness setting's planning and execution state.

    Attributes:
        workload: ``star``, ``tpcd`` or ``mixed``.
        spec: the :class:`ScaleSpec` the data was generated from.
        seed: the data seed (independent of the traffic seed).
        catalog: what the optimizer plans against — statistics sized to the
            *initial* data, which is exactly what makes injected drift
            visible to the adaptive estimator as an estimate/observation gap.
        database: the one mutable database every shard executes on.
        drift_steps_applied: how many drift injections have happened.
    """

    workload: str
    spec: ScaleSpec
    seed: int
    catalog: Catalog
    database: Database
    drift_steps_applied: int = 0
    _drift: Optional[Iterator[Database]] = field(default=None, repr=False)

    @property
    def supports_drift(self) -> bool:
        return self._drift is not None

    def inject_drift(self) -> None:
        """Advance the drifting generator: redraw the fact table in place.

        The database version bumps (``replace_table``), so every shard's
        materialization cache and the shared feedback store see a real
        data change — a drifted run that kept serving stale cached rows
        would fail its correctness oracle, which replays against the same
        database *after* the step.
        """
        if self._drift is None:
            raise RuntimeError(
                f"workload {self.workload!r} has no star tables to drift; "
                "use the star or mixed workload for --drift-at runs"
            )
        next(self._drift)
        self.drift_steps_applied += 1


def merge_catalogs(*catalogs: Catalog) -> Catalog:
    """One catalog holding every table of the inputs (names must not collide)."""
    merged = Catalog()
    for catalog in catalogs:
        for name in catalog.tables:
            merged.add_table(
                catalog.tables[name],
                catalog.statistics[name],
                catalog.table_indexes(name),
            )
    return merged


def build_world(
    spec: ScaleSpec,
    workload: str = "star",
    *,
    seed: int = 0,
    max_drift_steps: int = 0,
) -> HarnessWorld:
    """Generate the catalog + database (+ drift handle) for one setting.

    ``max_drift_steps`` pre-sizes the drifting generator; calling
    :meth:`HarnessWorld.inject_drift` more often than that raises
    ``StopIteration`` — the run controller derives it from its drift
    schedule, so a CLI run can never outrun its generator.
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; expected one of {WORKLOADS}")

    star_catalog = star_schema_catalog(
        n_dimensions=spec.n_dimensions,
        fact_rows=spec.fact_rows,
        dimension_rows=spec.dimension_rows,
        key_fanout=spec.key_fanout,
    )

    drift: Optional[Iterator[Database]] = None
    if workload in ("star", "mixed"):
        drift = drifting_star_database(
            passes=max_drift_steps + 1,
            seed=seed,
            n_dimensions=spec.n_dimensions,
            fact_rows=spec.fact_rows,
            dimension_rows=spec.dimension_rows,
            key_fanout=spec.key_fanout,
            value_skew=spec.value_skew,
            drift_factor=spec.drift_factor,
            hot_fraction=spec.hot_fraction,
        )
        database = next(drift)
        if max_drift_steps == 0:
            drift = None  # exhausted: pass 0 was the only one
        catalog = star_catalog
        if workload == "mixed":
            tpcd = _tpcd_database(spec, seed)
            for name, rows in tpcd.tables.items():
                database.add_table(name, rows)
            catalog = merge_catalogs(star_catalog, tpcd_catalog(1.0))
    else:
        database = _tpcd_database(spec, seed)
        catalog = tpcd_catalog(1.0)

    return HarnessWorld(
        workload=workload,
        spec=spec,
        seed=seed,
        catalog=catalog,
        database=database,
        _drift=drift,
    )


def _tpcd_database(spec: ScaleSpec, seed: int) -> Database:
    return tiny_tpcd_database(
        seed=seed,
        customers=spec.customers,
        suppliers=spec.suppliers,
        parts=spec.parts,
        orders=spec.orders,
    )
