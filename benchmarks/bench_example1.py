"""Benchmark regenerating Figure 1 / Example 1 (the introductory example)."""

import pytest

from repro.experiments.example1 import run_example1


@pytest.mark.benchmark(group="figure-1")
def test_figure_1_example(benchmark):
    """Figure 1: sharing B⋈C between A⋈B⋈C and B⋈C⋈D beats the local optima."""
    outcome = benchmark.pedantic(run_example1, rounds=1, iterations=1)
    print()
    print(outcome.table().to_text())
    assert outcome.sharing_wins, "the consolidated plan must beat the locally optimal plans"
    assert outcome.shares_b_join_c, "the shared node must be the B ⋈ C subexpression"
