"""The lint engine: suppressions, reports, JSON round-trip, CLI contract."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Finding, LintReport, lint_paths, lint_source
from repro.analysis.lint import render_json, render_text, report_from_json
from repro.analysis.lint.suppressions import MISSING_REASON_ID

SRC = Path(__file__).resolve().parents[2] / "src"

FLAGGED = "def f(masks=None):\n    return masks or {}\n"


# ------------------------------------------------------------- suppressions


def test_trailing_suppression_with_reason_is_honored():
    findings, suppressed = lint_source(
        "def f(masks=None):\n"
        "    return masks or {}  # repro-lint: disable=falsy-default -- callers never pass empties here\n"
    )
    assert findings == []
    assert len(suppressed) == 1
    assert suppressed[0].suppressed is True
    assert suppressed[0].reason == "callers never pass empties here"


def test_standalone_suppression_covers_next_code_line():
    findings, suppressed = lint_source(
        "def f(masks=None):\n"
        "    # repro-lint: disable=falsy-default -- callers never pass empties here\n"
        "    return masks or {}\n"
    )
    assert findings == []
    assert len(suppressed) == 1


def test_suppression_without_reason_is_rejected_and_reported():
    findings, suppressed = lint_source(
        "def f(masks=None):\n"
        "    return masks or {}  # repro-lint: disable=falsy-default\n"
    )
    # The original finding survives AND the malformed comment is flagged.
    assert {f.checker for f in findings} == {"falsy-default", MISSING_REASON_ID}
    assert suppressed == []


def test_suppression_for_other_checker_does_not_cover():
    findings, suppressed = lint_source(
        "def f(masks=None):\n"
        "    return masks or {}  # repro-lint: disable=bare-except-swallow -- wrong id\n"
    )
    assert [f.checker for f in findings] == ["falsy-default"]
    assert suppressed == []


def test_suppression_with_multiple_ids_and_all():
    findings, suppressed = lint_source(
        "def f(masks=None):\n"
        "    return masks or {}  # repro-lint: disable=falsy-default,stats-snapshot -- both\n"
    )
    assert findings == []
    findings, suppressed = lint_source(
        "def f(masks=None):\n"
        "    return masks or {}  # repro-lint: disable=all -- blanket, still needs a reason\n"
    )
    assert findings == []
    assert len(suppressed) == 1


# ------------------------------------------------------------------ reports


def test_json_report_round_trips():
    findings, suppressed = lint_source(FLAGGED, path="x.py")
    report = LintReport(findings=findings, suppressed=suppressed, files=1)
    rebuilt = report_from_json(render_json(report))
    assert rebuilt.findings == report.findings
    assert rebuilt.suppressed == report.suppressed
    assert rebuilt.files == 1
    assert rebuilt.ok == report.ok is False


def test_json_report_shape_is_stable():
    findings, _ = lint_source(FLAGGED, path="x.py")
    payload = json.loads(render_json(LintReport(findings=findings, files=1)))
    assert payload["format"] == 1
    assert payload["summary"]["findings"] == 1
    entry = payload["findings"][0]
    assert {"path", "line", "col", "checker", "message"} <= set(entry)


def test_text_report_lines_are_clickable_locations():
    findings, _ = lint_source(FLAGGED, path="x.py")
    text = render_text(LintReport(findings=findings, files=1))
    assert "x.py:2:" in text
    assert "[falsy-default]" in text


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text(FLAGGED)
    (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
    report = lint_paths([tmp_path])
    assert report.files == 2
    assert len(report.findings) == 1
    assert not report.ok


def test_unparsable_file_becomes_parse_error_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    report = lint_paths([tmp_path])
    assert [f.checker for f in report.findings] == ["parse-error"]
    assert not report.ok


def test_unknown_checker_id_raises():
    with pytest.raises(ValueError, match="unknown checker"):
        lint_source(FLAGGED, select=["no-such-checker"])


# ---------------------------------------------------------------------- CLI


def _run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


def test_cli_exits_nonzero_on_findings(tmp_path):
    (tmp_path / "bad.py").write_text(FLAGGED)
    proc = _run_cli(str(tmp_path))
    assert proc.returncode == 1
    assert "[falsy-default]" in proc.stdout


def test_cli_exits_zero_when_clean_and_writes_artifact(tmp_path):
    (tmp_path / "good.py").write_text("x = 1\n")
    artifact = tmp_path / "report.json"
    proc = _run_cli(str(tmp_path / "good.py"), "--output", str(artifact))
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(artifact.read_text())
    assert payload["summary"]["findings"] == 0


def test_cli_json_format(tmp_path):
    (tmp_path / "bad.py").write_text(FLAGGED)
    proc = _run_cli(str(tmp_path), "--format", "json")
    payload = json.loads(proc.stdout)
    assert payload["summary"]["findings"] == 1


def test_cli_select_runs_only_named_checkers(tmp_path):
    (tmp_path / "bad.py").write_text(FLAGGED)
    proc = _run_cli(str(tmp_path), "--select", "bare-except-swallow")
    assert proc.returncode == 0


def test_cli_usage_errors_exit_two(tmp_path):
    assert _run_cli(str(tmp_path / "absent.py")).returncode == 2
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert _run_cli(str(tmp_path), "--select", "bogus").returncode == 2


def test_cli_list_checkers():
    proc = _run_cli("--list-checkers")
    assert proc.returncode == 0
    for checker_id in (
        "falsy-default",
        "lock-discipline",
        "stats-snapshot",
        "bare-except-swallow",
    ):
        assert checker_id in proc.stdout


def test_cli_main_in_process(tmp_path, capsys):
    """main() called directly (what the subprocess tests can't cover)."""
    from repro.analysis.__main__ import main

    (tmp_path / "bad.py").write_text(FLAGGED)
    artifact = tmp_path / "report.json"
    assert main([str(tmp_path), "--output", str(artifact)]) == 1
    assert "[falsy-default]" in capsys.readouterr().out
    assert json.loads(artifact.read_text())["summary"]["findings"] == 1

    assert main([str(tmp_path), "--format", "json"]) == 1
    assert json.loads(capsys.readouterr().out)["summary"]["findings"] == 1

    assert main([str(tmp_path), "--select", "bare-except-swallow"]) == 0
    assert main(["--list-checkers"]) == 0
    assert "lock-discipline" in capsys.readouterr().out

    (tmp_path / "bad.py").write_text(
        "def f(masks=None):\n"
        "    return masks or {}  # repro-lint: disable=falsy-default -- fixture\n"
    )
    assert main([str(tmp_path), "--show-suppressed"]) == 0
    assert "suppressed (fixture)" in capsys.readouterr().out

    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "absent.py")])
    assert excinfo.value.code == 2


def test_repo_src_is_lint_clean():
    """The gate CI enforces: the tree itself carries zero findings."""
    report = lint_paths([SRC])
    assert report.findings == [], [
        f.location() + " " + f.message for f in report.findings
    ]
    # Every suppression that exists carries a written reason.
    for finding in report.suppressed:
        assert finding.reason
