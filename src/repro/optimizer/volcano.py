"""Plan extraction over the combined DAG: the Volcano optimizer and ``bestCost``.

Given the memo built by :mod:`repro.dag`, this module computes, for any set
``S`` of materialized equivalence nodes,

* ``bestUseCost(Q, S)`` — the cheapest consolidated plan for every query of
  the batch when the results of ``S`` are available on disk (each consumer
  independently chooses between re-reading the materialized result and
  recomputing the expression), and
* ``bestCost(Q, S) = bestUseCost(Q, S) + Σ_{s∈S} (compute(s | S) + write(s))``
  — adding the cost of producing and materializing every node of ``S``
  (those plans may themselves exploit the other materialized nodes).

``bestCost(Q, ∅)`` is exactly the plain-Volcano, no-sharing baseline.

The plan DP is a classical Volcano physical optimization over
``(group, required sort order)`` states: every logical multi-expression is
implemented by the operators of the paper's rule set (relation scan, indexed
selection, merge join, block/index nested-loop join, external sort and
sort-based aggregation), and a sort enforcer bridges order mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..algebra.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Predicate,
    conjuncts,
    conjunction,
)
from ..algebra.properties import ANY_ORDER, SortOrder
from ..cost.cardinality import CatalogResolver, SelectivityEstimator
from ..cost.model import CostModel
from ..dag.memo import (
    AggregateMExpr,
    Group,
    JoinMExpr,
    MExpr,
    ScanMExpr,
    SelectMExpr,
)
from ..dag.sharing import BatchDag, MaterializationChoice
from .plan import PhysicalOp, PhysicalPlan

__all__ = ["BestCostResult", "VolcanoOptimizer", "PlanCache", "normalize_materialized"]

#: The per-evaluation DP table: (group id, required order) -> best plan.
PlanCache = Dict[Tuple[int, SortOrder], PhysicalPlan]

#: A materialization candidate as accepted by the public API: either a bare
#: group id (stored unsorted) or an explicit :class:`MaterializationChoice`.
Candidate = "int | MaterializationChoice"


def normalize_materialized(materialized: Iterable) -> Dict[int, Tuple[SortOrder, ...]]:
    """Normalize a mixed set of candidates to ``{group id: stored orders}``."""
    stored: Dict[int, List[SortOrder]] = {}
    for element in materialized:
        if isinstance(element, MaterializationChoice):
            gid, order = element.group, element.order
        else:
            gid, order = int(element), SortOrder()
        orders = stored.setdefault(gid, [])
        if order not in orders:
            orders.append(order)
    return {gid: tuple(orders) for gid, orders in stored.items()}


@dataclass(frozen=True)
class BestCostResult:
    """The outcome of one ``bestCost(Q, S)`` evaluation."""

    materialized: FrozenSet
    query_plans: Mapping[str, PhysicalPlan]
    materialization_plans: Mapping[int, PhysicalPlan]
    use_cost: float
    overhead_cost: float

    @property
    def total_cost(self) -> float:
        """``bestCost``: use cost plus the cost of computing and writing ``S``."""
        return self.use_cost + self.overhead_cost

    def query_cost(self, name: str) -> float:
        return self.query_plans[name].cost


class VolcanoOptimizer:
    """The plan-extraction DP over a :class:`~repro.dag.sharing.BatchDag`."""

    def __init__(self, dag: BatchDag, cost_model: Optional[CostModel] = None):
        self.dag = dag
        self.memo = dag.memo
        self.catalog = dag.catalog
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._selectivity_cache: Dict[Tuple[str, Predicate], float] = {}

    # ------------------------------------------------------------------ API

    def best_cost(
        self,
        materialized: Iterable = (),
        cache: Optional[PlanCache] = None,
    ) -> BestCostResult:
        """Evaluate ``bestCost(Q, S)`` for the batch with materialized set ``S``.

        ``materialized`` may mix bare group ids (stored unsorted) and
        :class:`MaterializationChoice` objects (stored with a sort order).
        """
        original = frozenset(materialized)
        stored = normalize_materialized(original)
        plan_cache: PlanCache = cache if cache is not None else {}
        query_plans: Dict[str, PhysicalPlan] = {}
        use_cost = 0.0
        for name, root in self.dag.query_roots.items():
            plan = self._optimize(root, ANY_ORDER, stored, plan_cache)
            query_plans[name] = plan
            use_cost += plan.cost
        overhead = 0.0
        materialization_plans: Dict[int, PhysicalPlan] = {}
        for gid in sorted(stored):
            group = self.memo.get(gid)
            for stored_order in stored[gid]:
                compute = self._enforce(
                    self._compute_without_reuse(gid, stored, plan_cache), stored_order
                )
                write = self.cost_model.materialize(group.rows, group.row_width)
                materialization_plans[gid] = PhysicalPlan(
                    op=PhysicalOp.MATERIALIZE,
                    group=gid,
                    cost=compute.cost + write,
                    local_cost=write,
                    rows=group.rows,
                    width=group.row_width,
                    order=stored_order,
                    children=(compute,),
                )
                overhead += compute.cost + write
        return BestCostResult(
            materialized=original,
            query_plans=query_plans,
            materialization_plans=materialization_plans,
            use_cost=use_cost,
            overhead_cost=overhead,
        )

    def optimize_group(
        self, group_id: int, materialized: Iterable = (), order: SortOrder = ANY_ORDER
    ) -> PhysicalPlan:
        """Best plan for one equivalence node (public, mostly for tests/examples)."""
        return self._optimize(group_id, order, normalize_materialized(materialized), {})

    def optimize_query(self, name: str, materialized: Iterable = ()) -> PhysicalPlan:
        return self.optimize_group(self.dag.query_roots[name], materialized)

    # --------------------------------------------------------------- plan DP

    def _optimize(
        self,
        group_id: int,
        order: SortOrder,
        mat: Mapping[int, Tuple[SortOrder, ...]],
        cache: PlanCache,
    ) -> PhysicalPlan:
        key = (group_id, order)
        cached = cache.get(key)
        if cached is not None:
            return cached
        group = self.memo.get(group_id)
        candidates: List[PhysicalPlan] = []
        for stored_order in mat.get(group_id, ()):
            read_cost = self.cost_model.read_materialized(group.rows, group.row_width)
            reuse = PhysicalPlan(
                op=PhysicalOp.READ_MATERIALIZED,
                group=group_id,
                cost=read_cost,
                local_cost=read_cost,
                rows=group.rows,
                width=group.row_width,
                order=stored_order,
            )
            candidates.append(self._enforce(reuse, order))
        for mexpr in self.dag.iter_mexprs(group_id):
            candidates.extend(self._implement(mexpr, group, order, mat, cache))
        if not candidates:
            raise RuntimeError(f"group G{group_id} has no implementable alternative")
        best = min(candidates, key=lambda p: p.cost)
        cache[key] = best
        return best

    def _compute_without_reuse(
        self, group_id: int, mat: Mapping[int, Tuple[SortOrder, ...]], cache: PlanCache
    ) -> PhysicalPlan:
        """Best plan to *compute* a materialized node (it may not read itself)."""
        group = self.memo.get(group_id)
        candidates: List[PhysicalPlan] = []
        for mexpr in self.dag.iter_mexprs(group_id):
            candidates.extend(self._implement(mexpr, group, ANY_ORDER, mat, cache))
        if not candidates:
            raise RuntimeError(f"group G{group_id} has no implementable alternative")
        return min(candidates, key=lambda p: p.cost)

    # ----------------------------------------------------------- enforcement

    def _enforce(self, plan: PhysicalPlan, order: SortOrder) -> PhysicalPlan:
        if plan.order.satisfies(order):
            return plan
        local = self.cost_model.sort(plan.rows, plan.width)
        return PhysicalPlan(
            op=PhysicalOp.SORT,
            group=plan.group,
            cost=plan.cost + local,
            local_cost=local,
            rows=plan.rows,
            width=plan.width,
            order=order,
            children=(plan,),
        )

    # -------------------------------------------------------- implementations

    def _implement(
        self,
        mexpr: MExpr,
        group: Group,
        order: SortOrder,
        mat: Mapping[int, Tuple[SortOrder, ...]],
        cache: PlanCache,
    ) -> List[PhysicalPlan]:
        if isinstance(mexpr, ScanMExpr):
            return self._implement_scan(mexpr, group, order)
        if isinstance(mexpr, SelectMExpr):
            return self._implement_select(mexpr, group, order, mat, cache)
        if isinstance(mexpr, JoinMExpr):
            return self._implement_join(mexpr, group, order, mat, cache)
        if isinstance(mexpr, AggregateMExpr):
            return self._implement_aggregate(mexpr, group, order, mat, cache)
        raise TypeError(f"unknown multi-expression type: {type(mexpr).__name__}")

    def _implement_scan(
        self, mexpr: ScanMExpr, group: Group, order: SortOrder
    ) -> List[PhysicalPlan]:
        local = self.cost_model.table_scan(group.rows, group.row_width)
        clustered = self.catalog.clustered_index(mexpr.table)
        scan_order = SortOrder()
        if clustered is not None:
            scan_order = SortOrder(
                tuple(ColumnRef(c, mexpr.alias) for c in clustered.columns)
            )
        plan = PhysicalPlan(
            op=PhysicalOp.TABLE_SCAN,
            group=group.id,
            cost=local,
            local_cost=local,
            rows=group.rows,
            width=group.row_width,
            order=scan_order,
            table=mexpr.table,
            alias=mexpr.alias,
        )
        return [self._enforce(plan, order)]

    def _implement_select(
        self,
        mexpr: SelectMExpr,
        group: Group,
        order: SortOrder,
        mat: Mapping[int, Tuple[SortOrder, ...]],
        cache: PlanCache,
    ) -> List[PhysicalPlan]:
        child_group = self.memo.get(mexpr.child)
        candidates: List[PhysicalPlan] = []

        def filter_over(child_plan: PhysicalPlan) -> PhysicalPlan:
            local = self.cost_model.filter(child_group.rows, child_group.row_width)
            return PhysicalPlan(
                op=PhysicalOp.FILTER,
                group=group.id,
                cost=child_plan.cost + local,
                local_cost=local,
                rows=group.rows,
                width=group.row_width,
                order=child_plan.order,
                children=(child_plan,),
                predicate=mexpr.predicate,
            )

        child_any = self._optimize(mexpr.child, ANY_ORDER, mat, cache)
        candidates.append(self._enforce(filter_over(child_any), order))
        if order:
            child_ordered = self._optimize(mexpr.child, order, mat, cache)
            candidates.append(self._enforce(filter_over(child_ordered), order))

        indexed = self._indexed_selection(mexpr, child_group, group)
        if indexed is not None:
            candidates.append(self._enforce(indexed, order))
        return candidates

    def _indexed_selection(
        self, mexpr: SelectMExpr, child_group: Group, group: Group
    ) -> Optional[PhysicalPlan]:
        """Clustered-index selection directly on a base relation, if applicable."""
        if not child_group.is_relation:
            return None
        table = child_group.signature.table
        alias = child_group.signature.alias
        clustered = self.catalog.clustered_index(table)
        if clustered is None:
            return None
        leading = clustered.leading_column
        index_conjuncts = [
            p
            for p in conjuncts(mexpr.predicate)
            if isinstance(p, Comparison)
            and not isinstance(p.right, ColumnRef)
            and p.left.name == leading
        ]
        if not index_conjuncts:
            return None
        selectivity = self._table_selectivity(table, alias, conjunction(index_conjuncts))
        stats = self.catalog.table_statistics(table)
        local = self.cost_model.indexed_selection(
            stats.row_count, child_group.row_width, selectivity
        )
        index_order = SortOrder(tuple(ColumnRef(c, alias) for c in clustered.columns))
        return PhysicalPlan(
            op=PhysicalOp.INDEX_SCAN,
            group=group.id,
            cost=local,
            local_cost=local,
            rows=group.rows,
            width=group.row_width,
            order=index_order,
            table=table,
            alias=alias,
            predicate=mexpr.predicate,
        )

    def _table_selectivity(self, table: str, alias: str, predicate: Predicate) -> float:
        key = (table, predicate)
        cached = self._selectivity_cache.get(key)
        if cached is not None:
            return cached
        estimator = SelectivityEstimator(CatalogResolver(self.catalog, {alias: table}))
        value = estimator.selectivity(predicate)
        self._selectivity_cache[key] = value
        return value

    def _implement_join(
        self,
        mexpr: JoinMExpr,
        group: Group,
        order: SortOrder,
        mat: Mapping[int, Tuple[SortOrder, ...]],
        cache: PlanCache,
    ) -> List[PhysicalPlan]:
        left_group = self.memo.get(mexpr.left)
        right_group = self.memo.get(mexpr.right)
        candidates: List[PhysicalPlan] = []
        left_keys, right_keys = self._equijoin_keys(mexpr)

        # Merge join (requires both inputs sorted on the join keys).
        if left_keys:
            left_order = SortOrder(tuple(left_keys))
            right_order = SortOrder(tuple(right_keys))
            left_plan = self._optimize(mexpr.left, left_order, mat, cache)
            right_plan = self._optimize(mexpr.right, right_order, mat, cache)
            local = self.cost_model.merge_join(
                left_group.rows,
                left_group.row_width,
                right_group.rows,
                right_group.row_width,
                group.rows,
            )
            plan = PhysicalPlan(
                op=PhysicalOp.MERGE_JOIN,
                group=group.id,
                cost=left_plan.cost + right_plan.cost + local,
                local_cost=local,
                rows=group.rows,
                width=group.row_width,
                order=left_order,
                children=(left_plan, right_plan),
                predicate=mexpr.predicate,
            )
            candidates.append(self._enforce(plan, order))

        # Block nested-loop join, both operand orders.
        left_any = self._optimize(mexpr.left, ANY_ORDER, mat, cache)
        right_any = self._optimize(mexpr.right, ANY_ORDER, mat, cache)
        for outer_plan, inner_plan, outer_group, inner_group in (
            (left_any, right_any, left_group, right_group),
            (right_any, left_any, right_group, left_group),
        ):
            local = self.cost_model.nested_loop_join(
                outer_group.rows,
                outer_group.row_width,
                inner_group.rows,
                inner_group.row_width,
                inner_is_stored=inner_group.is_relation,
            )
            plan = PhysicalPlan(
                op=PhysicalOp.NESTED_LOOP_JOIN,
                group=group.id,
                cost=outer_plan.cost + inner_plan.cost + local,
                local_cost=local,
                rows=group.rows,
                width=group.row_width,
                order=outer_plan.order,
                children=(outer_plan, inner_plan),
                predicate=mexpr.predicate,
            )
            candidates.append(self._enforce(plan, order))

        # Index nested-loop join: probe a clustered index on a base-relation inner.
        if left_keys:
            sides = (
                (left_any, left_group, right_group, mexpr.right, right_keys),
                (right_any, right_group, left_group, mexpr.left, left_keys),
            )
            for outer_plan, outer_group, inner_group, inner_id, inner_keys in sides:
                plan = self._index_nl_join(
                    mexpr, group, outer_plan, outer_group, inner_group, inner_keys
                )
                if plan is not None:
                    candidates.append(self._enforce(plan, order))
        return candidates

    def _index_nl_join(
        self,
        mexpr: JoinMExpr,
        group: Group,
        outer_plan: PhysicalPlan,
        outer_group: Group,
        inner_group: Group,
        inner_keys: List[ColumnRef],
    ) -> Optional[PhysicalPlan]:
        if not inner_group.is_relation or not inner_keys:
            return None
        table = inner_group.signature.table
        clustered = self.catalog.clustered_index(table)
        if clustered is None:
            return None
        if clustered.leading_column not in {k.name for k in inner_keys}:
            return None
        stats = self.catalog.table_statistics(table)
        distinct = stats.distinct(clustered.leading_column)
        local = self.cost_model.index_nested_loop_join(
            outer_group.rows, stats.row_count, inner_group.row_width, distinct
        )
        return PhysicalPlan(
            op=PhysicalOp.INDEX_NL_JOIN,
            group=group.id,
            cost=outer_plan.cost + local,
            local_cost=local,
            rows=group.rows,
            width=group.row_width,
            order=outer_plan.order,
            children=(outer_plan,),
            predicate=mexpr.predicate,
            table=table,
            alias=inner_group.signature.alias,
        )

    def _equijoin_keys(
        self, mexpr: JoinMExpr
    ) -> Tuple[List[ColumnRef], List[ColumnRef]]:
        """Split the equi-join columns of a join predicate between its operands."""
        left_keys: List[ColumnRef] = []
        right_keys: List[ColumnRef] = []
        if mexpr.predicate is None:
            return left_keys, right_keys
        for predicate in conjuncts(mexpr.predicate):
            if not isinstance(predicate, Comparison) or predicate.op is not ComparisonOp.EQ:
                continue
            if not isinstance(predicate.right, ColumnRef):
                continue
            a, b = predicate.left, predicate.right
            if a.qualifier in mexpr.left_aliases and b.qualifier in mexpr.right_aliases:
                left_keys.append(a)
                right_keys.append(b)
            elif a.qualifier in mexpr.right_aliases and b.qualifier in mexpr.left_aliases:
                left_keys.append(b)
                right_keys.append(a)
        return left_keys, right_keys

    def _implement_aggregate(
        self,
        mexpr: AggregateMExpr,
        group: Group,
        order: SortOrder,
        mat: Mapping[int, Tuple[SortOrder, ...]],
        cache: PlanCache,
    ) -> List[PhysicalPlan]:
        child_group = self.memo.get(mexpr.child)
        if not mexpr.group_by:
            child_any = self._optimize(mexpr.child, ANY_ORDER, mat, cache)
            local = self.cost_model.scalar_aggregate(child_group.rows, child_group.row_width)
            plan = PhysicalPlan(
                op=PhysicalOp.SCALAR_AGGREGATE,
                group=group.id,
                cost=child_any.cost + local,
                local_cost=local,
                rows=1.0,
                width=group.row_width,
                order=SortOrder(),
                children=(child_any,),
                aggregates=mexpr.aggregates,
            )
            return [self._enforce(plan, order)]
        group_order = SortOrder(tuple(mexpr.group_by))
        child_sorted = self._optimize(mexpr.child, group_order, mat, cache)
        local = self.cost_model.sort_aggregate(child_group.rows, child_group.row_width)
        plan = PhysicalPlan(
            op=PhysicalOp.SORT_AGGREGATE,
            group=group.id,
            cost=child_sorted.cost + local,
            local_cost=local,
            rows=group.rows,
            width=group.row_width,
            order=group_order,
            children=(child_sorted,),
            group_by=mexpr.group_by,
            aggregates=mexpr.aggregates,
        )
        return [self._enforce(plan, order)]
