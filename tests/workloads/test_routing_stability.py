"""Property tests: fingerprint routing is stable over template traffic.

The pool routes by ``stable_shard_hash(canonical_key(query_signature(q)))``
— a pure function of the query's *semantics*.  The harness relies on three
properties of that composition, fuzzed here over many template
instantiations with fixed seeds:

* same (template, params) → the same signature, canonical key, and shard,
  regardless of the query's *name* (resubmitted traffic must land on the
  warm shard);
* different params → different signatures (the router cannot collapse
  distinct answers onto one cache line); and
* a template's instantiations spread over shards rather than pinning one
  shard (signature routing balances template-heavy traffic).
"""

import random
from collections import Counter

import pytest

from repro.dag.build import query_signature
from repro.dag.fingerprint import canonical_key
from repro.service.pool import SessionPool, stable_shard_hash
from repro.workloads.harness import ScaleSpec, build_world, star_templates, tpcd_templates
from repro.workloads.harness.traffic import templates_for


@pytest.fixture(scope="module")
def star_world():
    return build_world(ScaleSpec(), "star", seed=0)


@pytest.fixture(scope="module")
def mixed_world():
    return build_world(ScaleSpec(), "mixed", seed=0)


def test_same_params_same_signature_any_name(star_world):
    rng = random.Random(42)
    for template in star_templates(6, seed=1):
        for _ in range(10):
            query, params = template.instantiate(rng)
            replay = template.with_params(params)
            renamed = template.build("totally-different-name", params)
            sig = query_signature(query, star_world.catalog)
            assert sig == query_signature(replay, star_world.catalog)
            assert sig == query_signature(renamed, star_world.catalog)
            assert canonical_key(sig) == canonical_key(
                query_signature(renamed, star_world.catalog)
            )


def test_same_params_same_shard_across_pool_sizes(star_world):
    rng = random.Random(7)
    for shards in (2, 4, 7):
        pool = SessionPool(star_world.catalog, shards=shards)
        for template in star_templates(4, seed=3):
            query, params = template.instantiate(rng)
            assert pool.route(query) == pool.route(template.with_params(params))


def test_distinct_params_distinct_signatures(star_world):
    rng = random.Random(11)
    for template in star_templates(5, seed=5):
        seen = {}
        for _ in range(25):
            query, params = template.instantiate(rng)
            key = canonical_key(query_signature(query, star_world.catalog))
            if params in seen:
                assert seen[params] == key
            else:
                assert key not in seen.values(), (
                    f"{template.template_id}: params {params} collided with "
                    f"{[p for p, k in seen.items() if k == key]}"
                )
                seen[params] = key


def test_tpcd_template_signatures_distinct_per_params(mixed_world):
    rng = random.Random(19)
    keys = set()
    instances = 0
    for template in tpcd_templates():
        seen_params = set()
        for _ in range(8):
            query, params = template.instantiate(rng)
            if params in seen_params:
                continue
            seen_params.add(params)
            instances += 1
            keys.add(canonical_key(query_signature(query, mixed_world.catalog)))
    assert len(keys) == instances


def test_template_instantiations_spread_over_shards(star_world):
    shards = 4
    rng = random.Random(23)
    spread = []
    for template in templates_for("star", count=6, seed=9):
        hit = Counter()
        for _ in range(40):
            query, _ = template.instantiate(rng)
            key = canonical_key(query_signature(query, star_world.catalog))
            hit[stable_shard_hash(key) % shards] += 1
        spread.append(len(hit))
    # Not every template must touch all 4 shards (few distinct params per
    # template), but signature routing must not pin template traffic: on
    # average the instantiations of one template reach several shards.
    assert sum(spread) / len(spread) >= 2.5
    assert max(spread) == shards


def test_routing_is_process_independent_constant(star_world):
    # Pin actual hash values: stable_shard_hash must never pick up a
    # per-process salt (a restarted front end would scatter warm traffic).
    assert stable_shard_hash("") == 16406829232824261652
    assert stable_shard_hash("repro") == 7502176988086669819
    template = star_templates(1, seed=0)[0]
    query = template.with_params((50,))
    key = canonical_key(query_signature(query, star_world.catalog))
    assert key == canonical_key(query_signature(query, star_world.catalog))
