"""Pins on the pre-refactor public API.

The facade refactor (strategy registry + serving session behind
``MultiQueryOptimizer``) must not change what ``examples/`` and downstream
users see: same constructor, same methods, same ``MQOResult`` shape, same
``STRATEGIES`` contents.
"""

import dataclasses

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MQOResult, MultiQueryOptimizer, STRATEGIES
from repro.workloads.synthetic import example1_batch, example1_catalog


def test_strategies_tuple_contents():
    assert STRATEGIES == ("volcano", "greedy", "marginal-greedy", "share-all", "exhaustive")
    assert isinstance(STRATEGIES, tuple)


def test_mqo_result_fields():
    fields = {f.name for f in dataclasses.fields(MQOResult)}
    assert fields == {
        "strategy",
        "batch_name",
        "total_cost",
        "volcano_cost",
        "materialized",
        "materialized_labels",
        "optimization_time",
        "oracle_calls",
        "query_costs",
        "plan",
        "dag_summary",
        "memo_uid",  # optional provenance added with the execution layer
    }
    # Derived properties used by experiments and examples.
    for prop in ("benefit", "improvement", "materialized_count"):
        assert isinstance(getattr(MQOResult, prop), property)


def test_top_level_reexports():
    import repro
    import repro.core as core

    assert repro.MultiQueryOptimizer is MultiQueryOptimizer
    assert core.MultiQueryOptimizer is MultiQueryOptimizer
    assert core.MQOResult is MQOResult
    assert core.STRATEGIES == STRATEGIES


def test_legacy_optimize_surface():
    optimizer = MultiQueryOptimizer(example1_catalog())
    batch = example1_batch()
    result = optimizer.optimize(batch, strategy="greedy", lazy=True)
    assert isinstance(result, MQOResult)
    assert result.strategy == "greedy"
    assert result.batch_name == batch.name
    assert result.total_cost <= result.volcano_cost + 1e-6
    assert result.summary().startswith("strategy")
    assert set(result.query_costs) == {q.name for q in batch}


def test_legacy_compare_surface():
    optimizer = MultiQueryOptimizer(example1_catalog())
    results = optimizer.compare(example1_batch(), strategies=("volcano", "greedy"))
    assert set(results) == {"volcano", "greedy"}
    assert results["volcano"].materialized == ()


def test_legacy_build_dag_make_engine_optimize_with():
    optimizer = MultiQueryOptimizer(example1_catalog())
    batch = example1_batch()
    dag = optimizer.build_dag(batch)
    engine = optimizer.make_engine(dag)
    result = optimizer.optimize_with(
        dag, engine, batch_name=batch.name, strategy="greedy"
    )
    assert isinstance(result, MQOResult)
    assert result.batch_name == batch.name
    # The standalone path must agree with the session-backed path.
    assert result.total_cost == optimizer.optimize(batch, strategy="greedy").total_cost


def test_unknown_strategy_message_lists_choices():
    optimizer = MultiQueryOptimizer(tpcd_catalog(0.05))
    from repro.workloads.tpcd_queries import batched_queries

    with pytest.raises(ValueError, match="volcano"):
        optimizer.optimize(list(batched_queries(1)), strategy="magic")
