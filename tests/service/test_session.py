"""Session-reuse guarantees: warm results must be bit-identical to cold ones."""

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.service import OptimizerSession
from repro.workloads.batches import composite_batch

STRATEGIES = ("volcano", "greedy", "marginal-greedy", "share-all")


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.05)


def _signatures(result, dag):
    """Materialization choices as session-independent (fingerprint, order) pairs."""
    return {
        (dag.memo.get(getattr(e, "group", e)).signature, str(getattr(e, "order", "")))
        for e in result.materialized
    }


class TestSameBatchTwice:
    def test_bit_identical_and_served_from_cache(self, catalog):
        session = OptimizerSession(catalog)
        batch = composite_batch(1)
        first = {s: session.optimize(batch, strategy=s) for s in STRATEGIES}
        hits_before = session.statistics.result_cache_hits
        version_before = session.memo.version
        second = {s: session.optimize(batch, strategy=s) for s in STRATEGIES}
        for s in STRATEGIES:
            assert second[s].total_cost == first[s].total_cost
            assert second[s].volcano_cost == first[s].volcano_cost
            assert second[s].materialized == first[s].materialized
            assert second[s].query_costs == first[s].query_costs
        # The second pass is the incremental path: no memo growth, all hits.
        assert session.memo.version == version_before
        assert session.statistics.result_cache_hits == hits_before + len(STRATEGIES)
        assert session.statistics.queries_reused >= len(batch)

    def test_matches_fresh_optimizer(self, catalog):
        session = OptimizerSession(catalog)
        batch = composite_batch(1)
        session.optimize(batch, strategy="greedy")  # warm
        warm = session.optimize(batch, strategy="greedy")
        fresh_optimizer = MultiQueryOptimizer(catalog)
        fresh = fresh_optimizer.optimize(batch, strategy="greedy")
        assert warm.total_cost == fresh.total_cost
        assert warm.volcano_cost == fresh.volcano_cost
        warm_dag = session.prepare(batch).dag
        fresh_dag = fresh_optimizer.session.prepare(batch).dag
        assert _signatures(warm, warm_dag) == _signatures(fresh, fresh_dag)


class TestOverlappingBatches:
    def test_overlapping_batch_hits_incremental_path(self, catalog):
        session = OptimizerSession(catalog)
        session.optimize(composite_batch(1), strategy="greedy")
        interned_before = session.statistics.queries_interned
        reused_before = session.statistics.queries_reused
        # BQ2 = BQ1's queries plus the Q5 pair: only the new pair may expand
        # the memo; the shared pair must be recognized by fingerprint.
        session.optimize(composite_batch(2), strategy="greedy")
        assert session.statistics.queries_reused == reused_before + 2
        assert session.statistics.queries_interned == interned_before + 2

    def test_overlapping_batch_identical_to_fresh(self, catalog):
        session = OptimizerSession(catalog)
        session.optimize(composite_batch(1), strategy="greedy")
        batch = composite_batch(2)
        for strategy in STRATEGIES:
            warm = session.optimize(batch, strategy=strategy)
            fresh_optimizer = MultiQueryOptimizer(catalog)
            fresh = fresh_optimizer.optimize(batch, strategy=strategy)
            assert warm.total_cost == fresh.total_cost, strategy
            assert warm.volcano_cost == fresh.volcano_cost, strategy
            assert warm.query_costs == fresh.query_costs, strategy
            warm_dag = session.prepare(batch).dag
            fresh_dag = fresh_optimizer.session.prepare(batch).dag
            assert _signatures(warm, warm_dag) == _signatures(fresh, fresh_dag), strategy

    def test_earlier_batch_unchanged_after_memo_growth(self, catalog):
        """Serving new traffic must not change answers for old traffic."""
        session = OptimizerSession(catalog)
        batch = composite_batch(1)
        before = session.optimize(batch, strategy="greedy")
        session.optimize(composite_batch(2), strategy="greedy")  # grows the memo
        session._results.clear()  # force a true re-run, not a cache hit
        after = session.optimize(batch, strategy="greedy")
        assert after.total_cost == before.total_cost
        assert after.materialized == before.materialized
        assert after.query_costs == before.query_costs


class TestSessionHousekeeping:
    def test_reset_drops_memo(self, catalog):
        session = OptimizerSession(catalog)
        session.optimize(composite_batch(1), strategy="volcano")
        assert session.memo.version > 0
        session.reset()
        assert session.memo.version == 0
        result = session.optimize(composite_batch(1), strategy="volcano")
        assert result.total_cost > 0

    def test_lru_bound_on_prepared_batches(self, catalog):
        session = OptimizerSession(catalog, max_cached_batches=1)
        session.optimize(composite_batch(1), strategy="volcano")
        session.optimize(composite_batch(2), strategy="volcano")
        assert len(session._batches) == 1

    def test_accepts_plain_query_sequences(self, catalog):
        from repro.workloads.tpcd_queries import batched_queries

        session = OptimizerSession(catalog)
        result = session.optimize(list(batched_queries(1)), strategy="volcano")
        assert result.total_cost > 0

    def test_builder_state_does_not_accrete_per_request(self, catalog):
        """A long-lived session must not grow shared builder state per call."""
        session = OptimizerSession(catalog)
        batch = composite_batch(1)
        for _ in range(3):
            session.optimize(batch, strategy="volcano")
        assert session._builder.block_roots == []
        assert session._builder.query_roots == {}
