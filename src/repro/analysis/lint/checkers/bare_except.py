"""``bare-except-swallow`` — exception handlers that swallow silently.

A handler whose whole body is ``pass`` makes a failure invisible: nothing
is re-raised, no fallback is returned, nothing is recorded to the
observability layer.  In a serving system that shape turns real faults (a
corrupt spill file, a failed snapshot) into silent behavior changes that
only the differential oracles can catch — much later, and much more
expensively.

Handlers that *do something* — re-raise, return a fallback, record a
counter or trace event, ``break``/``continue`` a polling loop where the
exception is the signal (``except queue.Empty: break``) — pass.
Genuinely intentional swallows (best-effort cleanup where failure is the
documented fallback) carry a suppression with the reason written next to
the code::

    except OSError:
        pass  # repro-lint: disable=bare-except-swallow -- best-effort unlink; a leaked temp file is swept at startup
"""

from __future__ import annotations

import ast

from ..visitor import LintVisitor, register_checker

__all__ = ["BareExceptSwallowChecker"]


@register_checker
class BareExceptSwallowChecker(LintVisitor):
    id = "bare-except-swallow"
    rationale = (
        "an except handler whose body is only 'pass' swallows the failure "
        "without re-raising, falling back, or recording to obs — "
        "intentional swallows need a suppression with the reason"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if all(isinstance(stmt, ast.Pass) for stmt in node.body):
            what = "bare except" if node.type is None else "except handler"
            self.flag(
                node,
                f"{what} swallows the exception silently (body is only "
                "'pass'); re-raise, return a fallback, or record it — or "
                "suppress with a written reason",
            )
        self.generic_visit(node)
