"""Schema, statistics and the TPC-D catalog generator."""

from .schema import Column, DataType, Index, Table
from .statistics import ColumnStatistics, TableStatistics, collect_statistics
from .catalog import Catalog, CatalogError
from .tpcd import tpcd_catalog, tpcd_date

__all__ = [
    "Column",
    "DataType",
    "Index",
    "Table",
    "ColumnStatistics",
    "TableStatistics",
    "collect_statistics",
    "Catalog",
    "CatalogError",
    "tpcd_catalog",
    "tpcd_date",
]
