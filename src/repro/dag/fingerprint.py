"""Semantic fingerprints ("expression signatures") for equivalence nodes.

Roy et al. identify common subexpressions — including syntactically
different but semantically equivalent ones — with a hashing scheme applied
in one bottom-up pass over the combined query DAG.  This module plays that
role: every equivalence node (memo group) is keyed by a *signature* that
canonically describes the result set it produces, so two sub-plans from
different queries that compute the same thing land in the same group
automatically.

Signatures are recursive:

* a base relation is identified by its table and alias,
* an SPJ block is identified by the *set* of its sources and the *set* of
  applied predicates (join order and selection placement therefore do not
  matter — exactly the equivalences join associativity/commutativity and
  select push-down generate),
* an aggregation is identified by its input signature, grouping keys and
  aggregate list, and
* a residual filter (e.g. a HAVING clause) by its input and predicate set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from ..algebra.expressions import AggregateExpr, ColumnRef, Predicate

__all__ = [
    "Signature",
    "RelationSignature",
    "SPJSignature",
    "AggregateSignature",
    "FilterSignature",
    "signature_sources",
    "canonical_key",
]


@dataclass(frozen=True)
class RelationSignature:
    """A base relation under an alias."""

    table: str
    alias: str

    def describe(self) -> str:
        if self.alias != self.table:
            return f"{self.table} AS {self.alias}"
        return self.table


@dataclass(frozen=True)
class SPJSignature:
    """A select-project-join block: a set of sources plus applied predicates."""

    sources: FrozenSet[Tuple[str, "Signature"]]
    predicates: FrozenSet[Predicate]

    def aliases(self) -> FrozenSet[str]:
        return frozenset(alias for alias, _ in self.sources)

    def describe(self) -> str:
        names = " ⋈ ".join(sorted(alias for alias, _ in self.sources))
        if self.predicates:
            preds = " AND ".join(sorted(str(p) for p in self.predicates))
            return f"{names} | σ[{preds}]"
        return names


@dataclass(frozen=True)
class AggregateSignature:
    """Aggregation of an input signature by a set of keys."""

    input: "Signature"
    group_by: FrozenSet[ColumnRef]
    aggregates: Tuple[AggregateExpr, ...]

    def describe(self) -> str:
        keys = ", ".join(sorted(str(c) for c in self.group_by)) or "()"
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"γ[{keys}; {aggs}]({self.input.describe()})"


@dataclass(frozen=True)
class FilterSignature:
    """A residual filter over a non-SPJ input (e.g. a HAVING clause)."""

    input: "Signature"
    predicates: FrozenSet[Predicate]

    def describe(self) -> str:
        preds = " AND ".join(sorted(str(p) for p in self.predicates))
        return f"σ[{preds}]({self.input.describe()})"


Signature = Union[RelationSignature, SPJSignature, AggregateSignature, FilterSignature]


def signature_sources(signature: Signature) -> FrozenSet[Tuple[str, Signature]]:
    """The (alias, signature) sources of an SPJ signature; empty otherwise."""
    if isinstance(signature, SPJSignature):
        return signature.sources
    return frozenset()


def canonical_key(signature: Signature) -> str:
    """A stable, fully recursive textual identity of a signature.

    Unlike ``describe()`` (which abbreviates SPJ sources to their aliases for
    readability), the canonical key recurses into every nested signature, so
    two signatures produce the same key exactly when they are equal.  Because
    signatures are structural, the key is identical across different memos —
    and different sessions — that interned the same logical expression, which
    is what lets a cross-batch result cache outlive any single memo's group
    ids.
    """
    if isinstance(signature, RelationSignature):
        return f"rel({signature.table} AS {signature.alias})"
    if isinstance(signature, SPJSignature):
        sources = ",".join(
            sorted(f"{alias}={canonical_key(sub)}" for alias, sub in signature.sources)
        )
        preds = ",".join(sorted(str(p) for p in signature.predicates))
        return f"spj([{sources}];[{preds}])"
    if isinstance(signature, AggregateSignature):
        keys = ",".join(sorted(str(c) for c in signature.group_by))
        aggs = ",".join(str(a) for a in signature.aggregates)
        return f"agg([{keys}];[{aggs}];{canonical_key(signature.input)})"
    if isinstance(signature, FilterSignature):
        preds = ",".join(sorted(str(p) for p in signature.predicates))
        return f"filter([{preds}];{canonical_key(signature.input)})"
    raise TypeError(f"unknown signature type: {type(signature).__name__}")
