"""The vectorized executor: the same plans, evaluated over column batches.

:class:`ColumnarExecutor` subclasses the row interpreter and overrides only
:meth:`~repro.execution.executor.Executor._run`, so the whole public surface
— ``execute``, ``execute_result``, the dependency-ordered materialization
loop, ``fill_listener`` and ``observer`` hooks — is shared code.  Internally
every operator consumes and produces :class:`~repro.execution.columnar
.batch.ColumnBatch` objects; rows exist only at the boundaries (the late
materialization step), where :meth:`ColumnBatch.to_rows` reproduces the row
executor's output bit for bit.

Two things make this fast where the interpreter is slow:

* **one resolution / compilation pass per batch** instead of per row —
  predicates go through :func:`~repro.execution.columnar.compile
  .filter_indices` (selection vectors), joins hash raw key columns and emit
  index pairs before gathering any payload, aggregates extract each input
  column once;
* **column pruning**: every operator tells its child which columns it
  actually needs (``needed``), so scans under an aggregate never build the
  columns the aggregate will not read, and ``READ_MATERIALIZED`` serves a
  zero-copy column subset of the cached batch.

The row executor stays the differential oracle: for every supported plan the
two backends must return identical rows (see
``tests/execution/test_columnar_differential.py``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ...algebra.expressions import (
    AggregateFunction,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Predicate,
    conjuncts,
    referenced_columns,
)
from ...optimizer.plan import PhysicalOp, PhysicalPlan
from ..data import Row
from ..evaluate import AmbiguousColumn, ColumnNotFound, total_order_key
from ..executor import ExecutionError, Executor
from .batch import ColumnBatch
from .compile import filter_indices

__all__ = ["ColumnarExecutor"]

Needed = Optional[FrozenSet[ColumnRef]]


def _matches(name: str, ref: ColumnRef) -> bool:
    """Could ``resolve_column`` pick ``name`` for ``ref``?  (The keep-rule.)

    Deliberately *over*-approximate — it keeps every suffix match, not just
    the winning one — so pruning can never turn an ambiguous reference into
    a unique one and silently change resolution semantics.
    """
    return name == ref.name or name.endswith("." + ref.name)


def _prune_names(names: Sequence[str], needed: FrozenSet[ColumnRef]) -> List[str]:
    return [name for name in names if any(_matches(name, ref) for ref in needed)]


def _extend(needed: Needed, refs) -> Needed:
    """Widen a pruning set with extra references (None stays "everything")."""
    if needed is None:
        return None
    return needed | frozenset(refs)


class _ColumnarStore(dict):
    """The materialized-results store plus a rows→batch memo.

    ``execute_result`` stores materializations as *row lists* (that is the
    contract ``fill_listener`` and the cache layer see), but the batches they
    came from are worth keeping: a ``READ_MATERIALIZED`` of the same group
    can then reuse the columns instead of re-transposing the rows.  The memo
    keys by ``id(rows)`` and keeps the rows referenced so the ids stay valid.
    """

    __slots__ = ("batches",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batches: Dict[int, Tuple[object, ColumnBatch]] = {}

    def remember(self, rows: List[Row], batch: ColumnBatch) -> None:
        self.batches[id(rows)] = (rows, batch)

    def recall(self, rows: object) -> Optional[ColumnBatch]:
        entry = self.batches.get(id(rows))
        return entry[1] if entry is not None else None


class ColumnarExecutor(Executor):
    """Vectorized drop-in for :class:`~repro.execution.executor.Executor`."""

    #: Hint for callers holding cached batches (the session's matcache path):
    #: this backend can consume ``ColumnBatch`` store values directly.
    prefers_batches = True

    # ------------------------------------------------------------- overrides

    def _make_store(self, materialized: Optional[Mapping[int, List[Row]]]) -> Dict:
        return _ColumnarStore(materialized if materialized is not None else {})

    def _run(self, plan: PhysicalPlan, store: Mapping[int, List[Row]]) -> List[Row]:
        batch = self._vector(plan, store, None)
        rows = batch.to_rows()
        if isinstance(store, _ColumnarStore):
            # If these rows get stored as a materialization, a later
            # READ_MATERIALIZED can serve the batch without re-transposing.
            store.remember(rows, batch)
        return rows

    # ------------------------------------------------------------- dispatch

    def _vector(
        self, plan: PhysicalPlan, store: Mapping[int, List[Row]], needed: Needed
    ) -> ColumnBatch:
        op = plan.op
        if op is PhysicalOp.TABLE_SCAN:
            if plan.table is None:
                raise ExecutionError("scan node is missing its table")
            return self._table_batch(plan.table, plan.alias or plan.table, needed)
        if op is PhysicalOp.INDEX_SCAN:
            if plan.table is None:
                raise ExecutionError("scan node is missing its table")
            batch = self._table_batch(
                plan.table,
                plan.alias or plan.table,
                _extend(needed, self._predicate_refs(plan.predicate)),
            )
            return self._filter_batch(batch, plan.predicate)
        if op is PhysicalOp.FILTER:
            child = self._vector(
                plan.children[0],
                store,
                _extend(needed, self._predicate_refs(plan.predicate)),
            )
            return self._filter_batch(child, plan.predicate)
        if op is PhysicalOp.SORT:
            child = self._vector(
                plan.children[0], store, _extend(needed, plan.order.columns)
            )
            return self._sort_batch(child, plan)
        if op in (PhysicalOp.MERGE_JOIN, PhysicalOp.NESTED_LOOP_JOIN):
            child_needed = _extend(needed, self._predicate_refs(plan.predicate))
            left = self._vector(plan.children[0], store, child_needed)
            right = self._vector(plan.children[1], store, child_needed)
            return self._join_batch(left, right, plan.predicate)
        if op is PhysicalOp.INDEX_NL_JOIN:
            child_needed = _extend(needed, self._predicate_refs(plan.predicate))
            outer = self._vector(plan.children[0], store, child_needed)
            if plan.table is None or plan.alias is None:
                raise ExecutionError("index nested-loop join is missing its inner table")
            inner = self._table_batch(plan.table, plan.alias, child_needed)
            return self._join_batch(outer, inner, plan.predicate)
        if op in (PhysicalOp.SORT_AGGREGATE, PhysicalOp.SCALAR_AGGREGATE):
            child_needed = frozenset(plan.group_by) | frozenset(
                aggregate.column
                for aggregate in plan.aggregates
                if aggregate.column is not None
            )
            child = self._vector(plan.children[0], store, child_needed)
            return self._aggregate_batch(child, plan)
        if op is PhysicalOp.MATERIALIZE:
            return self._vector(plan.children[0], store, needed)
        if op is PhysicalOp.READ_MATERIALIZED:
            return self._read_materialized(plan, store, needed)
        raise ExecutionError(f"cannot execute operator {op}")

    @staticmethod
    def _predicate_refs(predicate: Optional[Predicate]):
        return referenced_columns(predicate) if predicate is not None else ()

    # ------------------------------------------------------------- operators

    def _table_batch(self, table: str, alias: str, needed: Needed) -> ColumnBatch:
        rows = self.database.table(table)
        if not rows:
            return ColumnBatch({}, 0)
        keys = list(rows[0])
        try:
            if all(len(row) == len(keys) for row in rows):
                columns: Dict[str, List[object]] = {}
                for key in keys:
                    name = f"{alias}.{key}"
                    if needed is None or any(_matches(name, ref) for ref in needed):
                        columns[name] = [row[key] for row in rows]
                return ColumnBatch(columns, len(rows))
        # repro-lint: disable=bare-except-swallow -- same arity, different keys: KeyError is the signal to fall through to the slow path
        except KeyError:
            pass
        batch = ColumnBatch.from_table(rows, alias)
        if needed is not None:
            batch = batch.select(_prune_names(list(batch.columns), needed))
        return batch

    @staticmethod
    def _filter_batch(batch: ColumnBatch, predicate: Optional[Predicate]) -> ColumnBatch:
        if batch.length == 0:
            # The row executor never evaluates a predicate over zero rows, so
            # neither do we — resolution errors must not appear out of thin air.
            return batch
        selected = filter_indices(batch, predicate)
        if len(selected) == batch.length:
            return batch
        return batch.take(selected)

    @staticmethod
    def _sort_batch(batch: ColumnBatch, plan: PhysicalPlan) -> ColumnBatch:
        columns = plan.order.columns
        if not columns or batch.length <= 1:
            return batch
        none_key = total_order_key(None)
        decorated: List[List[Tuple]] = []
        for column in columns:
            try:
                name = batch.resolve(column)
            except ColumnNotFound:
                # Row semantics: an unresolvable sort column sorts as None.
                decorated.append([none_key] * batch.length)
                continue
            values = batch.column(name)
            mask = batch.mask(name)
            if mask is None:
                decorated.append([total_order_key(value) for value in values])
            else:
                decorated.append(
                    [
                        none_key if not present else total_order_key(value)
                        for value, present in zip(values, mask)
                    ]
                )
        keys = list(zip(*decorated))
        order = sorted(range(batch.length), key=keys.__getitem__)
        return batch.take(order)

    def _join_batch(
        self, left: ColumnBatch, right: ColumnBatch, predicate: Optional[Predicate]
    ) -> ColumnBatch:
        merged_names = list(left.columns) + [
            name for name in right.columns if name not in left.columns
        ]
        if left.length == 0 or right.length == 0:
            return ColumnBatch({name: [] for name in merged_names}, 0)

        equi: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Predicate] = []
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.right, ColumnRef)
            ):
                equi.append((conjunct.left, conjunct.right))
            else:
                residual.append(conjunct)

        if equi:
            left_idx, right_idx = self._hash_join_pairs(left, right, equi)
        else:
            # Cross product in the row executor's (outer, inner) order; the
            # full predicate is then a residual filter over the pairs.
            left_idx = [li for li in range(left.length) for _ in range(right.length)]
            right_idx = list(range(right.length)) * left.length
            residual = [predicate] if predicate is not None else []

        if residual and left_idx:
            refs = frozenset(
                ref for conjunct in residual for ref in referenced_columns(conjunct)
            )
            keep = set(_prune_names(merged_names, refs)) if refs else set()
            mini = self._gather_merged(left, right, left_idx, right_idx, keep)
            selected = list(range(len(left_idx)))
            for conjunct in residual:
                if not selected:
                    break
                selected = filter_indices(mini, conjunct, selected)
            left_idx = [left_idx[i] for i in selected]
            right_idx = [right_idx[i] for i in selected]

        return self._gather_merged(left, right, left_idx, right_idx, None)

    @staticmethod
    def _hash_join_pairs(
        left: ColumnBatch,
        right: ColumnBatch,
        equi: List[Tuple[ColumnRef, ColumnRef]],
    ) -> Tuple[List[int], List[int]]:
        """Build-and-probe on raw key columns, emitting index pairs only."""
        left_refs: List[ColumnRef] = []
        right_refs: List[ColumnRef] = []
        for a, b in equi:
            if left.resolves(a) and right.resolves(b):
                left_refs.append(a)
                right_refs.append(b)
            elif left.resolves(b) and right.resolves(a):
                left_refs.append(b)
                right_refs.append(a)
            else:
                raise ExecutionError(
                    f"hash join cannot resolve join columns of '{a} = {b}' "
                    f"against either operand (unknown alias?)"
                )

        def key_rows(batch: ColumnBatch, refs: List[ColumnRef]) -> Sequence[object]:
            """Per-row join keys; ``None`` marks a row that can match nothing.

            SQL equality semantics, mirrored by the row backend: a NULL key
            component — or one the row does not carry at all — never equals
            anything, so such rows neither build nor probe.
            """
            columns = []
            masks = []
            for ref in refs:
                name = batch.resolve(ref)
                columns.append(batch.column(name))
                masks.append(batch.mask(name))
            if len(columns) == 1:
                values, mask = columns[0], masks[0]
                if mask is None:
                    return values
                # Missing and NULL coincide here: neither row can match.
                return [
                    value if present else None for value, present in zip(values, mask)
                ]
            keys: List[object] = []
            for i in range(batch.length):
                key = []
                for values, mask in zip(columns, masks):
                    if mask is not None and not mask[i]:
                        key = None
                        break
                    value = values[i]
                    if value is None:
                        key = None
                        break
                    key.append(value)
                keys.append(tuple(key) if key is not None else None)
            return keys

        build_keys = key_rows(right, right_refs)
        probe_keys = key_rows(left, left_refs)

        buckets: Dict[object, List[int]] = {}
        left_idx: List[int] = []
        right_idx: List[int] = []
        for i, key in enumerate(build_keys):
            if key is None:
                continue
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [i]
            else:
                bucket.append(i)
        get = buckets.get
        for li, key in enumerate(probe_keys):
            if key is None:
                continue
            bucket = get(key)
            if bucket is not None:
                right_idx.extend(bucket)
                left_idx.extend([li] * len(bucket))
        return left_idx, right_idx

    @staticmethod
    def _gather_merged(
        left: ColumnBatch,
        right: ColumnBatch,
        left_idx: List[int],
        right_idx: List[int],
        keep: Optional[set],
    ) -> ColumnBatch:
        """Gather ``{**left_row, **right_row}`` pairs into a merged batch.

        Duplicate names keep the left operand's *position* but take the right
        operand's *values* — exactly the dict-merge the row executor does.
        ``keep`` (when given) restricts to a name subset (the residual
        mini-batch), preserving merged order.
        """
        columns: Dict[str, List[object]] = {}
        masks: Dict[str, Optional[List[bool]]] = {}

        def emit(name: str, source: ColumnBatch, indices: List[int]) -> None:
            if keep is not None and name not in keep:
                return
            values = source.columns[name]
            columns[name] = [values[i] for i in indices]
            mask = source.masks.get(name)
            if mask is not None:
                gathered = [mask[i] for i in indices]
                if not all(gathered):
                    masks[name] = gathered

        for name in left.columns:
            if name in right.columns:
                emit(name, right, right_idx)
            else:
                emit(name, left, left_idx)
        for name in right.columns:
            if name not in left.columns:
                emit(name, right, right_idx)
        return ColumnBatch(columns, len(left_idx), masks)

    def _aggregate_batch(self, batch: ColumnBatch, plan: PhysicalPlan) -> ColumnBatch:
        n = batch.length
        if plan.group_by and n == 0:
            # Zero input rows with grouping ⇒ zero groups; the row executor
            # never resolves a column it has no row to resolve against.
            empty: Dict[str, List[object]] = {}
            for column in plan.group_by:
                empty[str(column)] = []
            for aggregate in plan.aggregates:
                empty[aggregate.alias] = []
            return ColumnBatch(empty, 0)
        if plan.group_by:
            key_columns: List[List[object]] = []
            for column in plan.group_by:
                try:
                    name = batch.resolve(column)
                except AmbiguousColumn:
                    raise  # an ambiguous reference stays a hard error
                except ColumnNotFound:
                    # SQL semantics: a missing grouping column is one NULL
                    # group, matching the row backend and the SQL oracle.
                    key_columns.append([None] * n)
                    continue
                mask = batch.mask(name)
                values = batch.column(name)
                if mask is not None and not all(mask):
                    values = [
                        value if present else None
                        for value, present in zip(values, mask)
                    ]
                key_columns.append(values)
            group_of: Dict[object, int] = {}
            members: List[List[int]] = []
            keys_in_order: List[Tuple] = []
            if len(key_columns) == 1:
                row_keys: Sequence[object] = [(v,) for v in key_columns[0]]
            else:
                row_keys = list(zip(*key_columns))
            for i, key in enumerate(row_keys):
                gi = group_of.get(key)
                if gi is None:
                    gi = group_of[key] = len(members)
                    members.append([])
                    keys_in_order.append(key)
                members[gi].append(i)
        else:
            keys_in_order = [()]
            members = [list(range(n))]

        extracted: List[Optional[List[object]]] = []
        for aggregate in plan.aggregates:
            if aggregate.func is AggregateFunction.COUNT or aggregate.column is None:
                extracted.append(None)
                continue
            try:
                name = batch.resolve(aggregate.column)
            except ColumnNotFound:
                # Row semantics: an unresolvable aggregate input reads as
                # None everywhere (and so folds to None).
                extracted.append([None] * n)
                continue
            values = batch.column(name)
            mask = batch.mask(name)
            if mask is not None:
                values = [
                    value if present else None for value, present in zip(values, mask)
                ]
            extracted.append(values)

        # Output columns in the row executor's key order: group-by columns
        # (stringified, later duplicates overwrite values but keep the first
        # position — plain dict assignment gives exactly that), then aliases.
        out_columns: Dict[str, List[object]] = {}
        for index, column in enumerate(plan.group_by):
            out_columns[str(column)] = [key[index] for key in keys_in_order]
        for aggregate, values in zip(plan.aggregates, extracted):
            out_columns[aggregate.alias] = [
                self._aggregate_value(aggregate, group, values) for group in members
            ]
        return ColumnBatch(out_columns, len(members))

    def _read_materialized(
        self, plan: PhysicalPlan, store: Mapping[int, List[Row]], needed: Needed
    ) -> ColumnBatch:
        if plan.group not in store:
            raise ExecutionError(f"materialized result for G{plan.group} is not available")
        stored = store[plan.group]
        if isinstance(stored, ColumnBatch):
            batch = stored
        else:
            batch = store.recall(stored) if isinstance(store, _ColumnarStore) else None
            if batch is None:
                batch = ColumnBatch.from_rows(stored)
                if isinstance(store, _ColumnarStore):
                    store.remember(stored, batch)
        if needed is not None:
            batch = batch.select(_prune_names(list(batch.columns), needed))
        return batch
