"""A small fluent builder for logical plans.

The TPC-D workload definitions and the examples construct queries with this
builder rather than writing operator trees by hand::

    from repro.algebra import builder as qb
    from repro.algebra.expressions import col, eq, lt

    q3 = (
        qb.scan("customer")
        .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
        .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
        .filter(eq(col("c_mktsegment"), "BUILDING"))
        .filter(lt(col("o_orderdate"), 19950315))
        .aggregate(["l_orderkey", "o_orderdate", "o_shippriority"],
                   [("sum", "l_extendedprice", "revenue")])
        .query("Q3")
    )
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .expressions import (
    AggregateExpr,
    AggregateFunction,
    ColumnRef,
    Predicate,
    col,
    conjunction,
)
from .logical import (
    Aggregate,
    DerivedTable,
    Join,
    LogicalPlan,
    Project,
    Query,
    QueryBatch,
    Relation,
    Select,
)

__all__ = ["PlanBuilder", "scan", "derived", "batch"]

ColumnLike = Union[str, ColumnRef]
AggregateLike = Union[AggregateExpr, Tuple[str, Optional[str], str]]


def _column(value: ColumnLike) -> ColumnRef:
    return col(value) if isinstance(value, str) else value


def _aggregate(value: AggregateLike) -> AggregateExpr:
    if isinstance(value, AggregateExpr):
        return value
    func_name, column, alias = value
    func = AggregateFunction(func_name.lower())
    return AggregateExpr(func, _column(column) if column is not None else None, alias)


class PlanBuilder:
    """Wraps a :class:`LogicalPlan` and exposes chainable construction methods."""

    def __init__(self, plan: LogicalPlan):
        self._plan = plan

    # -- composition ------------------------------------------------------

    def filter(self, *predicates: Predicate) -> "PlanBuilder":
        """Apply one or more selection predicates (combined with AND)."""
        if not predicates:
            return self
        return PlanBuilder(Select(self._plan, conjunction(predicates)))

    def join(
        self, other: Union["PlanBuilder", LogicalPlan], on: Optional[Predicate] = None
    ) -> "PlanBuilder":
        """Inner-join with another plan on an optional predicate."""
        right = other.build() if isinstance(other, PlanBuilder) else other
        return PlanBuilder(Join(self._plan, right, on))

    def project(self, columns: Sequence[ColumnLike]) -> "PlanBuilder":
        return PlanBuilder(Project(self._plan, tuple(_column(c) for c in columns)))

    def aggregate(
        self,
        group_by: Sequence[ColumnLike],
        aggregates: Sequence[AggregateLike],
    ) -> "PlanBuilder":
        """Group by the given keys and compute the given aggregates."""
        return PlanBuilder(
            Aggregate(
                self._plan,
                tuple(_column(c) for c in group_by),
                tuple(_aggregate(a) for a in aggregates),
            )
        )

    def as_derived(self, alias: str) -> "PlanBuilder":
        """Wrap the current plan as a named derived table (a sub-query block)."""
        return PlanBuilder(DerivedTable(self._plan, alias))

    # -- termination ------------------------------------------------------

    def build(self) -> LogicalPlan:
        return self._plan

    def query(self, name: str) -> Query:
        return Query(name, self._plan)

    def pretty(self) -> str:
        return self._plan.pretty()


def scan(table: str, alias: Optional[str] = None) -> PlanBuilder:
    """Start a plan from a base relation."""
    return PlanBuilder(Relation(table, alias))


def derived(inner: Union[PlanBuilder, LogicalPlan], alias: str) -> PlanBuilder:
    """Wrap an existing plan as a derived table usable as a join source."""
    plan = inner.build() if isinstance(inner, PlanBuilder) else inner
    return PlanBuilder(DerivedTable(plan, alias))


def batch(name: str, queries: Iterable[Query]) -> QueryBatch:
    """Bundle queries into a :class:`~repro.algebra.logical.QueryBatch`."""
    return QueryBatch(name, tuple(queries))
