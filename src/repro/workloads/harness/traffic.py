"""Multi-tenant traffic simulation: who asks what, when.

The simulator turns a :class:`TrafficSpec` into a deterministic list of
:class:`Request` objects — everything is drawn from one seeded
``random.Random``, so the same ``(templates, spec)`` pair always produces
the same traffic, byte for byte, whatever machine replays it:

* **Templates** (:class:`QueryTemplate`) are parameterized query shapes;
  instantiating one draws its selection constants from the RNG.  The same
  ``(template, params)`` pair always builds an identical
  :class:`~repro.algebra.logical.Query` under an identical name, so
  re-submitted traffic hits the serving layer's result caches exactly
  like re-submitted production queries would.
* **Tenants** are drawn Zipfian (exponent ``zipf``): tenant 0 is the
  hottest.  Each tenant prefers *its own* rotation of the template list
  (again Zipfian, exponent ``template_zipf``), so hot tenants hammer hot
  templates without every tenant hammering the *same* one.
* **Arrivals** are open-loop: :func:`arrival_offsets` precomputes each
  request's submission time, independent of how fast the system under
  test drains them.  ``poisson:RATE`` draws exponential inter-arrivals,
  ``bursty:LOW:HIGH:PERIOD`` alternates a quiet and a burst rate every
  ``PERIOD`` seconds, and ``closed`` submits back-to-back (offset 0) for
  max-throughput benchmarking.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ...algebra import builder as qb
from ...algebra.expressions import col, eq, lt
from ...algebra.logical import Query
from ..synthetic import zipfian_cdf, zipfian_index
from ..tpcd_queries import q3, q5, q7, q9, q10
from ...catalog.tpcd import tpcd_date

__all__ = [
    "ARRIVAL_KINDS",
    "QueryTemplate",
    "Request",
    "TrafficSpec",
    "arrival_offsets",
    "generate_traffic",
    "star_templates",
    "tpcd_templates",
    "templates_for",
]

ARRIVAL_KINDS: Tuple[str, ...] = ("closed", "poisson", "bursty")

#: A template's parameter draw: rng → (params tuple, query builder input).
ParamDraw = Callable[[random.Random], Tuple[object, ...]]
#: Builds the query from the drawn params under the given name.
QueryBuild = Callable[[str, Tuple[object, ...]], Query]


@dataclass(frozen=True)
class QueryTemplate:
    """A named, parameterized query shape.

    ``instantiate(rng)`` draws parameters and returns the concrete query.
    The query's *name* encodes template id + parameter digest — identical
    (template, params) pairs produce equal queries under equal names, so
    the serving layer's result cache (whose key includes the query name)
    sees repeated traffic as repeated, while distinct parameters stay
    distinct.
    """

    template_id: str
    draw: ParamDraw
    build: QueryBuild

    def instantiate(self, rng: random.Random) -> Tuple[Query, Tuple[object, ...]]:
        params = self.draw(rng)
        return self.build(self._name(params), params), params

    def with_params(self, params: Tuple[object, ...]) -> Query:
        """The exact query a previous instantiation with ``params`` built."""
        return self.build(self._name(params), params)

    def _name(self, params: Tuple[object, ...]) -> str:
        digest = hashlib.sha256(repr(params).encode("utf-8")).hexdigest()[:8]
        return f"{self.template_id}[{digest}]"


@dataclass(frozen=True)
class Request:
    """One simulated query submission."""

    index: int
    arrival: float  # seconds after run start (open-loop schedule)
    tenant: str
    template_id: str
    params: Tuple[object, ...]
    query: Query
    oracle: bool  # sampled for correctness replay


@dataclass(frozen=True)
class TrafficSpec:
    """Knobs of the simulated traffic (data sizing lives in ScaleSpec)."""

    requests: int = 200
    tenants: int = 8
    zipf: float = 1.1  # tenant popularity skew
    template_zipf: float = 1.0  # per-tenant template popularity skew
    arrival: str = "closed"
    oracle_sample: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError("requests must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be positive")
        if not 0.0 <= self.oracle_sample <= 1.0:
            raise ValueError("oracle_sample must be within [0, 1]")
        parse_arrival(self.arrival)  # validate eagerly: fail at spec build


# ---------------------------------------------------------------------------
# Arrival schedules (open-loop)
# ---------------------------------------------------------------------------


def parse_arrival(spec: str) -> Tuple[str, Tuple[float, ...]]:
    """``"poisson:200"`` → ``("poisson", (200.0,))``; raises on nonsense."""
    parts = spec.split(":")
    kind, args = parts[0], parts[1:]
    if kind not in ARRIVAL_KINDS:
        raise ValueError(f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}")
    try:
        values = tuple(float(a) for a in args)
    except ValueError:
        raise ValueError(f"non-numeric arrival parameter in {spec!r}") from None
    if kind == "closed":
        if values:
            raise ValueError("closed arrivals take no parameters")
    elif kind == "poisson":
        if len(values) != 1 or values[0] <= 0:
            raise ValueError("poisson arrivals need one positive rate: poisson:RATE")
    elif kind == "bursty":
        if len(values) != 3 or any(v <= 0 for v in values):
            raise ValueError(
                "bursty arrivals need three positive parameters: bursty:LOW:HIGH:PERIOD"
            )
    return kind, values


def arrival_offsets(spec: str, n: int, rng: random.Random) -> List[float]:
    """``n`` non-decreasing submission offsets (seconds) for one run."""
    kind, args = parse_arrival(spec)
    if kind == "closed":
        return [0.0] * n
    offsets: List[float] = []
    now = 0.0
    if kind == "poisson":
        (rate,) = args
        for _ in range(n):
            now += rng.expovariate(rate)
            offsets.append(now)
        return offsets
    low, high, period = args
    for _ in range(n):
        # Alternate LOW/HIGH rate phases of equal length; the draw uses
        # the rate of the phase the *previous* arrival landed in, which
        # keeps the generator one-pass and still strongly bimodal.
        rate = low if int(now / period) % 2 == 0 else high
        now += rng.expovariate(rate)
        offsets.append(now)
    return offsets


# ---------------------------------------------------------------------------
# Template families
# ---------------------------------------------------------------------------


def star_templates(
    count: int,
    *,
    n_dimensions: int = 4,
    min_dimensions: int = 2,
    max_dimensions: int = 3,
    seed: int = 0,
) -> List[QueryTemplate]:
    """``count`` random star-join templates over ``fact`` + ``dim*``.

    Each template fixes a dimension subset, the aggregation key and the
    filtered dimension (drawn once from ``seed``); instantiation draws only
    the selection threshold, so one template's instances share their join
    structure — the signature routing and cache reuse the harness measures.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    templates: List[QueryTemplate] = []
    for t in range(count):
        k = rng.randint(min_dimensions, min(max_dimensions, n_dimensions))
        chosen = tuple(sorted(rng.sample(range(n_dimensions), k)))
        filtered = rng.choice(chosen)
        group_dim = chosen[0]

        def build(
            name: str,
            params: Tuple[object, ...],
            chosen=chosen,
            filtered=filtered,
            group_dim=group_dim,
        ) -> Query:
            (threshold,) = params
            plan = qb.scan("fact")
            for i in chosen:
                plan = plan.join(
                    qb.scan(f"dim{i}"), eq(col(f"f_d{i}_key"), col(f"d{i}_key"))
                )
            plan = plan.filter(lt(col(f"d{filtered}_attr"), threshold))
            return plan.aggregate(
                [f"d{group_dim}_attr"], [("sum", "f_value", "total")]
            ).query(name)

        templates.append(
            QueryTemplate(
                template_id=f"star{t}",
                draw=lambda rng: (rng.randrange(10, 91),),
                build=build,
            )
        )
    return templates


def tpcd_templates() -> List[QueryTemplate]:
    """Parameterized renditions of the Experiment-1 TPC-D queries.

    Parameter domains follow the paper's "repeated with different selection
    constants" setup, widened enough that Zipf-skewed traffic still has a
    long tail of distinct instantiations.
    """
    segments = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
    regions = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
    nations = ("FRANCE", "GERMANY", "RUSSIA", "CHINA", "BRAZIL", "JAPAN")

    def t(template_id: str, draw: ParamDraw, build: QueryBuild) -> QueryTemplate:
        return QueryTemplate(template_id=template_id, draw=draw, build=build)

    return [
        t(
            "q3",
            lambda rng: (rng.choice(segments), tpcd_date(1995, rng.randint(1, 12), 15)),
            lambda name, p: q3(name, p[0], p[1]),
        ),
        t(
            "q5",
            lambda rng: (rng.choice(regions), rng.randint(1992, 1997)),
            lambda name, p: q5(name, p[0], p[1]),
        ),
        t(
            "q7",
            lambda rng: tuple(rng.sample(nations, 2)),
            lambda name, p: q7(name, p[0], p[1]),
        ),
        t(
            "q9",
            lambda rng: (lambda low: (low, low + 10))(rng.randrange(1, 40)),
            lambda name, p: q9(name, p[0], p[1]),
        ),
        t(
            "q10",
            lambda rng: (rng.randint(1992, 1997), rng.choice((1, 4, 7, 10))),
            lambda name, p: q10(name, p[0], p[1]),
        ),
    ]


def templates_for(
    workload: str,
    *,
    count: int = 8,
    n_dimensions: int = 4,
    seed: int = 0,
) -> List[QueryTemplate]:
    """The template family of a harness workload (star / tpcd / mixed)."""
    if workload == "star":
        return star_templates(count, n_dimensions=n_dimensions, seed=seed)
    if workload == "tpcd":
        return tpcd_templates()
    if workload == "mixed":
        star_count = max(1, count - len(tpcd_templates()))
        return (
            star_templates(star_count, n_dimensions=n_dimensions, seed=seed)
            + tpcd_templates()
        )
    raise ValueError(f"unknown workload {workload!r}")


# ---------------------------------------------------------------------------
# Traffic generation
# ---------------------------------------------------------------------------


def generate_traffic(
    templates: Sequence[QueryTemplate],
    spec: TrafficSpec,
    *,
    seed: Optional[int] = None,
) -> List[Request]:
    """The deterministic request list of one run, sorted by arrival.

    One RNG drives every draw (tenant, template, parameters, oracle
    sampling, arrival schedule), so traffic is a pure function of
    ``(templates, spec)`` — the regression the RNG-hygiene tests pin.
    """
    if not templates:
        raise ValueError("at least one template is required")
    rng = random.Random(spec.seed if seed is None else seed)
    tenant_cdf = zipfian_cdf(spec.tenants, spec.zipf)
    template_cdf = zipfian_cdf(len(templates), spec.template_zipf)
    offsets = arrival_offsets(spec.arrival, spec.requests, rng)
    tenant_width = max(2, len(str(spec.tenants - 1)))
    requests: List[Request] = []
    for index in range(spec.requests):
        tenant_index = zipfian_index(rng, tenant_cdf)
        # Rotate the template ranking by tenant: each tenant's hottest
        # template is its own, so tenant skew and template skew compose
        # instead of collapsing onto one globally hot query.
        rank = zipfian_index(rng, template_cdf)
        template = templates[(rank + tenant_index) % len(templates)]
        query, params = template.instantiate(rng)
        requests.append(
            Request(
                index=index,
                arrival=offsets[index],
                tenant=f"t{tenant_index:0{tenant_width}d}",
                template_id=template.template_id,
                params=params,
                query=query,
                oracle=rng.random() < spec.oracle_sample,
            )
        )
    return requests
