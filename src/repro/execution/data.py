"""In-memory tables and tiny synthetic data generators for the executor.

The paper's experiments never execute the plans — they compare *estimated*
costs — but this reproduction includes a small iterator-model executor so
that the sharing machinery can be validated end to end: a consolidated plan
that materializes and reuses common subexpressions must return exactly the
same rows as the plain, unshared plans.  The generators here produce tiny,
referentially consistent TPC-D-like and A/B/C/D databases for those tests
and for the runnable examples.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Row", "Database", "tiny_tpcd_database", "example1_database"]

Row = Dict[str, object]


@dataclass
class Database:
    """A named collection of in-memory tables (lists of plain dict rows).

    The database carries a monotone :attr:`version` that is bumped by every
    mutation made through its API (``add_table``/``replace_table``/``touch``);
    caches of derived results — most importantly the serving layer's
    :class:`~repro.service.matcache.MaterializationCache` — compare versions
    to detect that their contents have gone stale.  Code that mutates table
    lists in place must call :meth:`touch` afterwards.
    """

    tables: Dict[str, List[Row]] = field(default_factory=dict)
    _version: int = field(default=0, repr=False, compare=False)
    _fingerprint: Optional[Tuple[int, str]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def version(self) -> int:
        """Monotone counter bumped on every data change."""
        return self._version

    def touch(self) -> int:
        """Record an out-of-band data change (in-place row mutation)."""
        self._version += 1
        return self._version

    def fingerprint(self) -> str:
        """A stable content hash of the data: equal bytes ⇒ equal fingerprint.

        This is the **durable** data-version token the serving layer stamps
        its caches with.  Unlike :attr:`version` (process-local) or the
        object's ``id()`` (restart-random), the fingerprint is derived from
        the table contents alone, so a restarted process that loads the
        same data computes the same token — which is exactly what lets a
        :class:`~repro.storage.spill.SpillingMaterializationCache` trust
        the spill files a previous process wrote, and makes files written
        against *different* data reliably stale.

        The hash is recomputed lazily per :attr:`version` (mutations
        invalidate the memo), and covers table names, row order and every
        key/value — table scans are order-sensitive, so row order is part
        of the identity.
        """
        if self._fingerprint is not None and self._fingerprint[0] == self._version:
            return self._fingerprint[1]
        # Capture the version BEFORE hashing: a mutation racing the hash
        # bumps the version and must invalidate this memo entry — caching
        # the (possibly torn) digest under the *new* version would hide the
        # data change from every token comparison that follows.
        version = self._version
        digest = hashlib.sha256()

        def chunk(data: bytes) -> None:
            # Every variable-length piece is length-prefixed: separator
            # characters alone would let differently-structured content
            # (e.g. a key containing the separator) collide.
            digest.update(b"%d:" % len(data))
            digest.update(data)

        for name in sorted(self.tables):
            rows = self.tables[name]
            chunk(name.encode("utf-8"))
            digest.update(b"%d;" % len(rows))
            for row in rows:
                digest.update(b"%d," % len(row))
                for key in sorted(row):
                    value = row[key]
                    chunk(key.encode("utf-8"))
                    chunk(type(value).__name__.encode("utf-8"))
                    chunk(repr(value).encode("utf-8"))
        value = digest.hexdigest()
        self._fingerprint = (version, value)
        return value

    def add_table(self, name: str, rows: Iterable[Row]) -> None:
        self.tables[name] = [dict(row) for row in rows]
        self._version += 1

    def replace_table(self, name: str, rows: Iterable[Row]) -> None:
        """Swap a table's contents (same as ``add_table`` but requires existence)."""
        if name not in self.tables:
            raise KeyError(f"unknown table {name!r}")
        self.add_table(name, rows)

    def table(self, name: str) -> List[Row]:
        if name not in self.tables:
            raise KeyError(f"unknown table {name!r}")
        return self.tables[name]

    def row_count(self, name: str) -> int:
        return len(self.table(name))

    def __contains__(self, name: str) -> bool:
        return name in self.tables


def tiny_tpcd_database(
    *,
    seed: int = 0,
    customers: int = 40,
    suppliers: int = 10,
    parts: int = 30,
    orders: int = 120,
    max_lines_per_order: int = 4,
) -> Database:
    """A tiny but referentially consistent TPC-D-like database.

    Cardinalities are intentionally small (hundreds of rows) so that
    executor-level correctness tests run in milliseconds; the schema matches
    :func:`repro.catalog.tpcd.tpcd_catalog`.
    """
    rng = random.Random(seed)
    db = Database()

    regions = [
        {"r_regionkey": i, "r_name": name, "r_comment": f"region {i}"}
        for i, name in enumerate(["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"])
    ]
    db.add_table("region", regions)

    nation_names = [
        "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
        "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
        "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
        "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
    ]
    nations = [
        {
            "n_nationkey": i,
            "n_name": name,
            "n_regionkey": i % 5,
            "n_comment": f"nation {i}",
        }
        for i, name in enumerate(nation_names)
    ]
    db.add_table("nation", nations)

    db.add_table(
        "supplier",
        [
            {
                "s_suppkey": i + 1,
                "s_name": f"Supplier#{i + 1:04d}",
                "s_address": f"addr-{i}",
                "s_nationkey": rng.randrange(25),
                "s_phone": f"27-{i:03d}",
                "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "s_comment": "",
            }
            for i in range(suppliers)
        ],
    )

    segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
    db.add_table(
        "customer",
        [
            {
                "c_custkey": i + 1,
                "c_name": f"Customer#{i + 1:06d}",
                "c_address": f"addr-{i}",
                "c_nationkey": rng.randrange(25),
                "c_phone": f"13-{i:03d}",
                "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "c_mktsegment": rng.choice(segments),
                "c_comment": "",
            }
            for i in range(customers)
        ],
    )

    db.add_table(
        "part",
        [
            {
                "p_partkey": i + 1,
                "p_name": f"part {i + 1}",
                "p_mfgr": f"Manufacturer#{1 + i % 5}",
                "p_brand": f"Brand#{1 + i % 25}",
                "p_type": f"TYPE {i % 150}",
                "p_size": 1 + rng.randrange(50),
                "p_container": f"BOX {i % 40}",
                "p_retailprice": round(900 + rng.uniform(0, 1200), 2),
                "p_comment": "",
            }
            for i in range(parts)
        ],
    )

    partsupp: List[Row] = []
    for part_index in range(parts):
        for supplier_key in rng.sample(range(1, suppliers + 1), min(2, suppliers)):
            partsupp.append(
                {
                    "ps_partkey": part_index + 1,
                    "ps_suppkey": supplier_key,
                    "ps_availqty": rng.randrange(1, 9999),
                    "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                    "ps_comment": "",
                }
            )
    db.add_table("partsupp", partsupp)

    order_rows: List[Row] = []
    lineitem_rows: List[Row] = []
    line_counter = 0
    for order_index in range(orders):
        order_key = order_index + 1
        order_date = 19920101 + rng.randrange(0, 60000)
        order_rows.append(
            {
                "o_orderkey": order_key,
                "o_custkey": rng.randrange(1, customers + 1),
                "o_orderstatus": rng.choice(["F", "O", "P"]),
                "o_totalprice": round(rng.uniform(850, 560000), 2),
                "o_orderdate": order_date,
                "o_orderpriority": f"{1 + rng.randrange(5)}-PRIORITY",
                "o_clerk": f"Clerk#{rng.randrange(100):03d}",
                "o_shippriority": 0,
                "o_comment": "",
            }
        )
        for line_number in range(1, rng.randrange(1, max_lines_per_order + 1) + 1):
            line_counter += 1
            ps = rng.choice(partsupp)
            lineitem_rows.append(
                {
                    "l_orderkey": order_key,
                    "l_partkey": ps["ps_partkey"],
                    "l_suppkey": ps["ps_suppkey"],
                    "l_linenumber": line_number,
                    "l_quantity": float(rng.randrange(1, 51)),
                    "l_extendedprice": round(rng.uniform(900, 105000), 2),
                    "l_discount": round(rng.choice(range(0, 11)) / 100.0, 2),
                    "l_tax": round(rng.choice(range(0, 9)) / 100.0, 2),
                    "l_returnflag": rng.choice(["A", "N", "R"]),
                    "l_linestatus": rng.choice(["F", "O"]),
                    "l_shipdate": order_date + rng.randrange(1, 200),
                    "l_commitdate": order_date + rng.randrange(1, 200),
                    "l_receiptdate": order_date + rng.randrange(1, 250),
                    "l_shipinstruct": "NONE",
                    "l_shipmode": rng.choice(["AIR", "RAIL", "SHIP", "TRUCK"]),
                    "l_comment": "",
                }
            )
    db.add_table("orders", order_rows)
    db.add_table("lineitem", lineitem_rows)
    return db


def example1_database(
    *, seed: int = 0, large_rows: int = 600, small_rows: int = 60
) -> Database:
    """Data for the Example-1 catalog (relations a, b, c, d with chained joins).

    Mirrors :func:`repro.workloads.synthetic.example1_catalog`: B is the
    large relation, A/C/D are small, ``a_join`` references ``b_key``,
    ``b_join`` references ``c_key`` and ``c_join`` references ``d_key``.
    """
    rng = random.Random(seed)
    db = Database()
    sizes = {"a": small_rows, "b": large_rows, "c": small_rows, "d": small_rows}
    join_targets = {"a": large_rows, "b": small_rows * 10, "c": small_rows, "d": small_rows}
    for name in ("a", "b", "c", "d"):
        db.add_table(
            name,
            [
                {
                    f"{name}_key": i,
                    f"{name}_join": rng.randrange(join_targets[name]),
                    f"{name}_payload": f"{name}-{i}",
                }
                for i in range(sizes[name])
            ],
        )
    return db
