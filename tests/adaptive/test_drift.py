"""Unit tests for the drift detector."""

import pytest

from repro.adaptive import DriftDetector, FeedbackStatsStore
from repro.adaptive.drift import AdaptiveConfig


@pytest.fixture()
def stats_for():
    store = FeedbackStatsStore(ewma_alpha=1.0)

    def make(rows, observations=1):
        entry = None
        for _ in range(observations):
            entry = store.record(f"k{rows}", rows=rows)
        return entry

    return make


class TestRatio:
    def test_symmetric(self):
        assert DriftDetector.ratio(100, 10) == pytest.approx(10.0)
        assert DriftDetector.ratio(10, 100) == pytest.approx(10.0)
        assert DriftDetector.ratio(100, 100) == 1.0

    def test_floored_at_one_row(self):
        # 0 observed rows vs an estimate of 5 is a factor of 5, not infinity.
        assert DriftDetector.ratio(5, 0) == 5.0
        assert DriftDetector.ratio(0, 0) == 1.0


class TestCheck:
    def test_within_threshold_is_quiet(self, stats_for):
        detector = DriftDetector(threshold=2.0)
        assert detector.check(100.0, stats_for(180)) is None
        assert detector.check(100.0, stats_for(55)) is None

    def test_beyond_threshold_fires_in_both_directions(self, stats_for):
        detector = DriftDetector(threshold=2.0)
        over = detector.check(100.0, stats_for(500))
        assert over is not None and over.ratio == pytest.approx(5.0)
        assert over.observed == 500.0 and over.estimated == 100.0
        under = detector.check(100.0, stats_for(10))
        assert under is not None and under.ratio == pytest.approx(10.0)
        assert "drift" in over.describe()

    def test_no_stats_is_never_drift(self):
        detector = DriftDetector(threshold=2.0)
        assert detector.check(100.0, None) is None

    def test_min_observations_gate(self, stats_for):
        detector = DriftDetector(threshold=2.0, min_observations=3)
        assert detector.check(100.0, stats_for(900, observations=2)) is None
        assert detector.check(100.0, stats_for(901, observations=3)) is not None

    def test_min_confidence_gate(self, stats_for):
        detector = DriftDetector(threshold=2.0, min_confidence=0.5)
        assert detector.check(100.0, stats_for(902), confidence=0.4) is None
        assert detector.check(100.0, stats_for(903), confidence=0.6) is not None

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.5},
        {"min_observations": 0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            DriftDetector(**kwargs)


class TestConfig:
    def test_defaults_are_enabled_with_paper_ish_knobs(self):
        config = AdaptiveConfig()
        assert config.enabled
        assert config.drift_threshold == 2.0
        assert config.benefit_cache_policy

    def test_disabled_config_flag(self):
        assert not AdaptiveConfig(enabled=False).enabled
