"""End-to-end observability for the serving stack: metrics + tracing.

The package is **zero-dependency** (stdlib only) and sits below every other
``repro`` package — :mod:`repro.adaptive`, :mod:`repro.service`,
:mod:`repro.execution` and :mod:`repro.storage` all import it, it imports
none of them.

Two halves, one handle:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket latency histograms (p50/p95/p99), with
  JSON snapshots and Prometheus text exposition.  The serving layer's
  public statistics classes are live *views* over a registry, so every
  historical counter keeps its exact field and value while gaining an
  exposition format.
* :mod:`repro.obs.trace` — a span :class:`Tracer` with per-request trace
  IDs, explicit cross-thread propagation and sampled JSONL output; its
  disabled twin :data:`NULL_TRACER` is a true no-op for the hot path.

:class:`Observability` bundles one registry + one tracer + the label set
identifying the component holding it; ``child(shard="2")`` derives the
per-shard handle a :class:`~repro.service.pool.SessionPool` gives each of
its sessions — same registry, same tracer, one more label.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    Labels,
    LabelsLike,
    MetricsRegistry,
    StatisticsView,
    metric_field,
    normalize_labels,
)
from .trace import (
    InMemorySink,
    JsonlTraceWriter,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "InMemorySink",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "Span",
    "StatisticsView",
    "Tracer",
    "metric_field",
    "normalize_labels",
]


class Observability:
    """One registry + one tracer + the labels of the component holding them.

    Args:
        registry: the metrics registry; a private one is created when
            omitted, so a bare ``Observability()`` is always functional.
        tracer: the span tracer; tracing is *disabled* (:data:`NULL_TRACER`)
            when omitted — metrics are cheap enough to be always-on,
            tracing is opt-in.
        labels: identity labels stamped on every metric created through
            this handle and exposed to span emitters (e.g. ``shard="3"``).
    """

    __slots__ = ("registry", "tracer", "labels")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        labels: LabelsLike = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.labels: Labels = normalize_labels(labels)

    def child(self, **labels: object) -> "Observability":
        """The same registry and tracer under additional identity labels."""
        merged = dict(self.labels)
        merged.update({k: str(v) for k, v in labels.items()})
        return Observability(self.registry, self.tracer, merged)

    def counter(self, name: str, **labels: object) -> Counter:
        return self.registry.counter(name, self._merged(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.registry.gauge(name, self._merged(labels))

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.registry.histogram(name, self._merged(labels))

    def observe_latency(self, name: str, seconds: float, **labels: object) -> None:
        """Record one latency observation under this handle's labels."""
        self.registry.histogram(name, self._merged(labels)).observe(seconds)

    def _merged(self, labels: dict) -> Labels:
        if not labels:
            return self.labels
        merged = dict(self.labels)
        merged.update({k: str(v) for k, v in labels.items()})
        return normalize_labels(merged)
