"""The built-in materialization-selection strategies.

These are the five strategies of the reproduction, previously hard-coded in
``repro.core.mqo``:

``"volcano"``
    No sharing at all — every query gets its individually optimal plan
    (``bestCost(Q, ∅)``); the baseline of the paper's experiments.
``"greedy"``
    The Greedy algorithm of Roy et al. (Algorithm 1), optionally lazy.
``"marginal-greedy"``
    The paper's MarginalGreedy algorithm (Algorithm 2) on the MQO
    decomposition, optionally lazy.
``"share-all"``
    Materialize every shareable node (the heuristic of approaches that
    materialize all common subexpressions, e.g. Silva et al.).
``"exhaustive"``
    Enumerate subsets of the candidate universe (only feasible for tiny
    universes, or with a cardinality bound; validates the greedy strategies).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..benefit import BestCostFunction, mqo_decomposition
from ..exhaustive import enumeration_size, minimize
from ..greedy import greedy, lazy_greedy
from ..marginal_greedy import lazy_marginal_greedy, marginal_greedy
from ..set_functions import CallCountingFunction
from .base import Strategy, StrategyContext, ordered_selection
from .registry import register_strategy

__all__ = [
    "VolcanoStrategy",
    "GreedyStrategy",
    "MarginalGreedyStrategy",
    "ShareAllStrategy",
    "ExhaustiveStrategy",
]

#: Hard limit on unbounded exhaustive searches (2**16 plan evaluations).
EXHAUSTIVE_MAX_CANDIDATES = 16


@register_strategy
class VolcanoStrategy(Strategy):
    """Materialize nothing: the plain-Volcano no-sharing baseline."""

    name = "volcano"

    def select(self, context: StrategyContext) -> Tuple:
        return ()


@register_strategy
class GreedyStrategy(Strategy):
    """Greedy of Roy et al. driven directly by the ``bestCost`` oracle."""

    name = "greedy"

    def select(self, context: StrategyContext) -> Iterable:
        oracle = CallCountingFunction(BestCostFunction(context.engine))
        run = (lazy_greedy if context.lazy else greedy)(
            oracle, cardinality=context.cardinality
        )
        return run.selected


@register_strategy
class MarginalGreedyStrategy(Strategy):
    """The paper's MarginalGreedy on the chosen MQO decomposition."""

    name = "marginal-greedy"

    def select(self, context: StrategyContext) -> Iterable:
        problem = mqo_decomposition(context.engine, kind=context.decomposition)
        run = (lazy_marginal_greedy if context.lazy else marginal_greedy)(
            problem, cardinality=context.cardinality
        )
        return run.selected


@register_strategy
class ShareAllStrategy(Strategy):
    """Materialize every shareable node (cardinality-truncated if bounded)."""

    name = "share-all"

    def select(self, context: StrategyContext) -> Iterable:
        selected = ordered_selection(context.dag.shareable_nodes())
        if context.cardinality is not None:
            selected = selected[: context.cardinality]
        return selected


@register_strategy
class ExhaustiveStrategy(Strategy):
    """Brute-force the optimal materialization set (tiny universes only).

    Without a cardinality bound the universe is limited to
    ``EXHAUSTIVE_MAX_CANDIDATES`` nodes; with a bound the search is allowed
    whenever the ``Σ_{k≤c} C(n, k)`` subsets it enumerates stay within the
    same budget, so small cardinalities remain feasible on larger DAGs.
    """

    name = "exhaustive"

    def select(self, context: StrategyContext) -> Iterable:
        oracle = BestCostFunction(context.engine)
        budget = 2 ** EXHAUSTIVE_MAX_CANDIDATES
        if enumeration_size(len(oracle.universe), context.cardinality) > budget:
            raise ValueError(
                "exhaustive strategy is limited to at most "
                f"{EXHAUSTIVE_MAX_CANDIDATES} materialization candidates "
                "(or an equivalently small cardinality-bounded search)"
            )
        best = minimize(
            oracle,
            cardinality=context.cardinality,
            max_universe=EXHAUSTIVE_MAX_CANDIDATES,
        )
        return best.best_set
