"""The serving layer: persistent cross-batch optimization.

Where :class:`~repro.core.mqo.MultiQueryOptimizer` answers "optimize this
batch", this package answers "serve this *traffic*":

* :class:`~repro.service.session.OptimizerSession` keeps the catalog, cost
  model, fingerprint-interned memo and warm ``bestCost`` engines alive
  across batches, and
* :class:`~repro.service.scheduler.BatchScheduler` micro-batches
  individually submitted queries and runs them through the session on a
  thread pool.
"""

from .session import OptimizerSession, PreparedBatch, SessionStatistics
from .scheduler import BatchScheduler, QueryOutcome

__all__ = [
    "OptimizerSession",
    "PreparedBatch",
    "SessionStatistics",
    "BatchScheduler",
    "QueryOutcome",
]
