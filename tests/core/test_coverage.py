"""Tests for Max Coverage, Set Cover and the Profitted Max Coverage construction."""

import pytest

from repro.core.coverage import (
    CoverageFunction,
    MaxCoverageInstance,
    ProfittedMaxCoverage,
    greedy_max_coverage,
    greedy_set_cover,
    perfect_cover_instance,
    random_instance,
)
from repro.core.exhaustive import maximize


def small_instance():
    return MaxCoverageInstance(
        ground_set=frozenset(range(6)),
        subsets=(
            frozenset({0, 1, 2}),
            frozenset({3, 4, 5}),
            frozenset({0, 3}),
            frozenset({5}),
        ),
        budget=2,
    )


class TestMaxCoverageInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            MaxCoverageInstance(frozenset({1}), (frozenset({2}),), budget=1)
        with pytest.raises(ValueError):
            MaxCoverageInstance(frozenset({1}), (frozenset({1}),), budget=0)

    def test_coverage_and_is_cover(self):
        inst = small_instance()
        assert inst.coverage([0, 1]) == inst.ground_set
        assert inst.is_cover([0, 1])
        assert not inst.is_cover([0, 2])
        assert inst.n_elements == 6
        assert inst.n_subsets == 4


class TestCoverageFunction:
    def test_is_monotone_submodular_normalized(self):
        fn = CoverageFunction(small_instance())
        assert fn.is_monotone()
        assert fn.is_submodular()
        assert fn.is_normalized()

    def test_values(self):
        fn = CoverageFunction(small_instance())
        assert fn.value({0}) == 3.0
        assert fn.value({0, 1}) == 6.0
        assert fn.value({0, 2}) == 4.0


class TestGreedyCoverageAlgorithms:
    def test_greedy_set_cover_covers(self):
        inst = small_instance()
        picked = greedy_set_cover(inst)
        assert inst.is_cover(picked)

    def test_greedy_set_cover_uncoverable(self):
        inst = MaxCoverageInstance(frozenset({1, 2}), (frozenset({1}),), budget=1)
        with pytest.raises(ValueError):
            greedy_set_cover(inst)

    def test_greedy_max_coverage_budget(self):
        inst = small_instance()
        picked = greedy_max_coverage(inst)
        assert len(picked) <= inst.budget
        assert inst.coverage(picked) == inst.ground_set

    def test_greedy_max_coverage_near_optimal(self):
        inst = random_instance(n_elements=20, n_subsets=10, budget=3, seed=1)
        picked = greedy_max_coverage(inst)
        fn = CoverageFunction(inst)
        optimum = maximize(fn, cardinality=inst.budget)
        assert fn.value(picked) >= (1 - 1 / 2.718281828) * optimum.best_value - 1e-9


class TestProfittedMaxCoverage:
    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            ProfittedMaxCoverage(small_instance(), gamma=0.0)

    def test_perfect_cover_value_is_one(self):
        inst = perfect_cover_instance(n_elements=12, cover_size=3, n_decoys=2, seed=0)
        problem = ProfittedMaxCoverage(inst, gamma=2.0)
        cover_indices = frozenset(range(3))
        assert problem.objective.value(cover_indices) == pytest.approx(1.0)
        assert problem.value_of_perfect_cover() == 1.0

    def test_gamma_relation_at_perfect_cover(self):
        inst = perfect_cover_instance(n_elements=12, cover_size=3, seed=1)
        gamma = 2.5
        problem = ProfittedMaxCoverage(inst, gamma=gamma)
        cover = frozenset(range(3))
        f_val = problem.objective.value(cover)
        c_val = problem.cost.value(cover)
        assert f_val / c_val == pytest.approx(gamma)

    def test_objective_is_normalized_submodular(self):
        problem = ProfittedMaxCoverage(small_instance(), gamma=2.0)
        assert problem.objective.is_normalized()
        assert problem.objective.is_submodular()
        assert problem.monotone.is_monotone()
        assert problem.cost.is_additive()

    def test_decomposition_valid(self):
        problem = ProfittedMaxCoverage(small_instance(), gamma=2.0)
        dec = problem.decomposition()
        for subset in ({0}, {0, 1}, {2, 3}, set(range(4))):
            assert dec.consistency_error(frozenset(subset)) < 1e-9


class TestGenerators:
    def test_random_instance_coverable(self):
        inst = random_instance(n_elements=25, n_subsets=6, budget=3, seed=5)
        assert inst.coverage(range(inst.n_subsets)) == inst.ground_set

    def test_random_instance_deterministic(self):
        a = random_instance(n_elements=10, n_subsets=4, budget=2, seed=9)
        b = random_instance(n_elements=10, n_subsets=4, budget=2, seed=9)
        assert a.subsets == b.subsets

    def test_perfect_cover_instance_structure(self):
        inst = perfect_cover_instance(n_elements=20, cover_size=4, n_decoys=3, seed=2)
        assert inst.budget == 4
        assert inst.n_subsets == 7
        assert inst.is_cover(range(4))

    def test_perfect_cover_requires_divisibility(self):
        with pytest.raises(ValueError):
            perfect_cover_instance(n_elements=10, cover_size=3)
