"""Per-line lint suppressions with a *required* written reason.

Syntax (trailing on the flagged line, or on a standalone comment line
immediately above it)::

    self.policy = policy or CostLRUPolicy()  # repro-lint: disable=falsy-default -- policy objects are never falsy

    # repro-lint: disable=bare-except-swallow -- best-effort temp sweep; cold start is the fallback
    except OSError:
        pass

Several ids separate with commas.  The reason after ``--`` is mandatory: a
suppression without one suppresses **nothing** and is itself reported as a
``suppression-missing-reason`` finding — the whole point of the comment is
to leave the rationale next to the code it excuses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = ["MISSING_REASON_ID", "Suppression", "scan_suppressions"]

#: Checker id of the "suppression comment lacks a reason" meta-finding.
MISSING_REASON_ID = "suppression-missing-reason"

_COMMENT_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s+--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment, already resolved to its target line."""

    line: int  # the line whose findings it covers (1-based)
    ids: Tuple[str, ...]
    reason: str

    def covers(self, checker: str) -> bool:
        return checker in self.ids or "all" in self.ids


def scan_suppressions(
    lines: Sequence[str], path: str
) -> Tuple[Dict[int, List[Suppression]], List[Finding]]:
    """Parse every suppression comment of one module.

    Returns ``(by_line, malformed)``: suppressions keyed by the line they
    cover, plus one :data:`MISSING_REASON_ID` finding per comment whose
    reason is missing (those comments are *not* entered into ``by_line`` —
    they suppress nothing).

    A comment on a code line covers that line.  A comment that is alone on
    its line covers the next non-blank, non-comment line — the indent-
    friendly form for statements too long to host a trailing comment.
    """
    by_line: Dict[int, List[Suppression]] = {}
    malformed: List[Finding] = []
    for index, text in enumerate(lines, start=1):
        match = _COMMENT_RE.search(text)
        if match is None:
            continue
        reason = match.group("reason")
        if not reason:
            malformed.append(
                Finding(
                    path=path,
                    line=index,
                    col=match.start(),
                    checker=MISSING_REASON_ID,
                    message=(
                        "suppression comment has no reason; write "
                        "'# repro-lint: disable=<id> -- <why this is safe>' "
                        "(the suppression was not honored)"
                    ),
                )
            )
            continue
        ids = tuple(part.strip() for part in match.group("ids").split(","))
        target = index
        if text[: match.start()].strip() == "":
            # Standalone comment line: cover the next real code line.
            target = _next_code_line(lines, index)
        by_line.setdefault(target, []).append(
            Suppression(line=target, ids=ids, reason=reason)
        )
    return by_line, malformed


def _next_code_line(lines: Sequence[str], comment_line: int) -> int:
    for index in range(comment_line + 1, len(lines) + 1):
        stripped = lines[index - 1].strip()
        if stripped and not stripped.startswith("#"):
            return index
    return comment_line
