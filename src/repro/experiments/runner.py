"""Command-line experiment runner.

``python -m repro.experiments`` regenerates every figure of the paper and
prints the result tables; ``--quick`` runs a reduced configuration (fewer
batches, one scale factor) that finishes in a couple of minutes on a
laptop, and ``--output`` additionally writes the tables as markdown.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .example1 import run_example1
from .experiment1 import run_experiment1
from .experiment2 import run_experiment2
from .reporting import ResultTable
from .theory import run_theory_experiment

__all__ = ["run_all", "main"]


def run_all(
    *,
    quick: bool = False,
    scale_factors: Optional[Sequence[float]] = None,
    verbose: bool = True,
) -> List[ResultTable]:
    """Run every experiment and return the resulting tables."""
    scales = tuple(scale_factors) if scale_factors else ((1.0,) if quick else (1.0, 100.0))
    max_batches = 3 if quick else 6
    tables: List[ResultTable] = []

    outcome = run_example1()
    tables.append(outcome.table())

    exp1 = run_experiment1(scale_factors=scales, max_batches=max_batches, verbose=verbose)
    tables.extend(exp1.tables())

    exp2 = run_experiment2(scale_factors=scales, verbose=verbose)
    tables.extend(exp2.tables())

    theory = run_theory_experiment()
    tables.append(theory.table())
    return tables


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the figures of 'Efficient and Provable Multi-Query Optimization'",
    )
    parser.add_argument("--quick", action="store_true", help="reduced configuration (BQ1–BQ3, scale 1 only)")
    parser.add_argument(
        "--scale",
        type=float,
        action="append",
        help="database scale factor(s) to use (default: 1 and 100)",
    )
    parser.add_argument("--output", type=Path, help="write the tables as markdown to this file")
    parser.add_argument("--quiet", action="store_true", help="do not print per-measurement progress")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    tables = run_all(quick=args.quick, scale_factors=args.scale, verbose=not args.quiet)
    elapsed = time.perf_counter() - started

    for table in tables:
        print()
        print(table.to_text())
    print(f"\nAll experiments finished in {elapsed:.1f}s")

    if args.output:
        content = "\n\n".join(table.to_markdown() for table in tables)
        args.output.write_text(content + "\n", encoding="utf-8")
        print(f"Markdown written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
