"""Differential correctness harness: every strategy returns the same rows.

The trustworthiness of the serving layer rests on one invariant: whatever
materialization set a strategy picks — none (volcano), everything
(share-all), or a cost-chosen subset (greedy, marginal-greedy, exhaustive)
— executing the consolidated plan must return exactly the same multiset of
rows per query.  This module checks that invariant differentially on random
star-join batches and on TPC-D-style batches where sharing actually pays
off, and additionally *forces* shared executions (materialization sets the
strategies would not choose, including sorted variants) so the shared
execution path is exercised even when sharing is unprofitable.
"""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, lt
from repro.algebra.logical import QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.execution import Executor, tiny_tpcd_database
from repro.service import OptimizerSession
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)

ALL_STRATEGIES = ("volcano", "greedy", "marginal-greedy", "share-all", "exhaustive")


def compare_all(session, batch):
    """Run every registered strategy; only exhaustive gets a cardinality bound.

    (The bound keeps exhaustive enumeration tractable; applying it to the
    other strategies would change — and sometimes suppress — their choices.)
    """
    results = session.compare(batch, strategies=ALL_STRATEGIES[:-1])
    results.update(session.compare(batch, strategies=("exhaustive",), cardinality=2))
    return results


def canonical(rows):
    """Order-independent (multiset) canonical form of a list of result rows."""
    return sorted(
        tuple(
            sorted(
                (k, round(v, 6) if isinstance(v, float) else v) for k, v in row.items()
            )
        )
        for row in rows
    )


@pytest.fixture(scope="module")
def star_catalog():
    return star_schema_catalog(n_dimensions=4)


@pytest.fixture(scope="module")
def star_db():
    return star_schema_database(seed=9, n_dimensions=4)


class TestAllStrategiesRowIdentical:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_random_star_batches(self, star_catalog, star_db, seed):
        batch = random_star_batch(4, seed=seed, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        results = compare_all(session, batch)
        assert set(results) == set(ALL_STRATEGIES)
        executed = {
            name: Executor(star_db).execute_result(result.plan)
            for name, result in results.items()
        }
        reference = executed["volcano"]
        assert any(reference[q] for q in reference), "batch should return some rows"
        for name, rows in executed.items():
            for query_name in reference:
                assert canonical(rows[query_name]) == canonical(
                    reference[query_name]
                ), f"strategy {name} diverges on {query_name} (seed {seed})"

    def test_tpcd_pair_with_profitable_sharing(self):
        """A batch where the greedy strategies really materialize something.

        At scale factor 1 the greedy strategies store the shared
        (subsumption-derived) orders⋈lineitem node *sorted*, so this also
        covers reuse of a sorted materialization; the data stays tiny —
        statistics drive planning, not execution.
        """
        catalog = tpcd_catalog(1.0)
        db = tiny_tpcd_database(seed=7, orders=200)

        def make(name, cutoff):
            return (
                qb.scan("orders")
                .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
                .filter(lt(col("o_orderdate"), cutoff))
                .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
                .query(name)
            )

        batch = QueryBatch("pair", (make("A", 19960101), make("B", 19970101)))
        session = OptimizerSession(catalog)
        results = compare_all(session, batch)
        assert any(r.materialized_count >= 1 for r in results.values()), (
            "the harness should cover at least one genuinely shared execution"
        )
        executed = {
            name: Executor(db).execute_result(result.plan)
            for name, result in results.items()
        }
        reference = executed["volcano"]
        for name, rows in executed.items():
            for query_name in reference:
                assert canonical(rows[query_name]) == canonical(reference[query_name]), (
                    f"strategy {name} diverges on {query_name}"
                )


class TestForcedSharedExecution:
    """Shared execution checked independently of what the strategies choose."""

    @pytest.mark.parametrize("seed", [3, 4])
    def test_forced_materialization_sets(self, star_catalog, star_db, seed):
        batch = random_star_batch(3, seed=seed, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        prepared = session.prepare(batch)
        dag, engine = prepared.dag, prepared.engine
        shareable = dag.shareable_nodes()
        assert shareable, "star batches must expose shareable nodes"

        reference = Executor(star_db).execute_result(engine.evaluate(frozenset()))
        for count in (1, min(3, len(shareable)), len(shareable)):
            forced = engine.evaluate(frozenset(shareable[:count]))
            assert len(forced.materialization_plans) == count
            rows = Executor(star_db).execute_result(forced)
            for query_name in reference:
                assert canonical(rows[query_name]) == canonical(reference[query_name]), (
                    f"forced sharing of {count} nodes diverges on {query_name}"
                )

    def test_forced_sorted_variants(self, star_catalog, star_db):
        """Materializing *sorted* variants must not change any result rows."""
        batch = random_star_batch(3, seed=6, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        prepared = session.prepare(batch)
        dag, engine = prepared.dag, prepared.engine
        sorted_candidates = [c for c in dag.shareable_candidates() if c.order][:3]
        assert sorted_candidates, "expected sorted materialization candidates"

        reference = Executor(star_db).execute_result(engine.evaluate(frozenset()))
        forced = engine.evaluate(frozenset(sorted_candidates))
        rows = Executor(star_db).execute_result(forced)
        for query_name in reference:
            assert canonical(rows[query_name]) == canonical(reference[query_name])
