"""Benchmark for the Theorem-1 empirical check (the theory counterpart).

The paper proves its approximation factor rather than plotting it; this
harness measures MarginalGreedy against the exhaustive optimum and the
Theorem-1 guarantee on Profitted Max Coverage instances (the objective
family from the Section-4 hardness construction).
"""

import pytest

from repro.experiments.theory import run_theory_experiment


@pytest.mark.benchmark(group="theorem-1")
def test_theorem1_bound_empirically(benchmark):
    results = benchmark.pedantic(
        lambda: run_theory_experiment(n_random_instances=12, n_perfect_instances=6),
        rounds=1,
        iterations=1,
    )
    print()
    print(results.table().to_text())
    assert results.all_bounds_satisfied
    # Empirically MarginalGreedy lands far above the worst-case guarantee.
    assert results.mean_achieved_ratio >= 0.9
