"""The resource-consumption cost model.

The paper's experiments use "standard resource consumption estimates which
contain an I/O component and a CPU component, with seek time as 10 msec,
transfer time of 2 msec/block for read and 4 msec/block for write, and CPU
cost of 0.2 msec/block of data processed", a block size of 4KB, and 6MB of
memory per operator (128MB in a second configuration).  All costs produced
by this module are in milliseconds; the experiment harness converts to
seconds for reporting.

The physical operators match the original rule set: relation scan, indexed
selection, (block and index) nested-loop join, merge join, external sort and
sort-based aggregation, plus the materialize / read-materialized operators
the MQO layer introduces.  Costs are composable: an operator's cost covers
only its own work, and the plan DP adds children costs (inputs are assumed
to be pipelined, as in the Volcano iterator model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["CostParameters", "CostModel", "DEFAULT_COST_PARAMETERS"]


@dataclass(frozen=True)
class CostParameters:
    """The calibration constants of the cost model (paper's Section 6 values)."""

    block_size: int = 4096
    seek_ms: float = 10.0
    read_ms_per_block: float = 2.0
    write_ms_per_block: float = 4.0
    cpu_ms_per_block: float = 0.2
    work_mem_bytes: int = 6 * 1024 * 1024

    @property
    def memory_blocks(self) -> int:
        """Number of in-memory buffer blocks available to one operator."""
        return max(3, self.work_mem_bytes // self.block_size)

    def with_memory(self, work_mem_bytes: int) -> "CostParameters":
        """A copy with a different per-operator memory budget (e.g. 128MB)."""
        return replace(self, work_mem_bytes=work_mem_bytes)


#: The configuration used for Experiment 1/2 (6MB per operator).
DEFAULT_COST_PARAMETERS = CostParameters()


@dataclass(frozen=True)
class CostModel:
    """Cost formulas for every physical operator, in milliseconds.

    Each method takes cardinalities (rows) and row widths (bytes) and
    returns the operator's own cost; plan-level composition is the
    optimizer's job.
    """

    parameters: CostParameters = DEFAULT_COST_PARAMETERS

    # -- helpers -----------------------------------------------------------

    def blocks(self, rows: float, row_width: float) -> float:
        """Number of blocks occupied by ``rows`` rows of ``row_width`` bytes."""
        if rows <= 0:
            return 1.0
        return max(1.0, math.ceil(rows * row_width / self.parameters.block_size))

    def _cpu(self, blocks: float) -> float:
        return blocks * self.parameters.cpu_ms_per_block

    def _read(self, blocks: float) -> float:
        return blocks * self.parameters.read_ms_per_block

    def _write(self, blocks: float) -> float:
        return blocks * self.parameters.write_ms_per_block

    # -- scans -------------------------------------------------------------

    def table_scan(self, rows: float, row_width: float) -> float:
        """Sequential scan of a stored relation."""
        b = self.blocks(rows, row_width)
        return self.parameters.seek_ms + self._read(b) + self._cpu(b)

    def indexed_selection(
        self, rows: float, row_width: float, selectivity: float
    ) -> float:
        """Clustered-index selection reading only the matching fraction.

        The clustered index keeps matching rows contiguous, so the I/O is the
        selected fraction of the relation's blocks plus one seek.
        """
        selectivity = min(max(selectivity, 0.0), 1.0)
        total_blocks = self.blocks(rows, row_width)
        matching = max(1.0, math.ceil(total_blocks * selectivity))
        return self.parameters.seek_ms + self._read(matching) + self._cpu(matching)

    # -- pipelined unary operators ------------------------------------------

    def filter(self, input_rows: float, row_width: float) -> float:
        """Predicate evaluation over a pipelined input (CPU only)."""
        return self._cpu(self.blocks(input_rows, row_width))

    def project(self, input_rows: float, row_width: float) -> float:
        """Column pruning over a pipelined input (CPU only, negligible)."""
        return self._cpu(self.blocks(input_rows, row_width)) * 0.5

    # -- sorting -------------------------------------------------------------

    def sort(self, rows: float, row_width: float) -> float:
        """External merge sort of a pipelined input.

        In-memory sorts cost only CPU; larger inputs pay one run-generation
        pass plus ``ceil(log_{M-1}(runs))`` merge passes of read+write I/O.
        """
        b = self.blocks(rows, row_width)
        memory = self.parameters.memory_blocks
        if b <= memory:
            return self._cpu(b) * 2.0
        runs = math.ceil(b / memory)
        fan_in = max(memory - 1, 2)
        merge_passes = max(1, math.ceil(math.log(runs, fan_in)))
        io_passes = 1 + merge_passes  # run generation + merges
        return (
            2.0 * self.parameters.seek_ms * io_passes
            + io_passes * (self._read(b) + self._write(b))
            + self._cpu(b) * io_passes
        )

    # -- joins ----------------------------------------------------------------

    def merge_join(
        self,
        left_rows: float,
        left_width: float,
        right_rows: float,
        right_width: float,
        output_rows: float,
    ) -> float:
        """Merge join of two inputs already sorted on the join keys (CPU only)."""
        b = self.blocks(left_rows, left_width) + self.blocks(right_rows, right_width)
        b_out = self.blocks(output_rows, left_width + right_width)
        return self._cpu(b) + self._cpu(b_out) * 0.5

    def nested_loop_join(
        self,
        outer_rows: float,
        outer_width: float,
        inner_rows: float,
        inner_width: float,
        inner_is_stored: bool,
    ) -> float:
        """Block nested-loops join.

        The outer input is consumed once (its cost is charged to its own
        sub-plan); the inner input must be rescanned once per outer chunk.
        If the inner is not a stored relation it is first spooled to a
        temporary file (one write pass), and every pass after the first one
        re-reads it from disk.
        """
        outer_blocks = self.blocks(outer_rows, outer_width)
        inner_blocks = self.blocks(inner_rows, inner_width)
        chunk = max(self.parameters.memory_blocks - 2, 1)
        passes = max(1, math.ceil(outer_blocks / chunk))
        cost = self._cpu(outer_blocks + passes * inner_blocks)
        rescans = passes if not inner_is_stored else passes - 1
        if not inner_is_stored:
            cost += self.parameters.seek_ms + self._write(inner_blocks)
        if rescans > 0:
            cost += rescans * (self.parameters.seek_ms + self._read(inner_blocks))
        return cost

    def index_nested_loop_join(
        self,
        outer_rows: float,
        inner_rows: float,
        inner_width: float,
        inner_distinct_keys: float,
    ) -> float:
        """Index nested-loops join probing a clustered index on the inner relation.

        Each outer row triggers one index lookup reading the contiguous block
        range holding its matches.
        """
        inner_blocks = self.blocks(inner_rows, inner_width)
        matches_per_probe = inner_rows / max(inner_distinct_keys, 1.0)
        blocks_per_probe = max(
            1.0, matches_per_probe * inner_width / self.parameters.block_size
        )
        per_probe = self.parameters.seek_ms * 0.5 + self._read(blocks_per_probe)
        probe_cost = outer_rows * per_probe
        # Probing can never be costlier than scanning the whole inner per chunk
        # of outer rows; cap it at a full-scan equivalent to avoid pathologies
        # for very large outer inputs.
        cap = outer_rows * self._cpu(1.0) + max(outer_rows / 1000.0, 1.0) * (
            self.parameters.seek_ms + self._read(inner_blocks)
        )
        return min(probe_cost, cap) + self._cpu(self.blocks(outer_rows, 8.0))

    # -- aggregation -----------------------------------------------------------

    def sort_aggregate(self, input_rows: float, input_width: float) -> float:
        """Sort-based aggregation over an input sorted on the grouping keys."""
        return self._cpu(self.blocks(input_rows, input_width))

    def scalar_aggregate(self, input_rows: float, input_width: float) -> float:
        """Aggregation without grouping (single output row)."""
        return self._cpu(self.blocks(input_rows, input_width))

    # -- materialization (the MQO operators) -------------------------------------

    def materialize(self, rows: float, row_width: float) -> float:
        """Write an intermediate result sequentially to disk for sharing."""
        b = self.blocks(rows, row_width)
        return self.parameters.seek_ms + self._write(b)

    def read_materialized(self, rows: float, row_width: float) -> float:
        """Re-read a previously materialized result (sequential scan)."""
        b = self.blocks(rows, row_width)
        return self.parameters.seek_ms + self._read(b) + self._cpu(b)
