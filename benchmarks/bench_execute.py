"""End-to-end execution benchmarks: cold vs. warm ``execute_batch``.

The serving acceptance bar for the execution layer, measured for **both**
executor backends (the row interpreter and the vectorized columnar
backend): re-executing a previously executed TPC-D composite batch through
a warm session must return bit-identical rows while performing **zero**
re-materializations (optimization is a result-cache hit, every shared
subexpression is a materialization-cache hit).  Besides the
pytest-benchmark timings, the module writes ``BENCH_execute.json`` at the
repository root recording the measured cold/warm execute latencies per
backend, for CI to upload as an artifact.  The row-vs-columnar speedup
headline lives in :mod:`benchmarks.bench_columnar`.
"""

import json
import time

import pytest

from _env import bench_path, scaled
from repro.catalog.tpcd import tpcd_catalog
from repro.execution import tiny_tpcd_database
from repro.service import OptimizerSession
from repro.workloads.batches import composite_batch

BACKENDS = ("row", "columnar")


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(1.0)


@pytest.fixture(scope="module")
def database():
    return tiny_tpcd_database(seed=3, orders=scaled(400, 60))


@pytest.fixture(scope="module", params=BACKENDS)
def warm_session(request, catalog, database):
    session = OptimizerSession(catalog, executor=request.param, database=database)
    session.execute_batch(composite_batch(2))
    return session


@pytest.mark.benchmark(group="execution")
@pytest.mark.parametrize("backend", BACKENDS)
def test_cold_execute_bq2(benchmark, catalog, database, backend):
    def cold():
        session = OptimizerSession(catalog, executor=backend, database=database)
        return session.execute_batch(composite_batch(2))

    execution = benchmark(cold)
    assert execution.rows


@pytest.mark.benchmark(group="execution")
def test_warm_execute_bq2(benchmark, warm_session):
    execution = benchmark(lambda: warm_session.execute_batch(composite_batch(2)))
    assert execution.materializations == 0


def test_warm_execute_identical_rows_zero_rematerializations(catalog, database):
    """The acceptance criterion, asserted per backend; writes BENCH_execute.json."""
    batch = composite_batch(2)
    report = {"batch": batch.name, "unit": "seconds", "backends": {}}

    reference_rows = None
    for backend in BACKENDS:
        session = OptimizerSession(catalog, executor=backend, database=database)
        started = time.perf_counter()
        cold = session.execute_batch(batch)
        cold_time = time.perf_counter() - started
        assert cold.result.materialized_count >= 1
        assert cold.materializations >= 1 and cold.cache_hits == 0

        warm = None
        warm_time = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            warm = session.execute_batch(batch)
            warm_time = min(warm_time, time.perf_counter() - started)
            assert warm.materializations == 0, "warm execution must not re-materialize"
            assert warm.cache_hits == cold.materializations
            assert warm.rows == cold.rows, "warm rows must be bit-identical to cold"

        if reference_rows is None:
            reference_rows = cold.rows
        else:
            assert cold.rows == reference_rows, "backends must return identical rows"

        report["strategy"] = cold.strategy
        report["backends"][backend] = {
            "cold_execute": cold_time,
            "warm_execute": warm_time,
            "cold_materializations": cold.materializations,
            "warm_materializations": warm.materializations,
            "warm_cache_hits": warm.cache_hits,
            "queries": len(cold.rows),
            "rows_returned": cold.row_count,
        }

    bench_path("BENCH_execute.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
