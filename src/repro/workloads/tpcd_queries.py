"""TPCD (TPC-H) query renditions used in the paper's experiments.

The paper's workloads are:

* **Experiment 1 (batched queries)** — TPCD queries Q3, Q5, Q7, Q8, Q9 and
  Q10, each repeated twice with different selection constants; composite
  batch ``BQi`` consists of the first ``i`` of these queries (so BQ1 has 2
  queries and BQ6 has 12).
* **Experiment 2 (stand-alone queries)** — Q2 (with its large nested
  subquery), Q2-D (a decorrelated version of Q2), Q11 and Q15, each of which
  contains common subexpressions *within* a single query.

The SQL text of TPC-H is reduced here to the join/selection/aggregation
skeleton that drives the optimizer: LIKE predicates are modelled as range
predicates of comparable selectivity, arithmetic inside aggregates is
dropped (``sum(l_extendedprice)`` instead of ``sum(price · (1−discount))``),
and the correlated subquery of Q2 is exposed to the optimizer the way Roy
et al. do — as an additional query block whose invariant part can be shared
(Q2) or as a decorrelated derived table (Q2-D).  None of these
simplifications changes which subexpressions are shareable, which is what
the experiments measure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..algebra import builder as qb
from ..algebra.expressions import between, col, eq, ge, gt, le, lt
from ..algebra.logical import Query, QueryBatch
from ..catalog.tpcd import tpcd_date

__all__ = [
    "q3",
    "q5",
    "q7",
    "q8",
    "q9",
    "q10",
    "q2_batch",
    "q2_decorrelated",
    "q11",
    "q15",
    "BATCHED_QUERY_BUILDERS",
    "batched_queries",
    "standalone_workloads",
]


# ---------------------------------------------------------------------------
# Experiment 1 queries (parameterised by their selection constants)
# ---------------------------------------------------------------------------


def q3(name: str = "Q3", segment: str = "BUILDING", date: int = tpcd_date(1995, 3, 15)) -> Query:
    """TPC-H Q3: shipping-priority revenue for one market segment."""
    return (
        qb.scan("customer")
        .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
        .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
        .filter(
            eq(col("c_mktsegment"), segment),
            lt(col("o_orderdate"), date),
            gt(col("l_shipdate"), date),
        )
        .aggregate(
            ["l_orderkey", "o_orderdate", "o_shippriority"],
            [("sum", "l_extendedprice", "revenue")],
        )
        .query(name)
    )


def q5(name: str = "Q5", region: str = "ASIA", year: int = 1994) -> Query:
    """TPC-H Q5: local-supplier revenue per nation within one region and year."""
    return (
        qb.scan("customer")
        .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
        .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
        .join(qb.scan("supplier"), eq(col("l_suppkey"), col("s_suppkey")))
        .join(qb.scan("nation"), eq(col("s_nationkey"), col("n_nationkey")))
        .join(qb.scan("region"), eq(col("n_regionkey"), col("r_regionkey")))
        .filter(
            eq(col("c_nationkey"), col("s_nationkey")),
            eq(col("r_name"), region),
            between(col("o_orderdate"), tpcd_date(year, 1, 1), tpcd_date(year, 12, 31)),
        )
        .aggregate(["n_name"], [("sum", "l_extendedprice", "revenue")])
        .query(name)
    )


def q7(
    name: str = "Q7", supplier_nation: str = "FRANCE", customer_nation: str = "GERMANY"
) -> Query:
    """TPC-H Q7: volume shipped between two nations (nation self-join)."""
    return (
        qb.scan("supplier")
        .join(qb.scan("lineitem"), eq(col("s_suppkey"), col("l_suppkey")))
        .join(qb.scan("orders"), eq(col("o_orderkey"), col("l_orderkey")))
        .join(qb.scan("customer"), eq(col("c_custkey"), col("o_custkey")))
        .join(qb.scan("nation", "n1"), eq(col("s_nationkey"), col("n1.n_nationkey")))
        .join(qb.scan("nation", "n2"), eq(col("c_nationkey"), col("n2.n_nationkey")))
        .filter(
            eq(col("n1.n_name"), supplier_nation),
            eq(col("n2.n_name"), customer_nation),
            between(col("l_shipdate"), tpcd_date(1995, 1, 1), tpcd_date(1996, 12, 31)),
        )
        .aggregate(
            ["n1.n_name", "n2.n_name", "l_shipdate"],
            [("sum", "l_extendedprice", "revenue")],
        )
        .query(name)
    )


def q8(
    name: str = "Q8",
    region: str = "AMERICA",
    part_size_low: int = 10,
    part_size_high: int = 15,
) -> Query:
    """TPC-H Q8: national market share within a region (8-way join).

    The ``p_type = 'ECONOMY ANODIZED STEEL'`` filter is modelled as a range
    on ``p_size`` of comparable selectivity.
    """
    return (
        qb.scan("part")
        .join(qb.scan("lineitem"), eq(col("p_partkey"), col("l_partkey")))
        .join(qb.scan("supplier"), eq(col("s_suppkey"), col("l_suppkey")))
        .join(qb.scan("orders"), eq(col("l_orderkey"), col("o_orderkey")))
        .join(qb.scan("customer"), eq(col("o_custkey"), col("c_custkey")))
        .join(qb.scan("nation", "n1"), eq(col("c_nationkey"), col("n1.n_nationkey")))
        .join(qb.scan("region"), eq(col("n1.n_regionkey"), col("r_regionkey")))
        .join(qb.scan("nation", "n2"), eq(col("s_nationkey"), col("n2.n_nationkey")))
        .filter(
            eq(col("r_name"), region),
            between(col("o_orderdate"), tpcd_date(1995, 1, 1), tpcd_date(1996, 12, 31)),
            between(col("p_size"), part_size_low, part_size_high),
        )
        .aggregate(["o_orderdate", "n2.n_name"], [("sum", "l_extendedprice", "volume")])
        .query(name)
    )


def q9(name: str = "Q9", part_size_low: int = 20, part_size_high: int = 30) -> Query:
    """TPC-H Q9: profit per nation and year (6-way join through partsupp).

    The ``p_name LIKE '%green%'`` filter is modelled as a range on
    ``p_size`` of comparable selectivity.
    """
    return (
        qb.scan("part")
        .join(qb.scan("lineitem"), eq(col("p_partkey"), col("l_partkey")))
        .join(qb.scan("supplier"), eq(col("s_suppkey"), col("l_suppkey")))
        .join(
            qb.scan("partsupp"),
            eq(col("ps_suppkey"), col("l_suppkey")),
        )
        .join(qb.scan("orders"), eq(col("o_orderkey"), col("l_orderkey")))
        .join(qb.scan("nation"), eq(col("s_nationkey"), col("n_nationkey")))
        .filter(
            eq(col("ps_partkey"), col("l_partkey")),
            between(col("p_size"), part_size_low, part_size_high),
        )
        .aggregate(["n_name", "o_orderdate"], [("sum", "l_extendedprice", "profit")])
        .query(name)
    )


def q10(name: str = "Q10", year: int = 1993, quarter_start_month: int = 10) -> Query:
    """TPC-H Q10: returned-item reporting for one quarter."""
    start = tpcd_date(year, quarter_start_month, 1)
    end_month = quarter_start_month + 3
    end_year = year + (1 if end_month > 12 else 0)
    end_month = end_month if end_month <= 12 else end_month - 12
    end = tpcd_date(end_year, end_month, 1)
    return (
        qb.scan("customer")
        .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
        .join(qb.scan("lineitem"), eq(col("l_orderkey"), col("o_orderkey")))
        .join(qb.scan("nation"), eq(col("c_nationkey"), col("n_nationkey")))
        .filter(
            ge(col("o_orderdate"), start),
            lt(col("o_orderdate"), end),
            eq(col("l_returnflag"), "R"),
        )
        .aggregate(
            ["c_custkey", "c_name", "c_acctbal", "n_name"],
            [("sum", "l_extendedprice", "revenue")],
        )
        .query(name)
    )


#: The Experiment-1 queries in the order used by the composite batches, each
#: with the two selection-constant variants the paper uses ("Each query was
#: repeated twice with different selection constants").
BATCHED_QUERY_BUILDERS: Tuple[Tuple[str, Tuple[Query, Query]], ...] = ()


def _build_batched_queries() -> Tuple[Tuple[str, Tuple[Query, Query]], ...]:
    return (
        ("Q3", (q3("Q3a", "BUILDING", tpcd_date(1995, 3, 15)),
                q3("Q3b", "BUILDING", tpcd_date(1995, 6, 30)))),
        ("Q5", (q5("Q5a", "ASIA", 1994), q5("Q5b", "ASIA", 1995))),
        ("Q7", (q7("Q7a", "FRANCE", "GERMANY"), q7("Q7b", "FRANCE", "RUSSIA"))),
        ("Q8", (q8("Q8a", "AMERICA", 10, 15), q8("Q8b", "AMERICA", 20, 25))),
        ("Q9", (q9("Q9a", 20, 30), q9("Q9b", 35, 45))),
        ("Q10", (q10("Q10a", 1993, 10), q10("Q10b", 1994, 1))),
    )


BATCHED_QUERY_BUILDERS = _build_batched_queries()


def batched_queries(count: int = 6) -> List[Query]:
    """The first ``count`` Experiment-1 queries, each repeated twice (2·count queries)."""
    if not 1 <= count <= len(BATCHED_QUERY_BUILDERS):
        raise ValueError(f"count must be between 1 and {len(BATCHED_QUERY_BUILDERS)}")
    queries: List[Query] = []
    for _, (first, second) in BATCHED_QUERY_BUILDERS[:count]:
        queries.append(first)
        queries.append(second)
    return queries


# ---------------------------------------------------------------------------
# Experiment 2 queries
# ---------------------------------------------------------------------------


def _q2_inner_join(region: str):
    """The invariant join of Q2's nested subquery: partsupp⋈supplier⋈nation⋈region."""
    return (
        qb.scan("partsupp")
        .join(qb.scan("supplier"), eq(col("ps_suppkey"), col("s_suppkey")))
        .join(qb.scan("nation"), eq(col("s_nationkey"), col("n_nationkey")))
        .join(qb.scan("region"), eq(col("n_regionkey"), col("r_regionkey")))
        .filter(eq(col("r_name"), region))
    )


def q2_batch(region: str = "EUROPE", part_size: int = 15) -> QueryBatch:
    """TPC-H Q2 with correlated evaluation, exposed as a batch of two blocks.

    The outer query joins part with the supplier-cost join; the nested
    subquery's invariant part (the minimum supply cost per part in the
    region) is the second query of the batch.  Repeated invocations of the
    correlated subquery all need that invariant join, which is exactly the
    sharing opportunity Roy et al. exploit for Q2.
    """
    outer = (
        qb.scan("part")
        .join(qb.scan("partsupp"), eq(col("p_partkey"), col("ps_partkey")))
        .join(qb.scan("supplier"), eq(col("ps_suppkey"), col("s_suppkey")))
        .join(qb.scan("nation"), eq(col("s_nationkey"), col("n_nationkey")))
        .join(qb.scan("region"), eq(col("n_regionkey"), col("r_regionkey")))
        .filter(eq(col("r_name"), region), eq(col("p_size"), part_size))
        .aggregate(
            ["s_name", "n_name", "p_partkey", "s_acctbal"],
            [("min", "ps_supplycost", "min_cost")],
        )
        .query("Q2-outer")
    )
    inner = (
        _q2_inner_join(region)
        .aggregate(["ps_partkey"], [("min", "ps_supplycost", "min_supplycost")])
        .query("Q2-inner")
    )
    return QueryBatch("Q2", (outer, inner))


def q2_decorrelated(region: str = "EUROPE", part_size: int = 15) -> QueryBatch:
    """Q2-D: the (manually) decorrelated version of Q2, as in the paper.

    The nested subquery becomes a derived table grouped by part key that is
    joined back to the outer query; the outer block and the derived block
    contain the same partsupp⋈supplier⋈nation⋈region subexpression, so the
    sharing is now *within* a single query.
    """
    min_cost = (
        _q2_inner_join(region)
        .aggregate(["ps_partkey"], [("min", "ps_supplycost", "min_supplycost")])
        .as_derived("mincost")
    )
    query = (
        qb.scan("part")
        .join(qb.scan("partsupp"), eq(col("p_partkey"), col("partsupp.ps_partkey")))
        .join(qb.scan("supplier"), eq(col("partsupp.ps_suppkey"), col("s_suppkey")))
        .join(qb.scan("nation"), eq(col("s_nationkey"), col("n_nationkey")))
        .join(qb.scan("region"), eq(col("n_regionkey"), col("r_regionkey")))
        .join(min_cost, eq(col("mincost.ps_partkey"), col("part.p_partkey")))
        .filter(
            eq(col("r_name"), region),
            eq(col("p_size"), part_size),
            eq(col("partsupp.ps_supplycost"), col("mincost.min_supplycost")),
        )
        .aggregate(
            ["s_name", "n_name", "p_partkey", "s_acctbal"],
            [("min", "ps_supplycost", "min_cost")],
        )
        .query("Q2-D")
    )
    return QueryBatch("Q2-D", (query,))


def q11(nation: str = "GERMANY") -> QueryBatch:
    """TPC-H Q11: important stock identification (shared join in two blocks).

    Both the per-part aggregate and the grand total aggregate are computed
    over the same partsupp⋈supplier⋈nation σ[n_name] join — the common
    subexpression the paper's Experiment 2 materializes.
    """

    def base():
        return (
            qb.scan("partsupp")
            .join(qb.scan("supplier"), eq(col("ps_suppkey"), col("s_suppkey")))
            .join(qb.scan("nation"), eq(col("s_nationkey"), col("n_nationkey")))
            .filter(eq(col("n_name"), nation))
        )

    per_part = base().aggregate(["ps_partkey"], [("sum", "ps_supplycost", "part_value")]).as_derived("byparts")
    total = base().aggregate([], [("sum", "ps_supplycost", "total_value")]).as_derived("grand")
    query = (
        per_part
        .join(total)
        .filter(gt(col("byparts.part_value"), col("grand.total_value")))
        .query("Q11")
    )
    return QueryBatch("Q11", (query,))


def q15(year: int = 1996, month: int = 1) -> QueryBatch:
    """TPC-H Q15: top supplier using the ``revenue`` view twice (join + max)."""
    start = tpcd_date(year, month, 1)
    end_month = month + 3
    end_year = year + (1 if end_month > 12 else 0)
    end_month = end_month if end_month <= 12 else end_month - 12
    end = tpcd_date(end_year, end_month, 1)

    def revenue_view():
        return (
            qb.scan("lineitem")
            .filter(ge(col("l_shipdate"), start), lt(col("l_shipdate"), end))
            .aggregate(["l_suppkey"], [("sum", "l_extendedprice", "total_revenue")])
        )

    revenue = revenue_view().as_derived("revenue")
    best = (
        qb.derived(revenue_view().build(), "rev2")
        .aggregate([], [("max", "rev2.total_revenue", "max_revenue")])
        .as_derived("best")
    )
    query = (
        qb.scan("supplier")
        .join(revenue, eq(col("s_suppkey"), col("revenue.l_suppkey")))
        .join(best, eq(col("revenue.total_revenue"), col("best.max_revenue")))
        .query("Q15")
    )
    return QueryBatch("Q15", (query,))


def standalone_workloads() -> Dict[str, QueryBatch]:
    """The four Experiment-2 workloads keyed by the paper's names."""
    return {
        "Q2": q2_batch(),
        "Q2-D": q2_decorrelated(),
        "Q11": q11(),
        "Q15": q15(),
    }
