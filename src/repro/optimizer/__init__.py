"""Volcano-style plan extraction, ``bestCost`` and the incremental engine."""

from .plan import PhysicalOp, PhysicalPlan
from .volcano import BestCostResult, VolcanoOptimizer
from .best_cost import BestCostEngine, EngineStatistics

__all__ = [
    "PhysicalOp",
    "PhysicalPlan",
    "BestCostResult",
    "VolcanoOptimizer",
    "BestCostEngine",
    "EngineStatistics",
]
