"""Physical properties (sort order).

The paper's PQDAG distinguishes plans by physical properties such as sort
order; the only property the reproduction models is the sort order of an
operator's output, which is what drives the merge-join vs. sort decisions
and the sort-based aggregation of the original Pyro rule set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .expressions import ColumnRef

__all__ = ["SortOrder", "ANY_ORDER"]


@dataclass(frozen=True)
class SortOrder:
    """A required or delivered sort order: an ordered tuple of columns.

    The empty order means "no particular order" and is satisfied by every
    plan; a non-empty order ``(a, b)`` is satisfied by any delivered order
    having ``(a, b)`` as a prefix.
    """

    columns: Tuple[ColumnRef, ...] = ()

    @property
    def is_any(self) -> bool:
        return not self.columns

    def satisfies(self, required: "SortOrder") -> bool:
        """True if data sorted this way also satisfies ``required``."""
        if required.is_any:
            return True
        if len(required.columns) > len(self.columns):
            return False
        return all(
            _same_column(have, want)
            for have, want in zip(self.columns, required.columns)
        )

    def __str__(self) -> str:
        if self.is_any:
            return "any"
        return "(" + ", ".join(str(c) for c in self.columns) + ")"

    def __bool__(self) -> bool:
        return not self.is_any


def _same_column(a: ColumnRef, b: ColumnRef) -> bool:
    """Column equality that treats a missing qualifier as a wildcard."""
    if a.name != b.name:
        return False
    if a.qualifier is None or b.qualifier is None:
        return True
    return a.qualifier == b.qualifier


#: The "don't care" requirement.
ANY_ORDER = SortOrder()
