"""AND-OR DAG (memo) construction, fingerprinting and sharing analysis."""

from .blocks import (
    Aggregation,
    BindingError,
    NormalizationError,
    QueryBlock,
    Source,
    bind_block,
    normalize,
    normalize_query,
)
from .fingerprint import (
    AggregateSignature,
    FilterSignature,
    RelationSignature,
    Signature,
    SPJSignature,
)
from .memo import (
    AggregateMExpr,
    Group,
    JoinMExpr,
    Memo,
    MExpr,
    ScanMExpr,
    SelectMExpr,
    mexpr_children,
)
from .build import DagBuilder, DagConfig, apply_subsumption
from .sharing import BatchDag, MaterializationChoice, build_batch_dag

__all__ = [
    "Aggregation",
    "BindingError",
    "NormalizationError",
    "QueryBlock",
    "Source",
    "bind_block",
    "normalize",
    "normalize_query",
    "AggregateSignature",
    "FilterSignature",
    "RelationSignature",
    "Signature",
    "SPJSignature",
    "AggregateMExpr",
    "Group",
    "JoinMExpr",
    "Memo",
    "MExpr",
    "ScanMExpr",
    "SelectMExpr",
    "mexpr_children",
    "DagBuilder",
    "DagConfig",
    "apply_subsumption",
    "BatchDag",
    "MaterializationChoice",
    "build_batch_dag",
]
