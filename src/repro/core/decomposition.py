"""Decompositions of normalized submodular functions (Propositions 1 and 2).

Any normalized (``f(∅)=0``) submodular function — even one taking negative
values — can be written as ``f = fM − c`` with ``fM`` monotone submodular
and ``c`` additive (Proposition 1 of the paper).  The MarginalGreedy
algorithm operates on such a decomposition, and its approximation factor
depends on the additive part ``c``; Proposition 2 shows the canonical
decomposition

    c*(S) = Σ_{e∈S} (f(U\\{e}) − f(U)),      f*M = f + c*

is the best possible one (it is a fixed point of the improvement step that
makes the factor of any other decomposition at least as good).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .set_functions import (
    AdditiveFunction,
    Element,
    SetFunction,
    Subset,
    SumFunction,
    as_frozenset,
)

__all__ = [
    "Decomposition",
    "canonical_decomposition",
    "decomposition_from_parts",
    "improve_decomposition",
    "verify_decomposition",
]


@dataclass(frozen=True)
class Decomposition:
    """A decomposition ``f(S) = monotone(S) − cost(S)`` of a set function.

    Attributes:
        original: the function being decomposed (used for evaluation and
            for reporting ``f`` values; the greedy ratio only touches
            ``monotone`` and ``cost``).
        monotone: the monotone submodular part ``fM``.
        cost: the additive part ``c``.
    """

    original: SetFunction
    monotone: SetFunction
    cost: AdditiveFunction

    @property
    def universe(self) -> Subset:
        return self.original.universe

    def value(self, subset: Iterable[Element]) -> float:
        """Evaluate the original function ``f`` on ``subset``."""
        return self.original.value(subset)

    def monotone_marginal(self, element: Element, subset: Iterable[Element]) -> float:
        """The paper's ``f'M(e, S)``."""
        return self.monotone.marginal(element, subset)

    def element_cost(self, element: Element) -> float:
        """The additive cost ``c({e})`` of a single element."""
        return self.cost.weight(element)

    def ratio(self, element: Element, subset: Iterable[Element]) -> float:
        """The marginal-benefit-to-cost ratio ``r(e, S) = f'M(e,S)/c({e})``.

        Elements with non-positive cost have an infinite ratio (they are
        appended unconditionally by MarginalGreedy at the end of the run).
        """
        cost = self.element_cost(element)
        if cost <= 0.0:
            return float("inf")
        return self.monotone_marginal(element, subset) / cost

    def negative_cost_elements(self) -> Subset:
        """Elements whose additive cost is negative (added for free at the end)."""
        return frozenset(e for e in self.universe if self.element_cost(e) < 0.0)

    def consistency_error(self, subset: Iterable[Element]) -> float:
        """``|f(S) − (fM(S) − c(S))|`` for the given subset."""
        key = as_frozenset(subset)
        return abs(self.original.value(key) - (self.monotone.value(key) - self.cost.value(key)))


def decomposition_from_parts(
    monotone: SetFunction, cost: AdditiveFunction, original: Optional[SetFunction] = None
) -> Decomposition:
    """Build a :class:`Decomposition` from explicit ``fM`` and ``c`` parts.

    If ``original`` is omitted it is reconstructed as ``fM − c``.
    """
    if monotone.universe != cost.universe:
        raise ValueError("monotone part and cost part must share the same universe")
    if original is None:
        original = monotone - cost
    return Decomposition(original=original, monotone=monotone, cost=cost)


def canonical_decomposition(func: SetFunction) -> Decomposition:
    """The Proposition-1 decomposition ``(f*M, c*)`` of a normalized submodular ``f``.

    ``c*({e}) = f(U\\{e}) − f(U)`` and ``f*M = f + c*``.  Computing it takes
    exactly ``n + 1`` evaluations of ``f`` (on ``U`` and on each ``U\\{e}``),
    as noted in Section 3 of the paper.
    """
    universe = func.universe
    full_value = func.value(universe)
    weights: Dict[Element, float] = {}
    for element in universe:
        weights[element] = func.value(universe - {element}) - full_value
    cost = AdditiveFunction(weights)
    monotone = SumFunction(func, cost)
    return Decomposition(original=func, monotone=monotone, cost=cost)


def improve_decomposition(decomposition: Decomposition) -> Decomposition:
    """Apply the Proposition-2 improvement step to a decomposition.

    Given ``(fM, c)``, subtract the linear function
    ``d(S) = Σ_{i∈S} (fM(U) − fM(U\\{i}))`` from both parts.  The new
    monotone part stays monotone (by submodularity of ``fM``) and the
    approximation factor can only improve.  The canonical decomposition is a
    fixed point of this map.
    """
    monotone = decomposition.monotone
    universe = decomposition.universe
    full_value = monotone.value(universe)
    shifts: Dict[Element, float] = {
        element: full_value - monotone.value(universe - {element}) for element in universe
    }
    shift_fn = AdditiveFunction(shifts)
    new_cost = AdditiveFunction(
        {e: decomposition.cost.weight(e) - shifts[e] for e in universe}
    )
    new_monotone = monotone - shift_fn
    return Decomposition(
        original=decomposition.original, monotone=new_monotone, cost=new_cost
    )


def verify_decomposition(
    decomposition: Decomposition,
    *,
    exhaustive: bool = True,
    tol: float = 1e-6,
) -> bool:
    """Check that a decomposition is valid.

    Validity means (i) ``f(S) = fM(S) − c(S)`` on every checked subset,
    (ii) ``fM`` is monotone and (iii) ``c`` is additive (true by
    construction for :class:`AdditiveFunction`).  With ``exhaustive=True``
    every subset is checked, so this is only suitable for small universes.
    """
    if exhaustive:
        from .set_functions import all_subsets

        for subset in all_subsets(decomposition.universe):
            if decomposition.consistency_error(subset) > tol:
                return False
        if not decomposition.monotone.is_monotone(tol=tol):
            return False
        return True
    # Spot-check: empty set, full set, singletons.
    probes = [frozenset(), decomposition.universe]
    probes.extend(frozenset({e}) for e in decomposition.universe)
    return all(decomposition.consistency_error(p) <= tol for p in probes)
