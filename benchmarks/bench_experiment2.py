"""Benchmarks regenerating Figure 5 (stand-alone TPCD queries, Experiment 2)."""

import pytest

from repro.experiments.experiment2 import run_experiment2


def _report(results) -> None:
    for table in results.tables():
        print()
        print(table.to_text())


@pytest.mark.benchmark(group="figure-5a")
def test_figure_5a(benchmark):
    """Figure 5a: Q2 / Q2-D / Q11 / Q15 estimated costs at the 1GB scale."""

    def run():
        return run_experiment2(scale_factors=(1.0,))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results)
    for row in results.rows:
        volcano = next(
            r for r in results.rows
            if r.workload == row.workload and r.strategy == "volcano"
            and r.scale_factor == row.scale_factor
        )
        assert row.estimated_cost_s <= volcano.estimated_cost_s + 1e-6


@pytest.mark.benchmark(group="figure-5b")
def test_figure_5b(benchmark):
    """Figure 5b: the same comparison at the 100GB scale."""

    def run():
        return run_experiment2(scale_factors=(100.0,))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results)
    assert results.rows


@pytest.mark.benchmark(group="figure-5c")
@pytest.mark.parametrize("workload", ["Q2", "Q2-D", "Q11", "Q15"])
def test_figure_5c_optimization_time(benchmark, workload):
    """Figure 5c: optimization time per stand-alone workload (MarginalGreedy)."""

    def run():
        return run_experiment2(
            scale_factors=(1.0,),
            workloads=(workload,),
            strategies=("marginal-greedy",),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    row = results.rows[0]
    print(
        f"\n[figure-5c] {workload}: optimization time {row.optimization_time_s:.3f}s, "
        f"{row.materialized_nodes} materialized nodes"
    )
    assert row.optimization_time_s >= 0
