"""Statistical properties of the harness generators, on fixed seeds.

Every test here draws from a *fixed* seed, so the sampled statistics are
deterministic — the assertions use generous analytic tolerances, but they
can never flake: a failure means the generator's distribution actually
changed, not that the dice came up wrong.
"""

import random
from collections import Counter

import pytest

from repro.workloads.harness import (
    ScaleSpec,
    TrafficSpec,
    arrival_offsets,
    build_world,
    generate_traffic,
    star_templates,
)
from repro.workloads.harness.traffic import parse_arrival
from repro.workloads.synthetic import zipfian_cdf, zipfian_index

# ---------------------------------------------------------------------------
# Zipfian sampling
# ---------------------------------------------------------------------------


def test_zipf_frequencies_match_analytic_pmf():
    n, s, draws = 8, 1.2, 40_000
    cdf = zipfian_cdf(n, s)
    rng = random.Random(1234)
    counts = Counter(zipfian_index(rng, cdf) for _ in range(draws))
    total = sum((k + 1) ** -s for k in range(n))
    for k in range(n):
        expected = (k + 1) ** -s / total
        observed = counts[k] / draws
        assert observed == pytest.approx(expected, abs=0.01), f"rank {k}"


def test_zipf_is_monotone_head_heavy():
    cdf = zipfian_cdf(16, 1.1)
    rng = random.Random(7)
    counts = Counter(zipfian_index(rng, cdf) for _ in range(20_000))
    assert counts[0] > counts[7] > counts[15]
    # The head dominates: rank 0 of a 16-way s=1.1 Zipf carries ~31%.
    assert counts[0] / 20_000 > 0.25


def test_tenant_skew_flows_through_traffic():
    templates = star_templates(4)
    traffic = generate_traffic(
        templates, TrafficSpec(requests=4000, tenants=8, zipf=1.3, seed=5)
    )
    by_tenant = Counter(r.tenant for r in traffic)
    ranked = [name for name, _ in by_tenant.most_common()]
    assert ranked[0] == "t00", "tenant 0 must be the hottest under Zipf"
    assert by_tenant["t00"] > 3 * by_tenant[ranked[-1]]


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


def test_poisson_interarrival_mean_matches_rate():
    rate = 100.0
    offsets = arrival_offsets(f"poisson:{rate}", 8000, random.Random(99))
    gaps = [b - a for a, b in zip(offsets, offsets[1:])]
    mean = sum(gaps) / len(gaps)
    assert mean == pytest.approx(1.0 / rate, rel=0.05)
    assert offsets == sorted(offsets)
    assert all(g >= 0 for g in gaps)


def test_poisson_interarrival_is_memoryless_shaped():
    # For an exponential, P(gap > mean) = 1/e ~ 0.368; a uniform or
    # constant-gap generator would be nowhere near that.
    offsets = arrival_offsets("poisson:50", 8000, random.Random(3))
    gaps = [b - a for a, b in zip(offsets, offsets[1:])]
    mean = sum(gaps) / len(gaps)
    over_mean = sum(1 for g in gaps if g > mean) / len(gaps)
    assert over_mean == pytest.approx(0.368, abs=0.03)


def test_bursty_arrivals_are_bimodal():
    low, high, period = 20.0, 400.0, 0.5
    offsets = arrival_offsets(f"bursty:{low}:{high}:{period}", 6000, random.Random(17))
    phase_counts = Counter(int(t / period) % 2 for t in offsets)
    # Quiet phases (even) admit ~rate*period arrivals each, burst phases
    # ~20x more; overall the burst phase must dominate heavily.
    assert phase_counts[1] > 5 * phase_counts[0]
    assert offsets == sorted(offsets)


def test_closed_arrivals_are_all_zero():
    assert arrival_offsets("closed", 17, random.Random(0)) == [0.0] * 17


@pytest.mark.parametrize(
    "bad",
    ["poisson", "poisson:0", "poisson:-5", "poisson:1:2", "bursty:1:2", "closed:1", "sine:3", "poisson:x"],
)
def test_arrival_spec_validation(bad):
    with pytest.raises(ValueError):
        parse_arrival(bad)


# ---------------------------------------------------------------------------
# Drift targeting
# ---------------------------------------------------------------------------


def test_drift_changes_exactly_the_fact_table():
    world = build_world(ScaleSpec(), "star", seed=4, max_drift_steps=2)
    before = {name: [dict(r) for r in rows] for name, rows in world.database.tables.items()}
    version = world.database.version
    fingerprint = world.database.fingerprint()

    world.inject_drift()

    assert world.database.version > version, "drift must bump the data version"
    assert world.database.fingerprint() != fingerprint
    changed = {
        name
        for name, rows in world.database.tables.items()
        if before[name] != [dict(r) for r in rows]
    }
    assert changed == {"fact"}, f"drift must only rewrite the fact table, got {changed}"
    assert world.drift_steps_applied == 1


def test_drift_on_mixed_world_leaves_tpcd_tables_alone():
    world = build_world(ScaleSpec(), "mixed", seed=4, max_drift_steps=1)
    before = {name: [dict(r) for r in rows] for name, rows in world.database.tables.items()}
    world.inject_drift()
    changed = {
        name
        for name, rows in world.database.tables.items()
        if before[name] != [dict(r) for r in rows]
    }
    assert changed == {"fact"}


def test_tpcd_world_refuses_drift():
    world = build_world(ScaleSpec(), "tpcd", seed=4, max_drift_steps=1)
    assert not world.supports_drift
    with pytest.raises(RuntimeError, match="no star tables"):
        world.inject_drift()


def test_value_skew_concentrates_fact_keys():
    uniform = build_world(ScaleSpec(scale=2.0), "star", seed=9).database
    skewed = build_world(ScaleSpec(scale=2.0, value_skew=1.5), "star", seed=9).database

    def top_share(db):
        keys = Counter(row["f_d0_key"] for row in db.table("fact"))
        return keys.most_common(1)[0][1] / db.row_count("fact")

    assert top_share(skewed) > 2 * top_share(uniform)
