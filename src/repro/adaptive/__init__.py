"""The adaptive runtime-feedback subsystem.

The optimizer stack below this package is *open-loop*: static System-R
estimates (:mod:`repro.cost.cardinality`) are frozen into the memo groups
when a batch's DAG is built, every cached plan and every materialization
cache decision is derived from them, and a mis-estimate is never corrected.
This package closes the loop — optimize → execute → **observe** →
re-optimize:

* :class:`~repro.adaptive.stats.FeedbackStatsStore` records observed row
  counts, byte sizes and operator timings per **semantic fingerprint**
  (collected by :meth:`repro.execution.executor.Executor.execute_result`
  through a lightweight instrumentation hook),
* :class:`~repro.adaptive.estimator.AdaptiveCardinalityEstimator` overlays
  those observations on the static estimates, with confidence decay and
  data-version epoch invalidation mirroring the materialization cache's
  token,
* :class:`~repro.adaptive.drift.DriftDetector` flags plan nodes whose
  observed cardinality contradicts the estimate by more than a threshold —
  the :class:`~repro.service.session.OptimizerSession` consults it after
  every executed batch, invalidates the affected cached results and
  re-optimizes them with corrected statistics on the next request, and
* :class:`~repro.adaptive.policy.BenefitAwarePolicy` replaces the
  materialization cache's estimated-cost eviction with measured
  recomputation-time × recency ÷ bytes scoring fed from the same store.

Adaptation is **off by default**: a session without an
:class:`~repro.adaptive.drift.AdaptiveConfig` records nothing, corrects
nothing, and serves warm traffic bit-identically to earlier releases.
"""

from .drift import AdaptiveConfig, DriftDetector, DriftEvent
from .estimator import AdaptiveCardinalityEstimator
from .policy import BenefitAwarePolicy, CachePolicy, CostLRUPolicy
from .stats import FeedbackStatistics, FeedbackStatsStore, ObservedStats

__all__ = [
    "AdaptiveCardinalityEstimator",
    "AdaptiveConfig",
    "BenefitAwarePolicy",
    "CachePolicy",
    "CostLRUPolicy",
    "DriftDetector",
    "DriftEvent",
    "FeedbackStatistics",
    "FeedbackStatsStore",
    "ObservedStats",
]
