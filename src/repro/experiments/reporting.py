"""Small reporting helpers: result tables rendered as text, markdown or CSV."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..obs import HistogramSnapshot

__all__ = ["ResultTable", "format_seconds", "session_counters_table"]

#: The latency histogram series a serving report surfaces percentiles for.
LATENCY_SERIES = (
    "session_optimize_seconds",
    "session_execute_seconds",
    "scheduler_queue_wait_seconds",
)

Cell = Union[str, int, float, None]


def format_seconds(value: float) -> str:
    """Render a duration in seconds with a sensible precision."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def _render(cell: Cell) -> str:
    if cell is None:
        return ""
    if isinstance(cell, float):
        return format_seconds(cell)
    return str(cell)


def _counter_dict(session) -> dict:
    """The session's counters via the most torn-read-safe path it offers."""
    statistics = session.statistics
    if callable(statistics):  # a SessionPool aggregates shard snapshots on demand
        return statistics().as_dict()
    snapshot = getattr(session, "statistics_snapshot", None)
    if callable(snapshot):  # a consistent copy taken under the owner's lock
        return snapshot()
    return statistics.as_dict()


def session_counters_table(session, title: str = "Session counters") -> "ResultTable":
    """Every counter a serving session exposes, as one ``counter | value`` table.

    Besides the :class:`~repro.service.session.SessionStatistics` this
    includes the materialization cache's counters (prefixed ``matcache_``)
    — a spilling cache's disk-tier counters and current disk usage
    included — and, when the session runs with the adaptive feedback loop
    enabled, the feedback store's collection counters (prefixed
    ``feedback_``) plus its current size and epoch, so drift activity shows
    up next to the classic reuse statistics.  The session is duck-typed;
    anything with a ``statistics_snapshot()`` (preferred — a consistent,
    under-the-lock copy) or ``statistics.as_dict()`` works — including a
    :class:`~repro.service.pool.SessionPool`, whose callable ``statistics()``
    and ``matcache_statistics()`` aggregates are used instead.
    """
    table = ResultTable(title, ["counter", "value"])
    for name, value in _counter_dict(session).items():
        table.add_row(name, value)
    matcache = getattr(session, "matcache", None)
    caches = [matcache] if matcache is not None else []
    if matcache is not None:
        for name, value in matcache.statistics_snapshot().items():
            table.add_row(f"matcache_{name}", value)
    else:
        aggregated = getattr(session, "matcache_statistics", None)
        if callable(aggregated):  # a pool sums its per-shard caches
            for name, value in aggregated().as_dict().items():
                table.add_row(f"matcache_{name}", value)
        caches = [s.matcache for s in getattr(session, "sessions", ())]
    spilling = [cache for cache in caches if hasattr(cache, "disk_entries")]
    if spilling:  # the durable tier's current footprint, summed over shards
        table.add_row("matcache_disk_entries", sum(c.disk_entries for c in spilling))
        table.add_row("matcache_disk_bytes", sum(c.disk_bytes for c in spilling))
    feedback = getattr(session, "feedback", None)
    if feedback is not None:
        for name, value in feedback.statistics_snapshot().items():
            table.add_row(f"feedback_{name}", value)
        table.add_row("feedback_tracked_nodes", len(feedback))
        table.add_row("feedback_epoch", feedback.epoch)
    registry = getattr(getattr(session, "obs", None), "registry", None)
    if registry is not None:
        # One row per labeled latency series (per strategy and, behind a
        # pool, per shard), plus the bucket-merged roll-up across series.
        for name in LATENCY_SERIES:
            series = registry.histogram_snapshots(name)
            for labels, snapshot in sorted(series.items()):
                table.add_row(_series_title(name, labels), _percentile_cell(snapshot))
            if len(series) > 1:
                merged = HistogramSnapshot.merge(list(series.values()))
                table.add_row(f"{name} (all)", _percentile_cell(merged))
    return table


def _series_title(name: str, labels) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _format_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.2f}ms"


def _percentile_cell(snapshot: "HistogramSnapshot") -> str:
    return (
        f"p50 {_format_latency(snapshot.p50)} / "
        f"p95 {_format_latency(snapshot.p95)} / "
        f"p99 {_format_latency(snapshot.p99)} (n={snapshot.count})"
    )


@dataclass
class ResultTable:
    """A titled table of results (one per figure/table of the paper)."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)} for table {self.title!r}"
            )
        self.rows.append(tuple(cells))

    # -- rendering ---------------------------------------------------------

    def to_text(self) -> str:
        rendered = [[_render(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(col)), *(len(row[i]) for row in rendered)) if rendered else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in rendered:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_render(c) for c in row) + " |")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(["" if c is None else c for c in row])
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.to_text()
