"""In-memory execution engine used to validate shared plans end to end."""

from .backends import DEFAULT_BACKEND, available_backends, create_executor, resolve_backend
from .columnar import ColumnBatch, ColumnarExecutor
from .data import Database, Row, example1_database, tiny_tpcd_database
from .evaluate import (
    AmbiguousColumn,
    ColumnNotFound,
    evaluate_predicate,
    resolve_column,
    total_order_key,
)
from .executor import ExecutionError, Executor
from .sql import DuckDBExecutor, SQLExecutor, SQLiteExecutor

__all__ = [
    "Database",
    "Row",
    "example1_database",
    "tiny_tpcd_database",
    "AmbiguousColumn",
    "ColumnNotFound",
    "evaluate_predicate",
    "resolve_column",
    "total_order_key",
    "ExecutionError",
    "Executor",
    "ColumnBatch",
    "ColumnarExecutor",
    "SQLExecutor",
    "SQLiteExecutor",
    "DuckDBExecutor",
    "DEFAULT_BACKEND",
    "available_backends",
    "create_executor",
    "resolve_backend",
]
