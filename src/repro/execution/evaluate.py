"""Row-level evaluation of scalar expressions and predicates.

Rows are plain dictionaries whose keys are alias-qualified column names
(``"orders.o_orderdate"``).  Column references are resolved by exact
qualified name first and then by unique suffix match, which covers
references to derived-table outputs (the outer block qualifies them with
the derived alias while the producing aggregate emits them under the inner
alias).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..algebra.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = [
    "AmbiguousColumn",
    "ColumnNotFound",
    "resolve_column",
    "resolve_in_names",
    "total_order_key",
    "evaluate_operand",
    "evaluate_predicate",
]

Row = Dict[str, object]


class ColumnNotFound(KeyError):
    """Raised when a column reference cannot be resolved against a row."""


class AmbiguousColumn(ColumnNotFound):
    """A reference that matches more than one column.

    A subclass (not a sibling) of :class:`ColumnNotFound` so existing
    ``except ColumnNotFound`` sites keep catching it; callers that must
    treat "missing" leniently but "ambiguous" as a hard error (SQL-style
    aggregation keys) catch this one first and re-raise.
    """


def resolve_in_names(names: Iterable[str], column: ColumnRef) -> Optional[str]:
    """Resolve a reference against a set of qualified names.

    The schema-level form of :func:`resolve_column`: exact qualified name
    first, then unique suffix match.  Returns ``None`` when nothing
    matches and raises :class:`AmbiguousColumn` when several do, so
    callers can distinguish the two without string-matching messages.
    """
    if column.qualifier is not None:
        qualified = f"{column.qualifier}.{column.name}"
        if qualified in names:
            return qualified
    suffix = f".{column.name}"
    matches = [name for name in names if name.endswith(suffix) or name == column.name]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        return None
    raise AmbiguousColumn(f"column {column} is ambiguous: matches {sorted(matches)}")


def resolve_column(row: Row, column: ColumnRef) -> object:
    """Resolve a column reference against a row of qualified values."""
    if column.qualifier is not None:
        qualified = f"{column.qualifier}.{column.name}"
        if qualified in row:
            return row[qualified]
    suffix = f".{column.name}"
    matches = [key for key in row if key.endswith(suffix) or key == column.name]
    if len(matches) == 1:
        return row[matches[0]]
    if not matches:
        raise ColumnNotFound(f"column {column} not found in row with keys {sorted(row)}")
    raise AmbiguousColumn(f"column {column} is ambiguous in row: matches {sorted(matches)}")


def total_order_key(value: object) -> Tuple:
    """A sort key under which *any* two cell values compare.

    Mirrors SQLite's storage-class order for the values that can round-trip
    through the SQL oracle backend — numbers before text before blobs — with
    NULLs sorting last (the executors' historical convention, rendered to
    SQL as ``ORDER BY expr IS NULL, expr``).  Anything else (values that
    only exist in the Python backends) sorts between blobs and NULL by type
    name so mixed-type columns order deterministically instead of raising
    ``TypeError``.
    """
    if value is None:
        return (3, 0, 0)
    if isinstance(value, (bool, int, float)):
        return (0, 0, value)
    if isinstance(value, str):
        return (0, 1, value)
    if isinstance(value, bytes):
        return (0, 2, value)
    return (1, 0, (type(value).__name__, repr(value)))


def evaluate_operand(row: Row, operand) -> object:
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, ColumnRef):
        return resolve_column(row, operand)
    raise TypeError(f"cannot evaluate operand of type {type(operand).__name__}")


_COMPARATORS = {
    ComparisonOp.EQ: lambda a, b: a == b,
    ComparisonOp.NE: lambda a, b: a != b,
    ComparisonOp.LT: lambda a, b: a < b,
    ComparisonOp.LE: lambda a, b: a <= b,
    ComparisonOp.GT: lambda a, b: a > b,
    ComparisonOp.GE: lambda a, b: a >= b,
}


def evaluate_predicate(row: Row, predicate: Optional[Predicate]) -> bool:
    """Evaluate a predicate against one row (None and TRUE are always true)."""
    if predicate is None or isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        left = evaluate_operand(row, predicate.left)
        right = evaluate_operand(row, predicate.right)
        if left is None or right is None:
            return False
        return bool(_COMPARATORS[predicate.op](left, right))
    if isinstance(predicate, Between):
        value = evaluate_operand(row, predicate.column)
        if value is None:
            return False
        return predicate.low.value <= value <= predicate.high.value
    if isinstance(predicate, InList):
        value = evaluate_operand(row, predicate.column)
        return any(value == literal.value for literal in predicate.values)
    if isinstance(predicate, And):
        return all(evaluate_predicate(row, operand) for operand in predicate.operands)
    if isinstance(predicate, Or):
        return any(evaluate_predicate(row, operand) for operand in predicate.operands)
    if isinstance(predicate, Not):
        return not evaluate_predicate(row, predicate.operand)
    raise TypeError(f"cannot evaluate predicate of type {type(predicate).__name__}")
