"""The strategy registry: round-trips, error messages, third-party plug-ins."""

import pytest

from repro.core import mqo
from repro.core.strategies import (
    Strategy,
    StrategyContext,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy,
    unregister_strategy,
)
from repro.core.strategies.builtin import (
    ExhaustiveStrategy,
    GreedyStrategy,
    MarginalGreedyStrategy,
    ShareAllStrategy,
    VolcanoStrategy,
)

BUILTIN = ("volcano", "greedy", "marginal-greedy", "share-all", "exhaustive")


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert available_strategies() == BUILTIN

    def test_strategies_tuple_derived_from_registry(self):
        assert mqo.STRATEGIES == available_strategies()

    def test_get_strategy_returns_classes(self):
        assert get_strategy("volcano") is VolcanoStrategy
        assert get_strategy("greedy") is GreedyStrategy
        assert get_strategy("marginal-greedy") is MarginalGreedyStrategy
        assert get_strategy("share-all") is ShareAllStrategy
        assert get_strategy("exhaustive") is ExhaustiveStrategy

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_strategy("magic")
        message = str(excinfo.value)
        assert "magic" in message
        for name in BUILTIN:
            assert name in message

    def test_resolve_accepts_name_class_and_instance(self):
        assert isinstance(resolve_strategy("volcano"), VolcanoStrategy)
        assert isinstance(resolve_strategy(VolcanoStrategy), VolcanoStrategy)
        instance = GreedyStrategy()
        assert resolve_strategy(instance) is instance


class TestRoundTrip:
    def test_register_and_unregister_roundtrip(self):
        @register_strategy
        class NothingStrategy(Strategy):
            name = "test-nothing"

            def select(self, context: StrategyContext):
                return ()

        try:
            assert "test-nothing" in available_strategies()
            assert "test-nothing" in mqo.STRATEGIES
            assert get_strategy("test-nothing") is NothingStrategy
        finally:
            assert unregister_strategy("test-nothing") is NothingStrategy
        assert available_strategies() == BUILTIN
        assert mqo.STRATEGIES == BUILTIN

    def test_third_party_strategy_runs_through_optimizer(self):
        from repro.core.mqo import MultiQueryOptimizer
        from repro.workloads.synthetic import example1_batch, example1_catalog

        @register_strategy
        class FirstShareableStrategy(Strategy):
            name = "test-first-shareable"

            def select(self, context: StrategyContext):
                return context.dag.shareable_nodes()[:1]

        try:
            optimizer = MultiQueryOptimizer(example1_catalog())
            result = optimizer.optimize(example1_batch(), strategy="test-first-shareable")
            assert result.strategy == "test-first-shareable"
            assert result.total_cost <= result.volcano_cost + 1e-6
        finally:
            unregister_strategy("test-first-shareable")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_strategy(name="volcano")
            class Impostor(Strategy):
                name = "volcano"

                def select(self, context):
                    return ()

    def test_nameless_strategy_rejected(self):
        with pytest.raises(ValueError, match="non-empty 'name'"):

            @register_strategy
            class Nameless(Strategy):
                def select(self, context):
                    return ()
