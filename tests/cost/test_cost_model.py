"""Tests for the resource-consumption cost model and the cardinality estimator."""

import pytest

from repro.algebra.expressions import between, col, disjunction, eq, ge, gt, in_list, lt, ne
from repro.catalog.tpcd import tpcd_catalog
from repro.cost.cardinality import CatalogResolver, ColumnInfo, SelectivityEstimator
from repro.cost.model import CostModel, CostParameters


@pytest.fixture(scope="module")
def model():
    return CostModel()


@pytest.fixture(scope="module")
def estimator():
    catalog = tpcd_catalog(1)
    return SelectivityEstimator(CatalogResolver(catalog, {"n1": "nation", "n2": "nation"}))


class TestCostParameters:
    def test_paper_constants(self):
        params = CostParameters()
        assert params.block_size == 4096
        assert params.seek_ms == 10.0
        assert params.read_ms_per_block == 2.0
        assert params.write_ms_per_block == 4.0
        assert params.cpu_ms_per_block == 0.2
        assert params.memory_blocks == (6 * 1024 * 1024) // 4096

    def test_with_memory(self):
        big = CostParameters().with_memory(128 * 1024 * 1024)
        assert big.memory_blocks > CostParameters().memory_blocks


class TestCostModel:
    def test_blocks(self, model):
        assert model.blocks(0, 100) == 1.0
        assert model.blocks(1000, 100) == pytest.approx(25.0)

    def test_table_scan_scales_with_size(self, model):
        small = model.table_scan(1000, 100)
        large = model.table_scan(1_000_000, 100)
        assert large > small > 0

    def test_indexed_selection_cheaper_than_scan(self, model):
        scan = model.table_scan(1_000_000, 100)
        index = model.indexed_selection(1_000_000, 100, selectivity=0.01)
        assert index < scan

    def test_sort_in_memory_vs_external(self, model):
        in_memory = model.sort(1000, 100)
        external = model.sort(10_000_000, 100)
        assert external > in_memory
        # External sorts pay I/O, in-memory sorts only CPU (well under one seek+scan).
        assert in_memory <= model.parameters.seek_ms

    def test_merge_join_is_cpu_only(self, model):
        cost = model.merge_join(10_000, 100, 10_000, 100, 10_000)
        assert cost < model.table_scan(10_000, 100)

    def test_nested_loop_join_grows_with_outer(self, model):
        small_outer = model.nested_loop_join(1_000, 100, 100_000, 100, inner_is_stored=True)
        large_outer = model.nested_loop_join(10_000_000, 100, 100_000, 100, inner_is_stored=True)
        assert large_outer > small_outer

    def test_nested_loop_spools_unstored_inner(self, model):
        stored = model.nested_loop_join(10_000, 100, 100_000, 100, inner_is_stored=True)
        spooled = model.nested_loop_join(10_000, 100, 100_000, 100, inner_is_stored=False)
        assert spooled >= stored

    def test_index_nested_loop_join_positive(self, model):
        cost = model.index_nested_loop_join(1_000, 1_000_000, 100, 1_000_000)
        assert cost > 0

    def test_materialize_and_read_back(self, model):
        write = model.materialize(100_000, 100)
        read = model.read_materialized(100_000, 100)
        assert write > read > 0  # writes cost 4ms/block vs 2ms/block reads

    def test_filter_project_aggregate_are_cpu_bound(self, model):
        assert model.filter(100_000, 100) < model.table_scan(100_000, 100)
        assert model.project(100_000, 100) <= model.filter(100_000, 100)
        assert model.sort_aggregate(100_000, 100) < model.table_scan(100_000, 100)
        assert model.scalar_aggregate(100_000, 100) > 0


class TestSelectivity:
    def test_equality_uses_distinct(self, estimator):
        assert estimator.selectivity(eq(col("c_mktsegment"), "BUILDING")) == pytest.approx(0.2)
        assert estimator.selectivity(ne(col("c_mktsegment"), "BUILDING")) == pytest.approx(0.8)

    def test_range_uses_bounds(self, estimator):
        half = estimator.selectivity(lt(col("o_orderdate"), 19950419))
        assert 0.3 < half < 0.7
        assert estimator.selectivity(ge(col("o_orderdate"), 19980802)) == pytest.approx(0.0, abs=1e-6)

    def test_between(self, estimator):
        # Note: dates are encoded as YYYYMMDD integers, so a one-year range
        # covers a smaller fraction of the numeric span than of calendar time.
        year = estimator.selectivity(between(col("o_orderdate"), 19940101, 19941231))
        assert 0.005 < year < 0.25

    def test_join_predicate(self, estimator):
        sel = estimator.selectivity(eq(col("c_custkey"), col("o_custkey")))
        assert sel == pytest.approx(1.0 / 150_000)

    def test_in_list(self, estimator):
        sel = estimator.selectivity(in_list(col("c_mktsegment"), ["BUILDING", "MACHINERY"]))
        assert sel == pytest.approx(0.4)

    def test_disjunction_inclusion_exclusion(self, estimator):
        p = disjunction([eq(col("c_mktsegment"), "BUILDING"), eq(col("c_mktsegment"), "MACHINERY")])
        assert estimator.selectivity(p) == pytest.approx(1 - 0.8 * 0.8)

    def test_conjunction_independence(self, estimator):
        p = eq(col("c_mktsegment"), "BUILDING") & eq(col("c_nationkey"), 7)
        assert estimator.selectivity(p) == pytest.approx(0.2 * (1 / 25))

    def test_unknown_column_defaults(self, estimator):
        sel = estimator.selectivity(eq(col("mystery_column"), 1))
        assert 0 < sel <= 1

    def test_aliased_self_join_columns(self, estimator):
        sel = estimator.selectivity(eq(col("n1.n_name"), "FRANCE"))
        assert sel == pytest.approx(1 / 25)

    def test_cardinalities(self, estimator):
        assert estimator.select_cardinality(1000, eq(col("c_mktsegment"), "BUILDING")) == pytest.approx(200)
        assert estimator.join_cardinality(1000, 1000, None) == 1_000_000
        groups = estimator.group_cardinality(10_000, (col("c_mktsegment"),))
        assert groups == pytest.approx(5)
        assert estimator.group_cardinality(10, ()) == 1.0

    def test_group_cardinality_capped_by_rows(self, estimator):
        groups = estimator.group_cardinality(100, (col("c_custkey"), col("o_orderdate")))
        assert groups <= 100

    def test_column_info_range(self):
        info = ColumnInfo(distinct=10, min_value=0, max_value=100)
        assert info.value_range == 100
        assert ColumnInfo(distinct=10).value_range is None
