"""RNG hygiene: workload generation is a pure function of its seeds.

Two regressions are pinned here:

* behavioral — generating the same database (or traffic) twice with the
  same seed produces *identical* output, and changing the seed changes it
  (a generator that ignores its seed would also pass a naive equality
  check); and
* structural — an AST audit that no module under ``repro.workloads``
  draws from the module-level ``random`` functions (``random.random()``,
  ``random.choice()``, ...), whose hidden global state any import or
  thread can perturb.  Every draw must flow through an explicit
  ``random.Random(seed)`` instance.
"""

import ast
from pathlib import Path

import pytest

import repro.workloads as workloads_pkg
from repro.execution.data import tiny_tpcd_database
from repro.workloads.harness import (
    ScaleSpec,
    TrafficSpec,
    build_world,
    generate_traffic,
    star_templates,
)
from repro.workloads.synthetic import (
    drifting_star_database,
    star_schema_database,
    zipfian_cdf,
)

WORKLOADS_DIR = Path(workloads_pkg.__file__).resolve().parent


# ---------------------------------------------------------------------------
# Behavioral: same seed, same bytes
# ---------------------------------------------------------------------------


def test_star_database_same_seed_identical():
    first = star_schema_database(seed=7)
    second = star_schema_database(seed=7)
    assert first.fingerprint() == second.fingerprint()
    assert first.tables == second.tables


def test_star_database_seed_changes_data():
    assert star_schema_database(seed=7).fingerprint() != star_schema_database(seed=8).fingerprint()


def test_star_database_skew_default_is_bytewise_legacy():
    # value_skew=0.0 must not consume extra RNG draws: the default path
    # has to reproduce the exact databases every recorded fingerprint,
    # cached artifact and differential test in the repo was built on.
    assert (
        star_schema_database(seed=3).fingerprint()
        == star_schema_database(seed=3, value_skew=0.0).fingerprint()
    )
    assert (
        star_schema_database(seed=3).fingerprint()
        != star_schema_database(seed=3, value_skew=1.2).fingerprint()
    )


def test_drifting_star_database_same_seed_identical_at_every_pass():
    fingerprints = []
    for _ in range(2):
        run = []
        for database in drifting_star_database(3, seed=11, drift_factor=1.5):
            run.append(database.fingerprint())
        fingerprints.append(run)
    assert fingerprints[0] == fingerprints[1]
    assert len(set(fingerprints[0])) == 3, "each drift pass must change the data"


def test_tiny_tpcd_same_seed_identical():
    assert (
        tiny_tpcd_database(seed=5).fingerprint() == tiny_tpcd_database(seed=5).fingerprint()
    )


def test_build_world_same_seed_identical():
    spec = ScaleSpec(scale=2.0, value_skew=1.1)
    first = build_world(spec, "mixed", seed=13)
    second = build_world(spec, "mixed", seed=13)
    assert first.database.fingerprint() == second.database.fingerprint()
    assert sorted(first.catalog.tables) == sorted(second.catalog.tables)


def test_generate_traffic_same_seed_identical():
    templates = star_templates(4, seed=2)
    spec = TrafficSpec(requests=60, tenants=6, arrival="poisson:50", seed=21)
    first = generate_traffic(templates, spec)
    second = generate_traffic(templates, spec)
    assert [
        (r.arrival, r.tenant, r.template_id, r.params, r.query.name, r.oracle)
        for r in first
    ] == [
        (r.arrival, r.tenant, r.template_id, r.params, r.query.name, r.oracle)
        for r in second
    ]
    third = generate_traffic(templates, spec, seed=22)
    assert [r.params for r in first] != [r.params for r in third]


def test_zipfian_cdf_is_deterministic_and_normalized():
    cdf = zipfian_cdf(16, 1.2)
    assert cdf == zipfian_cdf(16, 1.2)
    assert cdf == sorted(cdf)
    assert cdf[-1] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Structural: no module-level random state anywhere under repro.workloads
# ---------------------------------------------------------------------------

#: random.Random methods; calling these *on the module* is the violation.
_GLOBAL_DRAWS = {
    "random",
    "randrange",
    "randint",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "uniform",
    "expovariate",
    "gauss",
    "seed",
    "getrandbits",
}


def _module_level_random_calls(path: Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr in _GLOBAL_DRAWS
        ):
            yield f"{path.name}:{node.lineno} random.{func.attr}(...)"


def test_workloads_never_touch_global_random_state():
    violations = []
    for path in sorted(WORKLOADS_DIR.rglob("*.py")):
        violations.extend(_module_level_random_calls(path))
    assert not violations, (
        "module-level random.* draws found (use an explicit random.Random "
        "instance instead): " + "; ".join(violations)
    )
