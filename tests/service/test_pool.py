"""SessionPool: fingerprint routing, shard isolation, shared feedback,
differential correctness against a single session, scheduler integration."""

import threading

import pytest

from repro.adaptive import AdaptiveConfig
from repro.catalog.tpcd import tpcd_catalog
from repro.dag.build import DagBuilder, query_signature
from repro.dag.fingerprint import canonical_key
from repro.service import (
    BatchScheduler,
    OptimizerSession,
    SessionPool,
    stable_shard_hash,
)
from repro.workloads.batches import composite_batch
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)
from repro.workloads.tpcd_queries import batched_queries

N_DIMENSIONS = 4


@pytest.fixture(scope="module")
def star_catalog():
    return star_schema_catalog(n_dimensions=N_DIMENSIONS)


@pytest.fixture(scope="module")
def star_db():
    return star_schema_database(seed=9, n_dimensions=N_DIMENSIONS)


@pytest.fixture(scope="module")
def tpcd():
    return tpcd_catalog(0.05)


# ---------------------------------------------------------------- fingerprints


class TestQuerySignature:
    def test_matches_memo_root_signature(self, tpcd):
        """query_signature must equal what intern_query's memo assigns."""
        builder = DagBuilder(tpcd)
        for query in composite_batch(3):
            root, _ = builder.intern_query(query)
            assert canonical_key(builder.memo.signature_of(root)) == canonical_key(
                query_signature(query, tpcd)
            )

    def test_matches_memo_on_star_queries(self, star_catalog):
        builder = DagBuilder(star_catalog)
        for query in random_star_batch(6, seed=3, n_dimensions=N_DIMENSIONS):
            root, _ = builder.intern_query(query)
            assert canonical_key(builder.memo.signature_of(root)) == canonical_key(
                query_signature(query, star_catalog)
            )


# --------------------------------------------------------------------- routing


class TestRouting:
    def test_stable_hash_is_process_independent(self):
        # Routing must never depend on Python's per-process salted hash().
        import hashlib

        expected = int.from_bytes(hashlib.sha256(b"tenant:acme").digest()[:8], "big")
        assert stable_shard_hash("tenant:acme") == expected
        assert stable_shard_hash("a") != stable_shard_hash("b")

    def test_same_query_routes_to_same_shard(self, tpcd):
        pool = SessionPool(tpcd, shards=4)
        query = batched_queries(1)[0]
        assert pool.route(query) == pool.route(query)
        assert pool.session_for(query) is pool.shard(pool.route(query))

    def test_batch_routing_is_order_independent(self, tpcd):
        pool = SessionPool(tpcd, shards=4)
        q1, q2 = batched_queries(1)
        assert pool.routing_key([q1, q2]) == pool.routing_key([q2, q1])

    def test_single_query_batch_routes_like_the_bare_query(self, tpcd):
        """The same logical traffic must warm the same shard whether it is
        submitted as a query or as a one-query batch."""
        pool = SessionPool(tpcd, shards=4)
        query = batched_queries(1)[0]
        assert pool.routing_key([query]) == pool.routing_key(query)
        assert pool.route([query]) == pool.route(query)

    def test_routing_key_cache_serves_repeat_queries(self, tpcd):
        pool = SessionPool(tpcd, shards=4)
        query = batched_queries(1)[0]
        first = pool.routing_key(query)
        assert pool._routing_keys[query] == first  # memoized
        assert pool.routing_key(query) == first

    def test_tenant_overrides_fingerprint(self, tpcd):
        pool = SessionPool(tpcd, shards=4)
        q1, q2 = batched_queries(1)
        assert pool.route(q1, tenant="acme") == pool.route(q2, tenant="acme")
        assert pool.routing_key(q1, tenant="acme") == "tenant:acme"

    def test_shard_count_validation(self, tpcd):
        with pytest.raises(ValueError):
            SessionPool(tpcd, shards=0)


# ---------------------------------------------------------------- differential


class TestDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_rows_and_costs_identical_to_single_session(
        self, star_catalog, star_db, shards
    ):
        """The acceptance bar: sharding changes where work happens, never
        what is computed — rows and chosen plan costs are bit-identical."""
        batches = [
            random_star_batch(3, seed=seed, n_dimensions=N_DIMENSIONS)
            for seed in (1, 2, 5)
        ]
        single = OptimizerSession(star_catalog, database=star_db)
        pool = SessionPool(star_catalog, shards=shards, database=star_db)
        for batch in batches:
            reference = single.execute_batch(batch, strategy="greedy")
            sharded = pool.execute_batch(batch, strategy="greedy")
            assert sharded.rows == reference.rows
            assert sharded.result.total_cost == reference.result.total_cost
            assert sharded.result.query_costs == reference.result.query_costs
            # Group ids are memo-local; the labels' text (what is
            # materialized) must match even though the "G<id>: " prefix may not.
            assert [
                label.split(": ", 1)[1] for label in sharded.result.materialized_labels
            ] == [
                label.split(": ", 1)[1]
                for label in reference.result.materialized_labels
            ]

    def test_warm_pool_rows_identical_and_memoized(self, star_catalog, star_db):
        pool = SessionPool(star_catalog, shards=4, database=star_db)
        batch = random_star_batch(3, seed=7, n_dimensions=N_DIMENSIONS)
        cold = pool.execute_batch(batch)
        warm = pool.execute_batch(batch)
        assert warm.rows == cold.rows
        assert warm.materializations == 0
        stats = pool.statistics()
        assert stats.result_cache_hits >= 1
        # Only the routed shard served anything.
        served = [s for s in pool.shard_statistics() if s.batches_served]
        assert len(served) == 1 and served[0].batches_served == 2


# ------------------------------------------------------------------- sharing


class TestSharedState:
    def test_feedback_store_is_shared_across_shards(self, star_catalog, star_db):
        pool = SessionPool(
            star_catalog, shards=4, database=star_db, adaptive=AdaptiveConfig()
        )
        assert pool.feedback is not None
        assert all(s.feedback is pool.feedback for s in pool.sessions)
        # Executions through any shard land in the one shared store.
        for seed in (1, 2, 5, 8):
            pool.execute_batch(
                random_star_batch(2, seed=seed, n_dimensions=N_DIMENSIONS)
            )
        assert pool.statistics().observations_recorded > 0
        assert len(pool.feedback) > 0

    def test_matcaches_and_memos_are_per_shard(self, tpcd):
        pool = SessionPool(tpcd, shards=3)
        caches = {id(s.matcache) for s in pool.sessions}
        memos = {s.memo.uid for s in pool.sessions}
        assert len(caches) == 3 and len(memos) == 3

    def test_attach_database_shares_one_token(self, star_catalog, star_db):
        pool = SessionPool(star_catalog, shards=2, adaptive=True)
        pool.attach_database(star_db)
        tokens = {s.matcache.token for s in pool.sessions}
        assert len(tokens) == 1
        assert pool.feedback.token in tokens
        assert pool.database is star_db

    def test_execute_and_compare_route_like_optimize(self, star_catalog, star_db):
        pool = SessionPool(star_catalog, shards=3, database=star_db)
        batch = random_star_batch(2, seed=11, n_dimensions=N_DIMENSIONS)
        query = batch.queries[0]
        single = OptimizerSession(star_catalog, database=star_db)
        assert pool.execute(query) == single.execute(query)
        compared = pool.compare(batch, strategies=("volcano", "greedy"))
        reference = single.compare(batch, strategies=("volcano", "greedy"))
        for name in ("volcano", "greedy"):
            assert compared[name].total_cost == reference[name].total_cost

    def test_reset_clears_every_shard(self, star_catalog, star_db):
        pool = SessionPool(star_catalog, shards=2, database=star_db)
        batch = random_star_batch(2, seed=11, n_dimensions=N_DIMENSIONS)
        cold = pool.execute_batch(batch)
        pool.reset()
        assert all(len(s.memo) == 0 for s in pool.sessions)
        again = pool.execute_batch(batch)
        assert again.rows == cold.rows
        assert again.materializations == cold.materializations  # caches dropped

    def test_statistics_aggregate_sums_shards(self, tpcd):
        pool = SessionPool(tpcd, shards=4)
        for index in (1, 2, 3):
            pool.optimize(composite_batch(index), strategy="greedy")
        total = pool.statistics()
        assert total.batches_served == 3
        assert total.batches_served == sum(
            s.batches_served for s in pool.shard_statistics()
        )
        assert total.strategies_run == 3


# -------------------------------------------------------------- execute_plans


class TestExecutePlans:
    def test_dispatches_by_memo_uid(self, star_catalog, star_db):
        pool = SessionPool(star_catalog, shards=4, database=star_db)
        batch = random_star_batch(2, seed=4, n_dimensions=N_DIMENSIONS)
        result = pool.optimize(batch)
        execution = pool.execute_plans(result)
        assert execution.rows == pool.execute_batch(batch).rows

    def test_rejects_foreign_results(self, star_catalog, star_db):
        pool = SessionPool(star_catalog, shards=2, database=star_db)
        other = OptimizerSession(star_catalog)
        result = other.optimize(random_star_batch(2, seed=4, n_dimensions=N_DIMENSIONS))
        with pytest.raises(ValueError, match="not optimized by any shard"):
            pool.execute_plans(result)


# ------------------------------------------------------------------ scheduler


class TestSchedulerIntegration:
    def test_concurrent_mixed_traffic_smoke(self, star_catalog, star_db):
        """Concurrency smoke test: many workers, mixed queries, pooled shards —
        every outcome matches a direct single-session execution."""
        pool = SessionPool(star_catalog, shards=4, database=star_db)
        queries = [
            query
            for seed in (1, 2, 5)
            for query in random_star_batch(3, seed=seed, n_dimensions=N_DIMENSIONS)
        ]
        barrier = threading.Barrier(4)
        submitted = []  # (query, future) pairs — names repeat across seeds
        errors = []

        with BatchScheduler(
            pool, max_batch_size=4, max_delay=0.05, workers=4, strategy="greedy"
        ) as scheduler:

            def submitter(chunk):
                try:
                    barrier.wait(timeout=30)
                    submitted.extend(
                        (q, scheduler.submit(q, execute=True)) for q in chunk
                    )
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            chunks = [queries[0::4], queries[1::4], queries[2::4], queries[3::4]]
            threads = [threading.Thread(target=submitter, args=(c,)) for c in chunks]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            outcomes = [(query, future.result(timeout=300)) for query, future in submitted]

        assert len(outcomes) == len(queries)
        reference = OptimizerSession(star_catalog, database=star_db)
        for query, outcome in outcomes:
            assert outcome.rows is not None
            assert outcome.query_name.split("#")[0] == query.name
            assert outcome.rows == reference.execute(query, strategy="greedy")

    def test_micro_batches_never_straddle_shards(self, tpcd):
        pool = SessionPool(tpcd, shards=4)
        q1, q2 = batched_queries(1)
        with BatchScheduler(pool, max_batch_size=8, max_delay=0.2) as scheduler:
            outcomes = [
                f.result(timeout=120)
                for f in [scheduler.submit(q) for q in (q1, q2, q1, q2)]
            ]
        # Each micro-batch was optimized by exactly the routed shard.
        for query in (q1, q2):
            shard_stats = pool.shard(pool.route(query)).statistics
            assert shard_stats.batches_served >= 1
        served = sum(s.batches_served for s in pool.shard_statistics())
        assert served == pool.statistics().batches_served
        assert {o.query_name.split("#")[0] for o in outcomes} == {q1.name, q2.name}

    def test_submit_batch_routes_through_pool(self, tpcd):
        pool = SessionPool(tpcd, shards=4)
        batch = composite_batch(1)
        with BatchScheduler(pool, strategy="volcano") as scheduler:
            result = scheduler.submit_batch(batch).result(timeout=120)
        assert result.batch_name == "BQ1"
        assert pool.shard(pool.route(batch)).statistics.batches_served == 1
