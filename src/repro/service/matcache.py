"""The cross-batch materialization cache of the serving layer.

When an :class:`~repro.service.session.OptimizerSession` executes a batch,
the consolidated plan materializes shared subexpressions and the queries
read them back.  Those materialized row sets are exactly as reusable across
batches as the optimizer state is: a later batch (or the same batch again)
whose plan materializes the *same logical result* can skip the computation
entirely.  The :class:`MaterializationCache` stores materialized node
results keyed by the memo's **semantic fingerprint**
(:func:`~repro.dag.fingerprint.canonical_key`) plus the stored sort order —
never by memo group id, which is interning-order dependent — so one cache
serves every batch of a session, and would even survive a session rebuild.

The cache does byte-size accounting (a deterministic per-row estimate),
policy-driven admission and eviction, and token-based invalidation: the
session stamps every fill with the database's
:attr:`~repro.execution.data.Database.version`, and a fill whose token no
longer matches the cache's current token is rejected — a slow execution
racing a data change can never reinstate stale rows.  The default policy is
the original cost-aware LRU (entries that are cheap to recompute per byte
go first, :class:`~repro.adaptive.policy.CostLRUPolicy`); an adaptive
session swaps in the benefit-aware policy scored from *measured*
recomputation times (:class:`~repro.adaptive.policy.BenefitAwarePolicy`).

All operations are thread-safe (the scheduler executes through one shared
session from a pool of workers).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..adaptive.policy import CachePolicy, CostLRUPolicy
from ..algebra.properties import SortOrder
from ..analysis.sanitizer import sanitize_lock
from ..dag.fingerprint import Signature, canonical_key
from ..obs import Observability, StatisticsView, metric_field

__all__ = ["CacheStatistics", "MaterializationCache", "cache_key", "estimate_rows_bytes"]

Row = Dict[str, object]

#: A cache key: (canonical fingerprint text, stored sort order text).
CacheKey = Tuple[str, str]


def cache_key(signature: Signature, order: Optional[SortOrder] = None) -> CacheKey:
    """The cache key for a materialized node: fingerprint + stored order."""
    return (canonical_key(signature), str(order) if order is not None else "any")


def _value_bytes(value: object) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        # Encoded length, not len(): a character count undercounts non-ASCII
        # payloads against the documented byte accounting.
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    return len(str(value).encode("utf-8"))


def estimate_rows_bytes(rows: Iterable[Row]) -> int:
    """A deterministic byte-size estimate of a materialized row set.

    Per row a fixed dict overhead plus key and value payloads; the point is
    not accuracy but a stable, reproducible accounting basis for the
    eviction policy and its tests.
    """
    total = 0
    for row in rows:
        total += 64
        for key, value in row.items():
            total += len(key.encode("utf-8")) + _value_bytes(value)
    return total


class CacheStatistics(StatisticsView):
    """Counters describing how the cache served its traffic.

    A live view over a :class:`~repro.obs.MetricsRegistry` (series
    ``matcache_hits``, ``matcache_misses``, ...); every field keeps the
    exact name and semantics of the former dataclass, and ``aggregate``
    still sums counters across caches (the pool's per-shard roll-up).
    """

    _prefix = "matcache_"

    hits = metric_field()
    misses = metric_field()
    fills = metric_field()
    rejected_fills = metric_field()
    policy_rejections = metric_field()
    evictions = metric_field()
    invalidations = metric_field()


@dataclass
class _Entry:
    rows: Tuple[Row, ...]
    bytes: int
    cost: float
    hits: int = 0
    last_used: int = 0
    #: Lazily-memoized columnar view of ``rows`` (see :meth:`get_batch`).
    #: Entries are immutable once stored — a refill builds a new ``_Entry``
    #: — so the memo can never go stale.
    batch: Optional[object] = None


class MaterializationCache:
    """Materialized node results shared across the batches of a session.

    Args:
        max_bytes: capacity of the cache in (estimated) bytes.
        max_entries: upper bound on the number of cached row sets.
        policy: the admission/eviction policy; the default
            :class:`~repro.adaptive.policy.CostLRUPolicy` keeps the entry
            with the lowest ``recompute-cost × (1 + hits) / bytes`` score
            shortest (ties broken least-recently-used), i.e. the cache
            prefers rows that are expensive to recompute, popular, and
            small — the behaviour of earlier releases, bit for bit.

    Entries are copied in on :meth:`put` and copied out on :meth:`get`, so a
    caller can never corrupt cached rows by mutating what it was handed (the
    executor merges row dicts in place while joining).
    """

    #: The lock's role name in the sanitizer's lock-order graph; subclasses
    #: with a different locking profile (the spilling cache) override it.
    _LOCK_ROLE = "matcache"

    def __init__(
        self,
        *,
        max_bytes: int = 64 * 1024 * 1024,
        max_entries: int = 256,
        policy: Optional[CachePolicy] = None,
        obs: Optional[Observability] = None,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.policy: CachePolicy = policy if policy is not None else CostLRUPolicy()
        self.obs = obs if obs is not None else Observability()
        self._tracer = self.obs.tracer
        self.statistics = CacheStatistics(self.obs.registry, labels=self.obs.labels)
        # Under REPRO_SANITIZE=1 the lock joins the cross-thread lock-order
        # graph (see repro.analysis.sanitizer); otherwise it is a bare RLock.
        self._lock = sanitize_lock(threading.RLock(), self._LOCK_ROLE, obs=self.obs)
        self._entries: Dict[CacheKey, _Entry] = {}
        self._bytes = 0
        self._clock = 0
        self._token: Optional[Hashable] = None

    # ----------------------------------------------------------------- state

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def token(self) -> Optional[Hashable]:
        with self._lock:
            return self._token

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[CacheKey, ...]:
        with self._lock:
            return tuple(self._entries)

    def statistics_snapshot(self) -> Dict[str, int]:
        """A *consistent* copy of the statistics counters.

        Taken under the cache lock, so a reader can never observe a torn
        multi-counter state (e.g. a fill counted whose eviction is not) the
        way reading ``self.statistics`` field-by-field mid-operation can.
        The pool's :meth:`~repro.service.pool.SessionPool
        .matcache_statistics` aggregates from these snapshots.
        """
        with self._lock:
            return self.statistics.as_dict()

    # ------------------------------------------------------------ invalidation

    def invalidate(self) -> int:
        """Drop every entry (e.g. after a catalog or data change); returns count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            if dropped:
                self.statistics.invalidations += 1
                if self._tracer.enabled:
                    self._tracer.event("matcache.invalidate", dropped=dropped)
            return dropped

    def ensure_token(self, token: Hashable) -> bool:
        """Bind the cache to a data-version token, invalidating on change.

        Returns True when the token changed (and the cache was flushed).
        The first call merely adopts the token.
        """
        with self._lock:
            if self._token is None:
                self._token = token
                return False
            if self._token == token:
                return False
            self.invalidate()
            self._token = token
            return True

    # ------------------------------------------------------------------ get/put

    def get(self, key: CacheKey) -> Optional[List[Row]]:
        """The cached rows for a key (a fresh copy), or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                if self._tracer.enabled:
                    self._tracer.event("matcache.miss", key=key[0][:16], order=key[1])
                return None
            self._clock += 1
            entry.hits += 1
            entry.last_used = self._clock
            self.statistics.hits += 1
            if self._tracer.enabled:
                self._tracer.event("matcache.hit", key=key[0][:16], order=key[1])
            return [dict(row) for row in entry.rows]

    def get_batch(self, key: CacheKey):
        """The cached rows as a :class:`~repro.execution.columnar.batch
        .ColumnBatch`, or None on a miss.

        Hit/miss/fault accounting is exactly :meth:`get`'s — a session may
        freely mix backends against one cache without skewing any counter.
        The batch is transposed once per entry and memoized; callers get a
        shared, immutable-by-convention view (the columnar executor never
        mutates received columns, and converts to fresh row dicts at its
        boundary), so warm columnar reads skip both the row-copy and the
        rows→columns transpose.
        """
        from ..execution.columnar.batch import ColumnBatch  # lazy: row path never pays

        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                # Delegate to get() so subclass tiers (disk fault-in) and
                # their statistics behave identically for both access paths.
                rows = self.get(key)
                if rows is None:
                    return None
                entry = self._entries.get(key)
                if entry is None:
                    # Faulted from disk but too large to promote: serve a
                    # one-shot batch straight from the decoded rows.
                    return ColumnBatch.from_rows(rows)
            else:
                self._clock += 1
                entry.hits += 1
                entry.last_used = self._clock
                self.statistics.hits += 1
                if self._tracer.enabled:
                    self._tracer.event("matcache.hit", key=key[0][:16], order=key[1])
            if entry.batch is None:
                entry.batch = ColumnBatch.from_rows(entry.rows)
            return entry.batch

    def put(
        self,
        key: CacheKey,
        rows: List[Row],
        *,
        cost: float = 0.0,
        token: Optional[Hashable] = None,
    ) -> bool:
        """Store one materialized row set; returns False if the fill was rejected.

        A fill is rejected when its ``token`` no longer matches the cache's
        current token (the data changed while the rows were being computed),
        when the row set alone exceeds the cache capacity, or when the
        policy declines to admit it (e.g. a measured recomputation too cheap
        to be worth the space).
        """
        frozen = tuple(dict(row) for row in rows)
        # Size the frozen copy, not the caller's list: the executor merges
        # row dicts in place, so a concurrent writer can mutate `rows`
        # between the freeze above and the accounting — sizing `rows` could
        # store a byte count that disagrees with the rows actually kept.
        size = estimate_rows_bytes(frozen)
        with self._lock:
            if token is not None and self._token is not None and token != self._token:
                self.statistics.rejected_fills += 1
                if self._tracer.enabled:
                    self._tracer.event("matcache.fill_rejected", key=key[0][:16], why="stale_token")
                return False
            if size > self.max_bytes:
                self.statistics.rejected_fills += 1
                if self._tracer.enabled:
                    self._tracer.event("matcache.fill_rejected", key=key[0][:16], why="oversized")
                return False
            if not self.policy.admit(key, size, cost):
                self.statistics.rejected_fills += 1
                self.statistics.policy_rejections += 1
                if self._tracer.enabled:
                    self._tracer.event("matcache.fill_rejected", key=key[0][:16], why="policy")
                return False
            self._store_locked(key, frozen, size, cost)
            self.statistics.fills += 1
            if self._tracer.enabled:
                self._tracer.event(
                    "matcache.fill", key=key[0][:16], order=key[1], bytes=size
                )
            self._on_put_locked(key)
            return True

    def _on_put_locked(self, key: CacheKey) -> None:
        """Hook invoked (with the lock held) after a successful fill.

        The disk tier uses it to drop the key's now-outdated spill file in
        the same critical section as the fill — a gap between the two would
        let a concurrent ``get`` fault the stale file back in over the
        fresh rows.
        """

    def _store_locked(
        self, key: CacheKey, frozen: Tuple[Row, ...], size: int, cost: float
    ) -> None:
        """Insert an already-frozen, already-admitted entry and rebalance.

        Shared by :meth:`put` and the disk tier's fault-in promotion (which
        must not re-run admission or count a fill).  Called with the lock
        held.
        """
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.bytes
        self._clock += 1
        self._entries[key] = _Entry(
            rows=frozen, bytes=size, cost=max(cost, 0.0), last_used=self._clock
        )
        self._bytes += size
        self._evict_locked(protect=key)

    # --------------------------------------------------------------- eviction

    def _evict_locked(self, protect: Optional[CacheKey] = None) -> None:
        while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
            victim = min(
                (key for key in self._entries if key != protect),
                key=lambda k: (
                    self.policy.score(k, self._entries[k], self._clock),
                    self._entries[k].last_used,
                ),
                default=None,
            )
            if victim is None:
                return
            entry = self._entries.pop(victim)
            self._bytes -= entry.bytes
            self.statistics.evictions += 1
            if self._tracer.enabled:
                self._tracer.event("matcache.evict", key=victim[0][:16], bytes=entry.bytes)
            self._on_evict_locked(victim, entry)

    def _on_evict_locked(self, key: CacheKey, entry: _Entry) -> None:
        """Hook invoked (with the lock held) for every evicted victim.

        The memory tier drops victims on the floor; the disk tier
        (:class:`~repro.storage.spill.SpillingMaterializationCache`)
        overrides this to spill them to per-entry files instead.
        """
