"""The user-facing multi-query optimizer facade.

:class:`MultiQueryOptimizer` is a thin, backward-compatible facade over a
private one-shot :class:`~repro.service.session.OptimizerSession`: the
session owns the shared memo, the ``bestCost`` engines and the result
caches, so repeated ``optimize``/``compare`` calls on one optimizer reuse
all prior work (the serving layer exposes the same machinery for long-lived
cross-batch reuse).

Strategies are dispatched through the pluggable registry of
:mod:`repro.core.strategies`; ``STRATEGIES`` is derived from that registry,
so strategies registered by third-party code show up automatically:

>>> from repro.core import mqo
>>> mqo.STRATEGIES
('volcano', 'greedy', 'marginal-greedy', 'share-all', 'exhaustive')
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from ..algebra.logical import Query, QueryBatch
from ..catalog.catalog import Catalog
from ..cost.model import CostModel
from ..dag.build import DagConfig
from ..dag.sharing import BatchDag, build_batch_dag
from ..optimizer.best_cost import BestCostEngine
from ..optimizer.volcano import BestCostResult
from .strategies import (
    Strategy,
    StrategyContext,
    available_strategies,
    ordered_selection,
    resolve_strategy,
)

__all__ = ["MQOResult", "MultiQueryOptimizer", "STRATEGIES", "run_strategy"]


def __getattr__(name: str):
    # STRATEGIES is computed from the live strategy registry so that
    # strategies registered after import are reflected; ``from repro.core.mqo
    # import STRATEGIES`` snapshots the tuple at import time as before.
    if name == "STRATEGIES":
        return available_strategies()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class MQOResult:
    """The outcome of optimizing one batch with one strategy."""

    strategy: str
    batch_name: str
    total_cost: float
    volcano_cost: float
    materialized: Tuple[int, ...]
    materialized_labels: Tuple[str, ...]
    optimization_time: float
    oracle_calls: int
    query_costs: Dict[str, float]
    plan: BestCostResult
    dag_summary: Dict[str, int] = field(default_factory=dict)
    #: uid of the memo the plans' group ids refer to (None on legacy results).
    memo_uid: Optional[int] = None

    @property
    def benefit(self) -> float:
        """Materialization benefit ``bc(∅) − bc(X)``."""
        return self.volcano_cost - self.total_cost

    @property
    def improvement(self) -> float:
        """Relative improvement over the plain Volcano baseline (0..1)."""
        if self.volcano_cost <= 0:
            return 0.0
        return self.benefit / self.volcano_cost

    @property
    def materialized_count(self) -> int:
        return len(self.materialized)

    def summary(self) -> str:
        lines = [
            f"strategy            : {self.strategy}",
            f"batch               : {self.batch_name}",
            f"estimated cost      : {self.total_cost / 1000.0:.2f} s",
            f"volcano (no MQO)    : {self.volcano_cost / 1000.0:.2f} s",
            f"benefit             : {self.benefit / 1000.0:.2f} s ({self.improvement:.1%})",
            f"materialized nodes  : {self.materialized_count}",
            f"optimization time   : {self.optimization_time:.3f} s",
            f"bestCost calls      : {self.oracle_calls}",
        ]
        for label in self.materialized_labels:
            lines.append(f"  * {label}")
        return "\n".join(lines)


def run_strategy(
    dag: BatchDag,
    engine: BestCostEngine,
    *,
    batch_name: str,
    strategy: Union[str, "Strategy"] = "marginal-greedy",
    lazy: bool = True,
    cardinality: Optional[int] = None,
    decomposition: str = "use-cost",
) -> MQOResult:
    """Run one strategy against a pre-built DAG and engine.

    This is the shared runner behind the facade and the serving layer: it
    resolves the strategy through the registry, evaluates the selection,
    falls back to the no-sharing plan when materializing does not pay off,
    and assembles the :class:`MQOResult`.
    """
    strat = resolve_strategy(strategy)
    start = time.perf_counter()
    calls_before = engine.statistics.evaluations

    volcano_cost = engine.volcano_cost()
    context = StrategyContext(
        dag=dag,
        engine=engine,
        lazy=lazy,
        cardinality=cardinality,
        decomposition=decomposition,
    )
    selected = ordered_selection(strat.select(context))

    result = engine.evaluate(frozenset(selected))
    if result.total_cost > volcano_cost and strat.name != "volcano":
        # The final plan choice is cost-based: if the selected
        # materializations do not pay off (possible for share-all, and in
        # principle for marginal-greedy whose additive cost part is only
        # an approximation), fall back to the no-sharing plan.
        selected = ()
        result = engine.evaluate(frozenset())
    elapsed = time.perf_counter() - start
    calls = engine.statistics.evaluations - calls_before

    return MQOResult(
        strategy=strat.name,
        batch_name=batch_name,
        total_cost=result.total_cost,
        volcano_cost=volcano_cost,
        materialized=selected,
        materialized_labels=tuple(dag.describe_candidate(g) for g in selected),
        optimization_time=elapsed,
        oracle_calls=calls,
        query_costs={name: plan.cost for name, plan in result.query_plans.items()},
        plan=result,
        dag_summary=dag.summary(),
        memo_uid=dag.memo.uid,
    )


class MultiQueryOptimizer:
    """Facade: build the DAG for a batch and pick the nodes to materialize."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        dag_config: Optional[DagConfig] = None,
        *,
        incremental: bool = True,
    ):
        self.catalog = catalog
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.dag_config = dag_config if dag_config is not None else DagConfig()
        self.incremental = incremental
        self._session = None

    @property
    def session(self) -> "OptimizerSession":
        """The lazily created session backing ``optimize``/``compare``."""
        if self._session is None:
            from ..service.session import OptimizerSession

            self._session = OptimizerSession(
                self.catalog,
                self.cost_model,
                self.dag_config,
                incremental=self.incremental,
            )
        return self._session

    # ------------------------------------------------------------------ setup

    def build_dag(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchDag:
        """Build a standalone DAG for a batch (a fresh memo, not the session's)."""
        batch = self._as_batch(batch)
        return build_batch_dag(batch, self.catalog, self.dag_config)

    def make_engine(self, dag: BatchDag) -> BestCostEngine:
        return BestCostEngine(dag, self.cost_model, incremental=self.incremental)

    @staticmethod
    def _as_batch(batch: Union[QueryBatch, Sequence[Query]]) -> QueryBatch:
        if isinstance(batch, QueryBatch):
            return batch
        queries = tuple(batch)
        return QueryBatch("batch", queries)

    # --------------------------------------------------------------- optimize

    def optimize(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategy: str = "marginal-greedy",
        *,
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> MQOResult:
        """Optimize a batch end to end (through the backing session)."""
        return self.session.optimize(
            self._as_batch(batch),
            strategy=strategy,
            lazy=lazy,
            cardinality=cardinality,
            decomposition=decomposition,
        )

    def compare(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategies: Sequence[str] = ("volcano", "greedy", "marginal-greedy"),
        *,
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> Dict[str, MQOResult]:
        """Run several strategies on the same batch (sharing the session DAG)."""
        return self.session.compare(
            self._as_batch(batch),
            strategies,
            lazy=lazy,
            cardinality=cardinality,
            decomposition=decomposition,
        )

    def optimize_with(
        self,
        dag: BatchDag,
        engine: BestCostEngine,
        *,
        batch_name: str,
        strategy: str = "marginal-greedy",
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> MQOResult:
        """Run one strategy against a pre-built DAG and engine."""
        return run_strategy(
            dag,
            engine,
            batch_name=batch_name,
            strategy=strategy,
            lazy=lazy,
            cardinality=cardinality,
            decomposition=decomposition,
        )
