"""Runtime concurrency sanitizer: lock-order tracking and I/O-under-lock.

The static half of this package proves *discipline* (guarded state is only
touched under its lock); this module watches the *dynamics* the AST cannot
see — in which order threads actually acquire the locks, and whether a
thread performs disk I/O while holding one.

Components opt in by wrapping their locks at construction time::

    self._lock = sanitize_lock(threading.RLock(), "matcache", obs=self.obs)

and marking their I/O sites::

    record_io("spill.write", obs=self.obs, key=key)

When ``REPRO_SANITIZE`` is unset (the default), :func:`sanitize_lock`
returns the bare lock unchanged — the serving hot path pays nothing, not
even an attribute indirection.  When set to a truthy value, every acquire
and release goes through a :class:`SanitizedLock` that maintains a global
cross-thread **lock-order graph**: an edge ``A -> B`` means some thread
acquired a ``B``-role lock while holding an ``A``-role lock.  A cycle in
that graph is a potential deadlock even if the run never hung; an I/O call
under a held lock is the spill-stall smell ROADMAP calls out.  Both are
counted on the component's :class:`~repro.obs.MetricsRegistry` and emitted
as trace events, and :meth:`SanitizerState.report` serializes everything
for test assertions and CI artifacts.

Roles, not lock instances, are the graph nodes: a 4-shard pool has four
``"session"`` locks, and an order inversion between any two of them is the
same bug.  Re-entrant re-acquisition of the same role (RLock) does not add
a self-edge.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "SanitizedLock",
    "SanitizerState",
    "record_io",
    "sanitize_enabled",
    "sanitize_lock",
    "sanitizer_state",
]

_ENV_VAR = "REPRO_SANITIZE"
_FALSY = {"", "0", "false", "no", "off"}


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for instrumented locks *right now*.

    Read at every call (not import) so tests can flip the environment with
    ``monkeypatch.setenv`` and rebuild components without reloading modules.
    """
    return os.environ.get(_ENV_VAR, "").strip().lower() not in _FALSY


class _ThreadLocalStacks(threading.local):
    """Per-thread stack of held (role, lock id) pairs, in acquisition order."""

    def __init__(self):
        self.held: List[Tuple[str, int]] = []


class SanitizerState:
    """The global cross-thread record: lock-order graph + I/O-under-lock.

    One process-wide instance lives behind :func:`sanitizer_state`; tests
    call :meth:`reset` around each scenario.  All mutation happens under a
    private lock that is *not* itself sanitized.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._stacks = _ThreadLocalStacks()
        #: role -> set of roles acquired while the key role was held.
        self._edges: Dict[str, Set[str]] = {}
        #: (held-role, acquired-role) -> one example (thread name, line of roles below).
        self._edge_examples: Dict[Tuple[str, str], str] = {}
        self._acquisitions: Dict[str, int] = {}
        #: (held-roles tuple, io kind) -> count.
        self._io_under_lock: Dict[Tuple[Tuple[str, ...], str], int] = {}
        self._cycles_seen: Set[Tuple[str, ...]] = set()

    # ------------------------------------------------------------ recording

    def on_acquire(self, role: str, lock_id: int, obs=None) -> None:
        stack = self._stacks.held
        held_roles = [r for r, _ in stack]
        new_cycles: List[Tuple[str, ...]] = []
        with self._lock:
            self._acquisitions[role] = self._acquisitions.get(role, 0) + 1
            for held in held_roles:
                if held == role:
                    continue  # RLock re-entry / sibling same-role locks
                targets = self._edges.setdefault(held, set())
                if role not in targets:
                    targets.add(role)
                    self._edge_examples[(held, role)] = (
                        f"thread {threading.current_thread().name!r} held "
                        f"{'<'.join(held_roles)} then acquired {role!r}"
                    )
                    for cycle in self._cycles_locked():
                        if cycle not in self._cycles_seen:
                            self._cycles_seen.add(cycle)
                            new_cycles.append(cycle)
        stack.append((role, lock_id))
        if obs is not None:
            obs.counter("sanitizer_lock_acquisitions_total", role=role).inc()
            for cycle in new_cycles:
                obs.counter("sanitizer_lock_order_cycles_total").inc()
                obs.tracer.event(
                    "sanitizer.lock_order_cycle", cycle="->".join(cycle)
                )

    def on_release(self, role: str, lock_id: int) -> None:
        stack = self._stacks.held
        # Locks almost always release LIFO, but `release()` called out of
        # order is legal; drop the newest matching entry.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == (role, lock_id):
                del stack[index]
                return

    def on_io(self, kind: str, obs=None, **detail: object) -> None:
        held = tuple(r for r, _ in self._stacks.held)
        if not held:
            return
        with self._lock:
            key = (held, kind)
            self._io_under_lock[key] = self._io_under_lock.get(key, 0) + 1
        if obs is not None:
            obs.counter(
                "sanitizer_io_under_lock_total", kind=kind, locks="<".join(held)
            ).inc()
            if obs.tracer.enabled:
                obs.tracer.event(
                    "sanitizer.io_under_lock",
                    kind=kind,
                    locks="<".join(held),
                    **detail,
                )

    # ------------------------------------------------------------- queries

    def held_roles(self) -> Tuple[str, ...]:
        """Roles the *current thread* holds, outermost first."""
        return tuple(r for r, _ in self._stacks.held)

    def edges(self) -> Dict[str, Set[str]]:
        with self._lock:
            return {src: set(dst) for src, dst in self._edges.items()}

    def cycles(self) -> List[Tuple[str, ...]]:
        """Every distinct cycle in the lock-order graph (empty == acyclic)."""
        with self._lock:
            return self._cycles_locked()

    def _cycles_locked(self) -> List[Tuple[str, ...]]:
        cycles: Set[Tuple[str, ...]] = set()
        edges = self._edges

        def visit(node: str, path: List[str], on_path: Set[str]) -> None:
            for nxt in sorted(edges.get(node, ())):
                if nxt in on_path:
                    cycle = path[path.index(nxt):] + [nxt]
                    # Canonicalize rotation so A->B->A and B->A->B dedupe.
                    body = cycle[:-1]
                    pivot = body.index(min(body))
                    canonical = tuple(body[pivot:] + body[:pivot]) + (
                        min(body),
                    )
                    cycles.add(canonical)
                elif nxt not in path:
                    path.append(nxt)
                    on_path.add(nxt)
                    visit(nxt, path, on_path)
                    on_path.discard(nxt)
                    path.pop()

        for start in sorted(edges):
            visit(start, [start], {start})
        return sorted(cycles)

    def io_events(self) -> Dict[Tuple[Tuple[str, ...], str], int]:
        with self._lock:
            return dict(self._io_under_lock)

    def report(self) -> dict:
        """A JSON-serializable summary (tests and CI artifacts)."""
        with self._lock:
            edges = {src: sorted(dst) for src, dst in sorted(self._edges.items())}
            examples = {
                f"{src}->{dst}": example
                for (src, dst), example in sorted(self._edge_examples.items())
            }
            acquisitions = dict(sorted(self._acquisitions.items()))
            io = [
                {"locks": list(held), "kind": kind, "count": count}
                for (held, kind), count in sorted(self._io_under_lock.items())
            ]
            cycles = [list(c) for c in self._cycles_locked()]
        return {
            "enabled": sanitize_enabled(),
            "acquisitions": acquisitions,
            "lock_order_edges": edges,
            "edge_examples": examples,
            "cycles": cycles,
            "io_under_lock": io,
        }

    def reset(self) -> None:
        """Drop all recorded state (per-test isolation).

        Only clears the shared record; other threads' held-stacks are
        thread-local and die with their threads.
        """
        with self._lock:
            self._edges.clear()
            self._edge_examples.clear()
            self._acquisitions.clear()
            self._io_under_lock.clear()
            self._cycles_seen.clear()
        self._stacks.held.clear()


_STATE = SanitizerState()


def sanitizer_state() -> SanitizerState:
    """The process-wide sanitizer record."""
    return _STATE


class SanitizedLock:
    """A lock wrapper that reports every acquire/release to the sanitizer.

    Context-manager and ``acquire``/``release`` compatible with
    ``threading.Lock``/``RLock``, so it drops into ``with self._lock:``
    sites unchanged.  Recording happens *after* a successful acquire and
    *before* the release, so the held-stack matches reality even under
    contention.
    """

    __slots__ = ("_inner", "role", "_obs", "_state")

    def __init__(self, inner, role: str, obs=None, state: Optional[SanitizerState] = None):
        self._inner = inner
        self.role = role
        self._obs = obs
        self._state = state if state is not None else _STATE

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._state.on_acquire(self.role, id(self._inner), self._obs)
        return acquired

    def release(self) -> None:
        self._state.on_release(self.role, id(self._inner))
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"SanitizedLock(role={self.role!r}, inner={self._inner!r})"


def sanitize_lock(lock, role: str, obs=None):
    """Wrap ``lock`` for sanitizing when ``REPRO_SANITIZE`` is on.

    The one call components make.  Disabled (the default) it returns
    ``lock`` itself — zero wrapper, zero overhead; enabled it returns a
    :class:`SanitizedLock` reporting to the global state and to ``obs``.
    """
    if not sanitize_enabled():
        return lock
    return SanitizedLock(lock, role, obs=obs)


def record_io(kind: str, obs=None, **detail: object) -> None:
    """Mark a blocking-I/O site; records only if sanitizing *and* a
    sanitized lock is currently held by this thread.  Free when disabled."""
    if not sanitize_enabled():
        return
    _STATE.on_io(kind, obs, **detail)
