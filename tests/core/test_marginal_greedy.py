"""Tests for MarginalGreedy, LazyMarginalGreedy and the Theorem-1 bound."""

import math

import pytest

from repro.core.coverage import ProfittedMaxCoverage, perfect_cover_instance, random_instance
from repro.core.decomposition import canonical_decomposition, decomposition_from_parts
from repro.core.exhaustive import maximize
from repro.core.marginal_greedy import (
    lazy_marginal_greedy,
    marginal_greedy,
    theorem1_bound,
    theorem1_factor,
)
from repro.core.set_functions import (
    AdditiveFunction,
    CallCountingFunction,
    LambdaSetFunction,
)


def coverage_minus_cost(costs):
    """f(S) = 2·coverage(S) − Σ cost(e): normalized submodular, may be negative."""
    sets = {
        "a": frozenset({1, 2, 3}),
        "b": frozenset({3, 4}),
        "c": frozenset({4, 5}),
        "d": frozenset({1}),
    }

    def coverage(subset):
        covered = frozenset().union(*(sets[e] for e in subset)) if subset else frozenset()
        return 2.0 * len(covered)

    monotone = LambdaSetFunction(sets.keys(), coverage)
    cost = AdditiveFunction({e: float(costs[e]) for e in sets})
    return decomposition_from_parts(monotone, cost)


class TestMarginalGreedy:
    def test_selects_high_ratio_elements(self):
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": 100.0})
        result = marginal_greedy(dec)
        assert "a" in result.selected
        assert "d" not in result.selected
        assert result.value == pytest.approx(dec.value(result.selected))

    def test_stops_when_ratio_drops_below_one(self):
        # Covering element 1 again via "d" has zero marginal gain.
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        result = marginal_greedy(dec)
        assert "d" not in result.selected
        assert all(step.ratio > 1.0 for step in result.steps)

    def test_negative_cost_elements_added_for_free(self):
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": -5.0})
        result = marginal_greedy(dec)
        assert "d" in result.selected
        assert "d" in result.free_elements

    def test_negative_cost_elements_can_be_disabled(self):
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": -5.0})
        result = marginal_greedy(dec, add_negative_cost_elements=False)
        assert "d" not in result.selected

    def test_cardinality_constraint(self):
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        result = marginal_greedy(dec, cardinality=1)
        assert len(result.selected) == 1
        unconstrained = marginal_greedy(dec)
        assert len(unconstrained.selected) >= len(result.selected)

    def test_cardinality_zero(self):
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        result = marginal_greedy(dec, cardinality=0)
        assert result.selected == frozenset()

    def test_accepts_plain_set_function(self):
        # Passing a SetFunction triggers the canonical decomposition.
        dec = coverage_minus_cost({"a": 1.0, "b": 1.5, "c": 1.5, "d": 3.0})
        result = marginal_greedy(dec.original)
        assert dec.original.value(result.selected) == pytest.approx(result.value)

    def test_empty_universe(self):
        dec = decomposition_from_parts(
            LambdaSetFunction(frozenset(), lambda s: 0.0), AdditiveFunction({})
        )
        result = marginal_greedy(dec)
        assert result.selected == frozenset()
        assert result.value == 0.0

    def test_value_never_negative_when_empty_is_feasible(self):
        # f(∅)=0 so greedy should never return something worse than 0 when
        # it only adds elements with ratio>1 (each pick strictly increases f).
        dec = coverage_minus_cost({"a": 5.0, "b": 5.0, "c": 5.0, "d": 5.0})
        result = marginal_greedy(dec)
        assert result.value >= -1e-9

    def test_trace_is_consistent(self):
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        result = marginal_greedy(dec)
        running = set()
        for step in result.steps:
            running.add(step.element)
            assert step.value_after == pytest.approx(dec.value(frozenset(running)))
        assert len(result) == len(result.selected)


class TestLazyMarginalGreedy:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_eager_on_random_profitted_coverage(self, seed):
        instance = random_instance(n_elements=12, n_subsets=6, budget=3, seed=seed)
        problem = ProfittedMaxCoverage(instance, gamma=2.0)
        dec = problem.decomposition()
        eager = marginal_greedy(dec)
        lazy = lazy_marginal_greedy(dec)
        assert lazy.selected == eager.selected
        assert lazy.value == pytest.approx(eager.value)

    def test_lazy_uses_no_more_evaluations(self):
        instance = random_instance(n_elements=30, n_subsets=12, budget=4, seed=7)
        problem = ProfittedMaxCoverage(instance, gamma=2.0)
        dec = problem.decomposition()
        eager = marginal_greedy(dec, eliminate_low_ratio=False)
        lazy = lazy_marginal_greedy(dec)
        assert lazy.monotone_evaluations <= eager.monotone_evaluations

    def test_lazy_cardinality(self):
        instance = random_instance(n_elements=15, n_subsets=8, budget=3, seed=3)
        problem = ProfittedMaxCoverage(instance, gamma=3.0)
        dec = problem.decomposition()
        eager = marginal_greedy(dec, cardinality=2)
        lazy = lazy_marginal_greedy(dec, cardinality=2)
        assert lazy.selected == eager.selected


class TestTheorem1:
    def test_factor_limits(self):
        assert theorem1_factor(1.0, 0.0) == 1.0
        assert theorem1_factor(0.0, 1.0) == 0.0
        assert 0.0 < theorem1_factor(1.0, 1.0) < 1.0

    def test_factor_monotone_in_gamma(self):
        # Larger f(Θ)/c(Θ) means a better factor.
        factors = [theorem1_factor(gamma, 1.0) for gamma in (0.5, 1.0, 2.0, 5.0, 20.0)]
        assert factors == sorted(factors)

    def test_bound_value(self):
        gamma = 3.0
        expected = (1.0 - math.log(1 + gamma) / gamma) * gamma
        assert theorem1_bound(3.0, 1.0) == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_marginal_greedy_meets_bound_on_profitted_coverage(self, seed):
        instance = random_instance(n_elements=10, n_subsets=6, budget=3, seed=seed)
        problem = ProfittedMaxCoverage(instance, gamma=2.5)
        dec = problem.decomposition()
        optimum = maximize(dec.original)
        if optimum.best_value <= 0:
            pytest.skip("degenerate instance with non-positive optimum")
        c_opt = dec.cost.value(optimum.best_set)
        guarantee = theorem1_bound(optimum.best_value, c_opt)
        result = marginal_greedy(dec)
        assert result.value >= guarantee - 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_bound_on_perfect_cover_instances(self, seed):
        instance = perfect_cover_instance(
            n_elements=12, cover_size=3, n_decoys=4, seed=seed
        )
        problem = ProfittedMaxCoverage(instance, gamma=2.0)
        dec = problem.decomposition()
        optimum = maximize(dec.original)
        assert optimum.best_value == pytest.approx(1.0)
        result = marginal_greedy(dec)
        c_opt = dec.cost.value(optimum.best_set)
        assert result.value >= theorem1_bound(optimum.best_value, c_opt) - 1e-9


class TestOracleUsage:
    def test_counts_monotone_evaluations(self):
        dec = coverage_minus_cost({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        counting = CallCountingFunction(dec.monotone)
        counted_dec = decomposition_from_parts(counting, dec.cost, original=dec.original)
        result = marginal_greedy(counted_dec)
        # Each reported evaluation corresponds to one f(S∪{e}) and one f(S)
        # call on the wrapped function (the marginal), so calls >= evaluations.
        assert counting.calls >= result.monotone_evaluations
        assert result.monotone_evaluations > 0
