"""Observability overhead benchmark: tracing must be free when off.

The acceptance bar for the :mod:`repro.obs` layer, asserted directly:

1. **Disabled mode is a no-op.**  On the warm columnar hot loop (a fully
   cached TPC-D composite batch re-executed through a session), a session
   whose tracer is the :data:`~repro.obs.NULL_TRACER` must be within
   :data:`MAX_DISABLED_OVERHEAD_PCT` (2%) of the *floor* — the bare
   executor invoked with pre-fetched cache hits and no observability
   calls at all.
2. **Enabled mode doesn't re-materialize or change answers.**  Tracing a
   warm batch writes a JSONL trace that contains **zero** ``matcache.fill``
   events, and the traced session returns bit-identical rows and reuse
   counters to the untraced one.

Timing alternates single iterations of the modes for :func:`iterations`
rounds and reports each mode's best — a warm iteration is ~20ms, where a
load burst on a shared runner alone exceeds the 2% bar, so the modes must
share their quiet windows rather than own timing blocks.

Results go to ``BENCH_obs.json`` at the repository root for CI to upload.
"""

import gc
import json
import time

import pytest

from _env import bench_path, scaled, tiny
from repro.catalog.tpcd import tpcd_catalog
from repro.execution import tiny_tpcd_database
from repro.obs import JsonlTraceWriter, Observability, Tracer
from repro.service import OptimizerSession
from repro.service.matcache import cache_key
from repro.workloads.batches import composite_batch

MAX_DISABLED_OVERHEAD_PCT = 2.0  # hard ceiling, asserted below (full scale)


def orders() -> int:
    return scaled(4000, 300)  # full: executor work dominates


def iterations() -> int:
    return scaled(40, 4)  # alternated rounds per mode, best-of


def _warm_session(tracer=None):
    """A columnar session with the composite batch fully cached."""
    obs = Observability(tracer=tracer)
    session = OptimizerSession(tpcd_catalog(1.0), executor="columnar", obs=obs)
    session.attach_database(tiny_tpcd_database(seed=11, orders=orders()))
    result = session.optimize(composite_batch(2))
    execution = session.execute_plans(result)  # cold pass fills the matcache
    assert execution.materializations > 0
    return session, result


def _best_of_each(fns, rounds=None):
    """Best single-iteration time for each mode, tightly alternated.

    One iteration of every mode per round, mode order rotating, best-of
    over all rounds: a load burst on a shared CI box then hits the
    alternating modes equally, and each mode's minimum lands in the same
    quiet windows — block-per-mode sampling instead charges whole bursts
    to whichever mode owned the block, which swamps a 2% bar.  Garbage is
    collected per round so one mode's allocation churn (the JSONL
    writer's) cannot bill its GC pauses to the next mode timed.
    """
    rounds = iterations() if rounds is None else rounds
    best = [float("inf")] * len(fns)
    for round_index in range(rounds):
        gc.collect()
        for offset in range(len(fns)):
            index = (round_index + offset) % len(fns)
            started = time.perf_counter()
            fns[index]()
            best[index] = min(best[index], time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def warm():
    return _warm_session()


@pytest.fixture(scope="module")
def floor_call(warm):
    """The seed-era hot loop: bare executor, pre-fetched hits, no obs calls."""
    session, result = warm
    plan = result.plan
    memo = session._builder.memo
    hits = {
        gid: session.matcache.get_batch(
            cache_key(memo.signature_of(gid), mat_plan.order)
        )
        for gid, mat_plan in plan.materialization_plans.items()
    }
    assert all(value is not None for value in hits.values())
    executor = session._executor
    return lambda: executor.execute_result(plan, materialized=dict(hits))


@pytest.mark.benchmark(group="obs")
def test_warm_execute_disabled_tracing(benchmark, warm):
    session, result = warm
    execution = benchmark(lambda: session.execute_plans(result))
    assert execution.materializations == 0


@pytest.mark.benchmark(group="obs")
def test_warm_execute_enabled_tracing(benchmark):
    from repro.obs import InMemorySink

    session, result = _warm_session(tracer=Tracer(InMemorySink()))
    execution = benchmark(lambda: session.execute_plans(result))
    assert execution.materializations == 0


def test_disabled_overhead_and_traced_parity(tmp_path, warm, floor_call):
    """The acceptance criteria, asserted directly; writes BENCH_obs.json."""
    session, result = warm

    # An identically warmed session with full-rate JSONL tracing on.
    tracer = Tracer(JsonlTraceWriter(tmp_path), sample=1.0)
    traced_session, traced_result = _warm_session(tracer=tracer)

    floor, disabled, enabled = _best_of_each(
        [
            floor_call,
            lambda: session.execute_plans(result),
            lambda: traced_session.execute_plans(traced_result),
        ]
    )
    untraced = session.execute_plans(result)
    traced = traced_session.execute_plans(traced_result)
    tracer.close()

    disabled_overhead_pct = (disabled / floor - 1.0) * 100.0
    enabled_overhead_pct = (enabled / floor - 1.0) * 100.0

    # Enabled-mode parity: same rows, no re-materialization, and of all the
    # traces written only the cold warm-up pass contains fill events.
    assert traced.rows == untraced.rows, "tracing must not change answers"
    assert traced.materializations == 0 and untraced.materializations == 0
    records = [
        json.loads(line)
        for line in tracer.sink.path.read_text(encoding="utf-8").splitlines()
    ]
    assert records, "full-rate tracing of a warm batch must write spans"
    fill_traces = {
        record["trace"]
        for record in records
        for event in record.get("events", ())
        if event["name"] == "matcache.fill"
    }
    assert fill_traces, "the cold warm-up pass should have traced its fills"
    assert len(fill_traces) == 1, (
        f"only the cold pass may fill the cache, got fills in {fill_traces}"
    )
    warm_executes = [
        record
        for record in records
        if record["name"] == "session.execute"
        and record["trace"] not in fill_traces
    ]
    assert len(warm_executes) >= iterations() + 1

    bench_path("BENCH_obs.json").write_text(
        json.dumps(
            {
                "batch": composite_batch(2).name,
                "orders": orders(),
                "tiny": tiny(),
                "unit": "seconds",
                "iterations": iterations(),
                "floor_bare_executor": floor,
                "disabled_tracing": disabled,
                "enabled_tracing": enabled,
                "disabled_overhead_pct": disabled_overhead_pct,
                "enabled_overhead_pct": enabled_overhead_pct,
                "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
                "warm_traced_executes": len(warm_executes),
                "warm_fill_events": 0,
                "trace_records": len(records),
                "rows_identical": True,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    if not tiny():
        assert disabled_overhead_pct <= MAX_DISABLED_OVERHEAD_PCT, (
            f"disabled-mode observability costs {disabled_overhead_pct:.2f}% on "
            f"the warm columnar hot loop (ceiling {MAX_DISABLED_OVERHEAD_PCT}%)"
        )
