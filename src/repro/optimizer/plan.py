"""Physical plans produced by the plan-extraction DP.

A :class:`PhysicalPlan` is an immutable tree of physical operators with
costs, cardinalities and delivered sort orders attached.  The MQO layer
mostly cares about ``plan.cost``, but the examples and the execution engine
consume the full tree (``pretty()`` renders it, the executor interprets it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional, Tuple

from ..algebra.expressions import AggregateExpr, ColumnRef, Predicate
from ..algebra.properties import SortOrder

__all__ = ["PhysicalOp", "PhysicalPlan"]


class PhysicalOp(str, Enum):
    """The physical operators of the reproduction's execution model."""

    TABLE_SCAN = "TableScan"
    INDEX_SCAN = "IndexScan"
    FILTER = "Filter"
    MERGE_JOIN = "MergeJoin"
    NESTED_LOOP_JOIN = "NestedLoopJoin"
    INDEX_NL_JOIN = "IndexNestedLoopJoin"
    SORT = "Sort"
    SORT_AGGREGATE = "SortAggregate"
    SCALAR_AGGREGATE = "ScalarAggregate"
    MATERIALIZE = "Materialize"
    READ_MATERIALIZED = "ReadMaterialized"


@dataclass(frozen=True)
class PhysicalPlan:
    """A physical operator with its children and accumulated cost.

    Attributes:
        op: the physical operator.
        group: the memo group this plan computes.
        cost: total cost of the subtree (children included), in milliseconds.
        local_cost: this operator's own cost.
        rows / width: estimated output cardinality and row width.
        order: the sort order the operator delivers.
        children: input plans.
        table: base table name (scans only).
        predicate: filter / join predicate, if any.
        group_by / aggregates: aggregation payload, if any.
    """

    op: PhysicalOp
    group: int
    cost: float
    local_cost: float
    rows: float
    width: float
    order: SortOrder = SortOrder()
    children: Tuple["PhysicalPlan", ...] = ()
    table: Optional[str] = None
    alias: Optional[str] = None
    predicate: Optional[Predicate] = None
    group_by: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[AggregateExpr, ...] = ()

    # -- traversal ---------------------------------------------------------

    def iter_nodes(self) -> Iterator["PhysicalPlan"]:
        """Yield every operator of the plan in pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def operator_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def uses_materialized(self) -> Tuple[int, ...]:
        """Group ids of materialized results this plan reads."""
        return tuple(
            node.group for node in self.iter_nodes() if node.op is PhysicalOp.READ_MATERIALIZED
        )

    # -- rendering ---------------------------------------------------------

    def _describe(self) -> str:
        parts = [self.op.value]
        if self.table:
            parts.append(f"table={self.table}")
        if self.predicate is not None:
            parts.append(f"pred=({self.predicate})")
        if self.group_by or self.aggregates:
            keys = ", ".join(str(c) for c in self.group_by) or "()"
            parts.append(f"group_by=[{keys}]")
        parts.append(f"rows={self.rows:.0f}")
        parts.append(f"cost={self.cost:.1f}ms")
        return " ".join(parts)

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self._describe()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()
