"""The runtime-feedback statistics store.

Every execution through the serving layer observes real row counts, byte
sizes and wall-clock timings for the plan nodes it runs (materialized
shared subexpressions and query roots).  The :class:`FeedbackStatsStore`
keeps those observations keyed by the **semantic fingerprint** of the node
(:func:`~repro.dag.fingerprint.canonical_key`), never by memo group id, so
one store serves every batch of a session and survives memo rebuilds —
exactly like the :class:`~repro.service.matcache.MaterializationCache`.

Observations are folded with an exponentially weighted moving average, and
the store is bound to the database's data-version token the same way the
materialization cache is: a token change bumps the store's *epoch*, which
decays the confidence of every earlier observation (the data they were
measured against is gone).  An observation recorded *after* an epoch bump
resets the moving averages — numbers measured against old data must not
bleed into estimates for the new data.

All operations are thread-safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["FeedbackStatistics", "FeedbackStatsStore", "ObservedStats"]


@dataclass(frozen=True)
class ObservedStats:
    """The folded runtime observations for one semantic fingerprint.

    Attributes:
        key: the canonical fingerprint the observations belong to.
        observations: how many times this node was observed (since the last
            epoch reset).
        rows / bytes: EWMA of observed output cardinality and byte size.
        elapsed: EWMA of observed wall seconds spent computing the node
            (children included — the executor is an interpreter, so this is
            the measured recomputation time the cache policy trades against
            stored bytes).
        last_rows: the most recent raw row-count observation.
        epoch: the store epoch the last observation was recorded in.
    """

    key: str
    observations: int = 0
    rows: float = 0.0
    bytes: float = 0.0
    elapsed: float = 0.0
    last_rows: float = 0.0
    epoch: int = 0

    @property
    def row_width(self) -> Optional[float]:
        """Observed bytes per row, when both quantities were observed."""
        if self.rows <= 0 or self.bytes <= 0:
            return None
        return self.bytes / self.rows


@dataclass
class FeedbackStatistics:
    """Counters describing how the store collected its observations."""

    records: int = 0
    epoch_resets: int = 0
    token_changes: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "epoch_resets": self.epoch_resets,
            "token_changes": self.token_changes,
            "evictions": self.evictions,
        }


class FeedbackStatsStore:
    """Observed-cardinality statistics keyed by semantic fingerprint.

    Args:
        ewma_alpha: weight of the newest observation in the moving averages
            (1.0 = keep only the latest measurement).
        epoch_decay: confidence multiplier applied per epoch an observation
            lags behind the store (the data-version analogue of the
            materialization cache's hard invalidation — soft, because a
            stale cardinality is still a better prior than none).
        max_entries: bound on tracked fingerprints; the least recently
            *updated* entry is dropped first.
    """

    def __init__(
        self,
        *,
        ewma_alpha: float = 0.5,
        epoch_decay: float = 0.5,
        max_entries: int = 4096,
    ):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= epoch_decay <= 1.0:
            raise ValueError("epoch_decay must be in [0, 1]")
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.ewma_alpha = ewma_alpha
        self.epoch_decay = epoch_decay
        self.max_entries = max_entries
        self.statistics = FeedbackStatistics()
        self._lock = threading.RLock()
        # Least recently updated first; record() moves keys to the end.
        self._entries: "OrderedDict[str, ObservedStats]" = OrderedDict()
        self._token: Optional[Hashable] = None
        self._epoch = 0

    # ----------------------------------------------------------------- state

    @property
    def epoch(self) -> int:
        """Monotone counter bumped whenever the data-version token changes."""
        with self._lock:
            return self._epoch

    @property
    def token(self) -> Optional[Hashable]:
        with self._lock:
            return self._token

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ---------------------------------------------------------------- tokens

    def ensure_token(self, token: Hashable) -> bool:
        """Bind the store to a data-version token; bump the epoch on change.

        Mirrors :meth:`~repro.service.matcache.MaterializationCache.ensure_token`,
        except that observations are *decayed* (via the epoch) instead of
        dropped: a cardinality measured against the old data is still a
        useful prior until fresh observations replace it.  Returns True when
        the token changed.
        """
        with self._lock:
            if self._token is None:
                self._token = token
                return False
            if self._token == token:
                return False
            self._token = token
            self._epoch += 1
            self.statistics.token_changes += 1
            return True

    # --------------------------------------------------------------- get/put

    def record(
        self,
        key: str,
        *,
        rows: float,
        bytes: float = 0.0,
        elapsed: Optional[float] = None,
    ) -> ObservedStats:
        """Fold one observation into the store and return the updated entry.

        An observation recorded after an epoch bump (the data changed since
        the entry's last observation) resets the moving averages to the new
        measurement — old-data numbers never average into new-data ones.

        ``elapsed=None`` means *no timing was measured* for this
        observation: the row/byte averages update but the elapsed EWMA is
        left untouched.  The serving layer uses this for plans that merely
        re-read a cached materialization — their near-zero wall time says
        nothing about what recomputing the node would cost, and folding it
        in would erode the measured benefit the cache policy scores with.
        """
        rows = max(float(rows), 0.0)
        bytes = max(float(bytes), 0.0)
        if elapsed is not None:
            elapsed = max(float(elapsed), 0.0)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.epoch != self._epoch:
                if entry is not None:
                    self.statistics.epoch_resets += 1
                entry = ObservedStats(
                    key=key,
                    observations=1,
                    rows=rows,
                    bytes=bytes,
                    elapsed=elapsed if elapsed is not None else 0.0,
                    last_rows=rows,
                    epoch=self._epoch,
                )
            else:
                a = self.ewma_alpha
                entry = replace(
                    entry,
                    observations=entry.observations + 1,
                    rows=a * rows + (1.0 - a) * entry.rows,
                    bytes=a * bytes + (1.0 - a) * entry.bytes,
                    elapsed=(
                        a * elapsed + (1.0 - a) * entry.elapsed
                        if elapsed is not None
                        else entry.elapsed
                    ),
                    last_rows=rows,
                )
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.statistics.records += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1
            return entry

    def get(self, key: str) -> Optional[ObservedStats]:
        """The observations for a fingerprint (immutable), or None."""
        with self._lock:
            return self._entries.get(key)

    def confidence(self, key: str) -> float:
        """How much to trust the observations for ``key``, in [0, 1].

        Confidence grows with the number of observations —
        ``1 - (1 - alpha)^n`` — and decays geometrically with every epoch
        (data-version change) the entry lags behind the store.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.observations <= 0:
                return 0.0
            grown = 1.0 - (1.0 - self.ewma_alpha) ** entry.observations
            lag = self._epoch - entry.epoch
            if lag <= 0:
                return grown
            return grown * (self.epoch_decay ** lag)
