"""The SQL oracle backend: plans rendered to SQL, run on a real engine.

:class:`SQLExecutor` subclasses the row interpreter the same way the
columnar backend does — ``execute``, ``execute_result``, the
dependency-ordered materialization loop, ``fill_listener``/``observer``
hooks and the session-level cache accounting are all shared code; only
:meth:`~repro.execution.executor.Executor._run` changes, so a
``MATERIALIZE`` plan's rows flow through exactly the same store/cache
plumbing (and therefore the same fingerprint keys and hit/miss counters)
as the Python backends.

Per top-level plan, ``_run``:

1. makes sure the engine holds the session's :class:`~repro.execution.data
   .Database` — tables are (re)loaded only when the content-derived
   ``Database.fingerprint()`` token changed, so repeated batches against
   the same data never re-load;
2. creates one temp table per materialized group the plan reads, filled
   from the store (either freshly computed upstream in this call or
   fetched from the materialization cache);
3. renders the plan to a single SELECT (:mod:`.render`), executes it, and
   rebuilds executor-shaped row dicts from the result tuples.

All calls are serialized behind one lock: the scheduler may drive a
session's executor from several worker threads, and an embedded engine
connection is not a concurrent structure.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Tuple

from ...analysis.sanitizer import sanitize_lock
from ..data import Database, Row
from ..executor import ExecutionError, Executor
from .render import render_plan

__all__ = ["DuckDBExecutor", "SQLExecutor", "SQLiteExecutor"]


def _union_columns(rows: List[Row]) -> Tuple[str, ...]:
    """All row keys in first-seen order (the relation's schema)."""
    names: Dict[str, None] = {}
    for row in rows:
        for key in row:
            if key not in names:
                names[key] = None
    return tuple(names)


class _SQLStore(dict):
    """The materialized-results store plus the groups' temp-table names.

    ``execute_result`` keeps materializations as row lists (the contract the
    cache layer sees); this remembers which groups were also loaded into the
    engine as temp tables, so several readers of one group load it once.
    """

    __slots__ = ("tables",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.tables: Dict[int, Tuple[str, Tuple[str, ...]]] = {}


class SQLExecutor(Executor):
    """Executes physical plans by rendering them to SQL on a real engine."""

    #: Overridden by subclasses; selects the driver in :mod:`.driver`.
    driver_name = "sqlite"

    #: The oracle consumes and produces plain row lists; the session's cache
    #: path must hand it rows, not ColumnBatch values.
    prefers_batches = False

    def __init__(self, database: Database, *, driver=None):
        super().__init__(database)
        if driver is None:
            from .driver import create_driver

            driver = create_driver(self.driver_name)
        self._driver = driver
        # Under REPRO_SANITIZE=1 the lock joins the cross-thread lock-order
        # graph (see repro.analysis.sanitizer); otherwise it is a bare RLock.
        self._lock = sanitize_lock(threading.RLock(), "sql-executor")
        self._loaded_token: Optional[str] = None
        self._base_columns: Dict[str, Tuple[str, ...]] = {}
        self._call = 0
        self._temp_tables: List[str] = []

    # ------------------------------------------------------------------ API

    def execute(self, plan, materialized=None):
        with self._lock:
            self._begin_call()
            try:
                return super().execute(plan, materialized)
            finally:
                self._end_call()

    def execute_result(
        self, result, materialized=None, fill_listener=None, queries=None, observer=None
    ):
        with self._lock:
            self._begin_call()
            try:
                return super().execute_result(
                    result,
                    materialized,
                    fill_listener=fill_listener,
                    queries=queries,
                    observer=observer,
                )
            finally:
                self._end_call()

    # ------------------------------------------------------------- plumbing

    def _begin_call(self) -> None:
        self._call += 1
        self._temp_tables = []
        self._ensure_loaded()

    def _end_call(self) -> None:
        for table in self._temp_tables:
            self._driver.drop_table(table)
        self._temp_tables = []

    def _ensure_loaded(self) -> None:
        """(Re)load the database iff its content fingerprint changed."""
        token = self.database.fingerprint()
        if token == self._loaded_token:
            return
        with self.tracer.span(
            "sql.load_tables",
            engine=self.driver_name,
            tables=len(self.database.tables),
        ):
            self._driver.reset()
            self._base_columns = {}
            for table, rows in self.database.tables.items():
                columns = _union_columns(rows)
                # A key a row lacks loads as NULL: the one place the relational
                # engine cannot mirror the dict world's missing-vs-None split.
                data = [tuple(row.get(column) for column in columns) for row in rows]
                self._driver.create_table(table, columns, data)
                self._base_columns[table] = columns
        self._loaded_token = token

    def _make_store(self, materialized) -> Dict:
        return _SQLStore(materialized if materialized is not None else {})

    def _temp_table_for(self, gid: int, store: Mapping[int, List[Row]]) -> Tuple[str, Tuple[str, ...]]:
        if isinstance(store, _SQLStore) and gid in store.tables:
            return store.tables[gid]
        stored = store[gid]
        rows = stored.to_rows() if hasattr(stored, "to_rows") else stored
        columns = _union_columns(rows)
        table = f"__mat_{self._call}_g{gid}"
        self._driver.create_table(
            table, columns, [tuple(row.get(column) for column in columns) for row in rows]
        )
        self._temp_tables.append(table)
        entry = (table, columns)
        if isinstance(store, _SQLStore):
            store.tables[gid] = entry
        return entry

    # ------------------------------------------------------------ execution

    def _run(self, plan, store) -> List[Row]:
        for gid in plan.uses_materialized():
            if gid not in store:
                raise ExecutionError(
                    f"materialized result for G{gid} is not available"
                )
            self._temp_table_for(gid, store)
        rendered = render_plan(plan, _StoreSchemas(self, store))
        rows = self._driver.query(rendered.sql)
        names = rendered.names
        return [dict(zip(names, values)) for values in rows]


class _StoreSchemas:
    """Schema provider for the renderer, backed by one executor call."""

    __slots__ = ("_executor", "_store")

    def __init__(self, executor: SQLExecutor, store) -> None:
        self._executor = executor
        self._store = store

    def base_columns(self, table: str) -> Tuple[str, ...]:
        try:
            return self._executor._base_columns[table]
        except KeyError:
            # Mirror Database.table's unknown-table error.
            self._executor.database.table(table)
            raise

    def materialized(self, gid: int) -> Tuple[str, Tuple[str, ...]]:
        return self._executor._temp_table_for(gid, self._store)


class SQLiteExecutor(SQLExecutor):
    """The always-available stdlib oracle (``executor="sqlite"``)."""

    driver_name = "sqlite"


class DuckDBExecutor(SQLExecutor):
    """The optional DuckDB oracle (``executor="duckdb"``).

    Constructing it without the ``duckdb`` package installed raises
    ``ImportError`` with an installation hint.
    """

    driver_name = "duckdb"
