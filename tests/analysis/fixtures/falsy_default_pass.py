"""Must-pass fixture for ``falsy-default``: every legal use of ``or``.

Never imported; the checker tests lint this file's source and assert zero
findings.
"""


class Plan:
    def title(self, plan):
        # Left operand is an attribute, not a parameter: no explicit-empty
        # hazard the checker guards against.
        return plan.alias or plan.table


def pick(strategy=None):
    # Right-hand side is neither a container literal nor a construction:
    # a falsy strategy string legitimately falls back.
    return strategy or "marginal-greedy"


def fixed(materialized=None):
    # The repaired idiom: None-tested, empties are honored.
    return dict(materialized if materialized is not None else {})


def combine(a, b):
    # 'or' between two non-parameter expressions.
    return (a.rows() or []) if a else (b or None)


def scalars(limit=0, name=""):
    # Scalar fallbacks are a different (usually intended) idiom.
    limit = limit or 10
    name = name or "default"
    return limit, name
