"""Micro-batching front end for an :class:`~repro.service.session.OptimizerSession`
(or a :class:`~repro.service.pool.SessionPool`).

The :class:`BatchScheduler` is the request-facing piece of the serving
skeleton: callers :meth:`~BatchScheduler.submit` individual queries and get
a future back; a collector thread groups submissions that arrive close
together (same strategy) into micro-batches of up to ``max_batch_size``
queries, and a worker pool optimizes each micro-batch through the shared
session — so concurrent traffic automatically benefits from multi-query
optimization and from the session's warm caches.

Behind a :class:`~repro.service.pool.SessionPool` the scheduler routes
every submission to its shard when it arrives, and the collector groups
companions **per (strategy, shard)** — a micro-batch never straddles two
shards, so it is optimized and executed entirely under one shard's lock
while the worker pool keeps the other shards busy with other micro-batches.

    with BatchScheduler(session_or_pool) as scheduler:
        futures = [scheduler.submit(q) for q in queries]
        outcomes = [f.result() for f in futures]
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor, wait as wait_futures
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from ..algebra.logical import Query, QueryBatch
from ..analysis.sanitizer import sanitize_lock
from ..core.mqo import MQOResult
from ..execution.data import Row
from ..obs import Observability
from .pool import SessionPool
from .session import BatchExecution, OptimizerSession

__all__ = ["BatchScheduler", "QueryOutcome"]


@dataclass(frozen=True)
class QueryOutcome:
    """What a submitter gets back for one query.

    Attributes:
        query_name: the name the query was optimized under (de-duplicated
            with a ``#n`` suffix when the micro-batch had name clashes).
        strategy: the strategy the micro-batch ran.
        cost: the query's share of the consolidated plan (its plan cost).
        batch_result: the full result of the micro-batch the query rode in.
        rows: the query's result rows when the submission asked for
            execution (``submit(..., execute=True)``); ``None`` otherwise.
    """

    query_name: str
    strategy: str
    cost: float
    batch_result: MQOResult
    rows: "Optional[List[Row]]" = None


@dataclass
class _Submission:
    query: Query
    strategy: str
    future: "Future[QueryOutcome]"
    execute: bool = False
    shard: int = 0
    #: Trace ID minted at submit time (None when tracing is disabled); the
    #: worker re-enters it so the whole micro-batch files under the trace
    #: of the submission that opened it.
    trace_id: Optional[str] = None
    #: When the submission entered the queue (collector wait accounting).
    submitted_at: float = 0.0


class BatchScheduler:
    """Collects submitted queries into micro-batches served by a session.

    Args:
        session: the shared :class:`OptimizerSession`, or a
            :class:`~repro.service.pool.SessionPool` — with a pool, every
            submission is routed to its shard on arrival and micro-batches
            are formed per (strategy, shard), so no micro-batch ever
            straddles a shard lock.
        max_batch_size: upper bound on queries per micro-batch.
        max_delay: how long (seconds) the collector waits for companions
            after the first query of a micro-batch arrives.
        workers: size of the worker pool optimizing micro-batches.
        strategy: default strategy for submissions that don't name one.
    """

    # Thread-safe by construction, not by this class's locks: the intake
    # queue and the worker pool do their own internal locking, and the
    # tracer keeps all mutable span state in thread-locals.
    _LOCK_FREE = ("_queue", "_pool", "_tracer")

    def __init__(
        self,
        session: "Union[OptimizerSession, SessionPool]",
        *,
        max_batch_size: int = 8,
        max_delay: float = 0.01,
        workers: int = 2,
        strategy: str = "marginal-greedy",
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        self.session = session
        self._session_pool = session if isinstance(session, SessionPool) else None
        # The serving target's observability handle: the scheduler reports
        # queue-wait latency into the same registry and propagates trace
        # IDs through the same tracer the sessions emit spans to.
        self._obs: Observability = getattr(session, "obs", None) or Observability()
        self._tracer = self._obs.tracer
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.default_strategy = strategy
        self._queue: "queue.Queue[Optional[_Submission]]" = queue.Queue()
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="mqo")
        self._pending_lock = sanitize_lock(
            threading.Lock(), "scheduler.pending", obs=self._obs
        )
        self._pending: "set[Future]" = set()
        self._batch_seq = itertools.count(1)
        # Guards the closed flag together with queue puts so that no
        # submission can land behind the shutdown sentinel.
        self._state_lock = sanitize_lock(
            threading.Lock(), "scheduler.state", obs=self._obs
        )
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect, name="mqo-collector", daemon=True
        )
        self._collector.start()

    # ---------------------------------------------------------------- submit

    def submit(
        self,
        query: Query,
        *,
        strategy: Optional[str] = None,
        execute: bool = False,
        tenant: Optional[str] = None,
    ) -> "Future[QueryOutcome]":
        """Enqueue one query; the future resolves to its :class:`QueryOutcome`.

        With ``execute=True`` the outcome additionally carries the query's
        result rows: the micro-batch the query rides in is run through the
        session's executor and materialization cache after optimization (the
        session must have a database attached).  ``tenant`` overrides the
        fingerprint routing when the scheduler fronts a
        :class:`~repro.service.pool.SessionPool` (ignored otherwise).
        """
        future: "Future[QueryOutcome]" = Future()
        shard = self._route(query, tenant)
        # Mint the trace ID at the system boundary: every span this query
        # causes — on whatever worker thread — files under it.
        trace_id = self._tracer.new_trace_id()
        with self._state_lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._track(future)
            self._queue.put(
                _Submission(
                    query,
                    strategy or self.default_strategy,
                    future,
                    execute,
                    shard,
                    trace_id,
                    _now(),
                )
            )
        return future

    def submit_batch(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        *,
        strategy: Optional[str] = None,
        execute: bool = False,
        tenant: Optional[str] = None,
    ) -> "Future[MQOResult | BatchExecution]":
        """Optimize a whole pre-formed batch (bypasses micro-batching).

        With ``execute=True`` the future resolves to a
        :class:`~repro.service.session.BatchExecution` (rows included)
        instead of a bare :class:`~repro.core.mqo.MQOResult`.
        """
        session = self._session_for_shard(self._route(batch, tenant))
        with self._state_lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            runner = session.execute_batch if execute else session.optimize
            if self._tracer.enabled:
                runner = self._traced_runner(runner, self._tracer.new_trace_id())
            future = self._pool.submit(runner, batch, strategy or self.default_strategy)
            self._track(future)
        return future

    def _traced_runner(self, runner, trace_id: Optional[str]):
        """Wrap a session call so the worker re-enters the submit-time trace."""

        def run(batch, strategy):
            with self._tracer.activate(trace_id):
                return runner(batch, strategy=strategy)

        return run

    def _route(self, batch_or_query, tenant: Optional[str]) -> int:
        """The shard a submission belongs to; 0 for a plain session.

        Routing errors (e.g. a query that fails catalog binding) fall back
        to shard 0 so they surface where every other query error does — in
        the future, when the shard session tries to optimize the query.
        """
        if self._session_pool is None:
            return 0
        try:
            return self._session_pool.route(batch_or_query, tenant=tenant)
        except Exception:
            return 0

    def _session_for_shard(self, shard: int) -> OptimizerSession:
        if self._session_pool is None:
            return self.session
        return self._session_pool.shard(shard)

    def _track(self, future: Future) -> None:
        """Track a future until it resolves (so flush() can wait on it)."""
        with self._pending_lock:
            self._pending.add(future)
        future.add_done_callback(self._untrack)

    def _untrack(self, future: Future) -> None:
        with self._pending_lock:
            self._pending.discard(future)

    # ----------------------------------------------------------------- drain

    #: How long flush() sleeps per check while the queue drains but no
    #: future is pending (e.g. every queued submission was cancelled).
    _FLUSH_IDLE_WAIT = 0.01

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every submission made so far has been resolved."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._pending_lock:
                waiting = list(self._pending)
            if not waiting and self._queue.empty():
                return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("scheduler did not drain in time")
            if waiting:
                wait_futures(waiting, timeout=0.05)
            else:
                # Nothing to wait on but the queue is not drained yet:
                # wait_futures([]) returns immediately, so sleeping here is
                # what keeps this loop from busy-spinning a core until the
                # collector catches up.
                time.sleep(self._FLUSH_IDLE_WAIT)

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting submissions, drain the queue and shut the pool down.

        A serving target with a durable cache tier (a session or pool
        constructed with ``spill_dir=``) gets a best-effort ``snapshot()``
        after the drain: a *planned* shutdown persists the hot entries and
        the feedback store, so the next process starts warm.  Snapshot
        failures never turn a clean shutdown into a crash.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            # With the state lock held no submit() can slip in behind the
            # sentinel, so everything before it is drained by the collector.
            self._queue.put(None)
        if wait:
            self._collector.join()
        self._pool.shutdown(wait=wait)
        if wait:
            snapshot = getattr(self.session, "snapshot", None)
            if callable(snapshot):
                try:
                    snapshot()
                # repro-lint: disable=bare-except-swallow -- a failed best-effort shutdown snapshot must not turn a clean close into a crash
                except Exception:  # pragma: no cover - defensive best-effort
                    pass

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- collector

    def _collect(self) -> None:
        """Collector loop: group queued submissions into micro-batches.

        Submissions deferred because their strategy differs from the batch
        being assembled go to a local ``backlog`` (never back onto the
        queue), so the shutdown sentinel can never overtake them: on
        shutdown the queue is drained into the backlog and every remaining
        submission is dispatched before the collector exits.
        """
        backlog: deque = deque()
        closing = False
        while True:
            if backlog:
                head = backlog.popleft()
            else:
                if closing:
                    return
                head = self._queue.get()
                if head is None:
                    return
            group = [head]
            # Wait briefly for companions of the same strategy *and* shard
            # (a micro-batch must be served under exactly one shard's lock);
            # when closing, take only what is already waiting.
            deadline = _now() + (0.0 if closing else self.max_delay)
            scan = len(backlog)
            while len(group) < self.max_batch_size and scan > 0:
                candidate = backlog.popleft()
                scan -= 1
                if _rides_with(candidate, head):
                    group.append(candidate)
                else:
                    backlog.append(candidate)
            while len(group) < self.max_batch_size and not closing:
                remaining = deadline - _now()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    closing = True
                    break
                if _rides_with(item, head):
                    group.append(item)
                else:
                    backlog.append(item)
            if closing:
                # Drain whatever else was enqueued before the sentinel.
                while True:
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if extra is not None:
                        backlog.append(extra)
            self._dispatch(group)

    def _dispatch(self, group: List[_Submission]) -> None:
        self._pool.submit(self._run_batch, group)

    def _run_batch(self, group: List[_Submission]) -> None:
        # Transition every future to RUNNING first: a future a client managed
        # to cancel while queued is dropped here, and the transition blocks
        # further cancel() calls so the set_result below cannot raise and
        # strand the rest of the micro-batch.
        active = [s for s in group if s.future.set_running_or_notify_cancel()]
        if not active:
            return
        now = _now()
        for submission in active:
            self._obs.observe_latency(
                "scheduler_queue_wait_seconds", now - submission.submitted_at
            )
        strategy = active[0].strategy
        session = self._session_for_shard(active[0].shard)
        queries = _deduplicate_names([s.query for s in active])
        batch = QueryBatch(f"micro-{next(self._batch_seq)}", tuple(queries))
        tracer = self._tracer
        if not tracer.enabled:
            self._serve_micro_batch(active, queries, batch, strategy, session)
            return
        # The micro-batch runs once but serves several submitters: it files
        # under the head submission's trace (activated here, on the worker
        # thread), with the companions' trace IDs recorded on the span; each
        # companion trace additionally gets a link span so a per-query trace
        # is never empty.
        head = active[0]
        started = time.perf_counter()
        with tracer.activate(head.trace_id):
            with tracer.span(
                "scheduler.micro_batch",
                batch=batch.name,
                strategy=strategy,
                shard=head.shard,
                queries=len(active),
                member_traces=[s.trace_id for s in active[1:]],
            ):
                self._serve_micro_batch(active, queries, batch, strategy, session)
        elapsed = time.perf_counter() - started
        for submission in active[1:]:
            tracer.record_span(
                "scheduler.query",
                elapsed,
                trace_id=submission.trace_id,
                batch=batch.name,
                rode_with=head.trace_id,
            )

    def _serve_micro_batch(
        self,
        active: List[_Submission],
        queries: Tuple[Query, ...],
        batch: QueryBatch,
        strategy: str,
        session: OptimizerSession,
    ) -> None:
        try:
            result = session.optimize(batch, strategy=strategy)
        except Exception as exc:  # propagate to every submitter
            for submission in active:
                submission.future.set_exception(exc)
            return
        # One execution serves every row-requesting query of the micro-batch
        # (shared materializations run once); optimize-only companions get
        # their outcome even if execution fails — their work already
        # succeeded.
        execution = None
        execution_error: Optional[Exception] = None
        wanted = [q.name for s, q in zip(active, queries) if s.execute]
        if wanted:
            try:
                execution = session.execute_plans(result, queries=wanted)
            except Exception as exc:
                execution_error = exc
        for submission, query in zip(active, queries):
            if submission.execute and execution_error is not None:
                submission.future.set_exception(execution_error)
                continue
            rows = None
            if submission.execute and execution is not None:
                rows = execution.rows[query.name]
            submission.future.set_result(
                QueryOutcome(
                    query_name=query.name,
                    strategy=result.strategy,
                    cost=result.query_costs[query.name],
                    batch_result=result,
                    rows=rows,
                )
            )


def _rides_with(candidate: _Submission, head: _Submission) -> bool:
    """Whether a submission may join the micro-batch ``head`` is collecting."""
    return candidate.strategy == head.strategy and candidate.shard == head.shard


def _deduplicate_names(queries: Sequence[Query]) -> Tuple[Query, ...]:
    """Rename clashing query names (``q`` → ``q#2``) within one micro-batch.

    The suffix probes for a name not used by *any* query of the micro-batch
    — a plain per-name counter would rename the second ``q`` to ``q#2`` and
    silently collide with a query literally named ``q#2``, leaving two
    futures reading the same result slot.
    """
    taken = {query.name for query in queries}
    seen = set()
    out = []
    for query in queries:
        if query.name in seen:
            count = 2
            while f"{query.name}#{count}" in taken or f"{query.name}#{count}" in seen:
                count += 1
            query = replace(query, name=f"{query.name}#{count}")
        seen.add(query.name)
        out.append(query)
    return tuple(out)


def _now() -> float:
    return time.monotonic()
