"""Metrics layer: counters, histograms, registry, statistics views."""

import bisect
import json
import math
import random
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    Observability,
    StatisticsView,
    metric_field,
    normalize_labels,
)
from repro.obs.metrics import Histogram


# ---------------------------------------------------------------- labels


def test_normalize_labels_sorts_and_stringifies():
    assert normalize_labels(None) == ()
    assert normalize_labels({}) == ()
    assert normalize_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
    assert normalize_labels([("b", 2), ("a", "x")]) == (("a", "x"), ("b", "2"))


# ------------------------------------------------------------- histogram


def test_bucket_assignment_is_lower_exclusive_upper_inclusive():
    h = Histogram("x", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0):
        h.observe(value)
    snap = h.snapshot()
    # (−inf,1]: 0.5, 1.0 — (1,2]: 1.5, 2.0 — (2,4]: 3.0, 4.0 — overflow: 5.0
    assert snap.counts == (2, 2, 2, 1)
    assert snap.count == 7
    assert snap.sum == pytest.approx(17.0)


def test_bucket_bounds_validation():
    with pytest.raises(ValueError):
        Histogram("x", buckets=())
    with pytest.raises(ValueError):
        Histogram("x", buckets=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram("x", buckets=(2.0, 1.0))


def test_empty_histogram_percentiles_are_none():
    snap = Histogram("x").snapshot()
    assert snap.count == 0
    assert snap.mean is None
    assert snap.p50 is None and snap.p95 is None and snap.p99 is None
    with pytest.raises(ValueError):
        snap.percentile(1.5)


def test_single_bucket_percentile_interpolates_within_bucket():
    h = Histogram("x", buckets=(1.0, 2.0, 4.0))
    for _ in range(10):
        h.observe(1.5)  # all land in (1, 2]
    snap = h.snapshot()
    for q in (0.01, 0.5, 0.95, 0.99, 1.0):
        value = snap.percentile(q)
        assert 1.0 < value <= 2.0, (q, value)


def test_overflow_observations_clamp_to_last_bound():
    h = Histogram("x")
    for _ in range(100):
        h.observe(60.0)  # above the 10 s top bound
    snap = h.snapshot()
    assert snap.p50 == snap.p99 == DEFAULT_LATENCY_BUCKETS[-1]


def test_percentiles_are_monotone_and_bucket_accurate():
    """Property test: against sorted truth, every percentile must fall in
    the bucket that contains the true quantile, and be monotone in q."""
    rng = random.Random(7)
    for trial in range(20):
        values = [rng.uniform(1e-7, 20.0) for _ in range(rng.randrange(1, 400))]
        h = Histogram("x")
        for value in values:
            h.observe(value)
        snap = h.snapshot()
        ordered = sorted(min(v, DEFAULT_LATENCY_BUCKETS[-1]) for v in values)
        previous = 0.0
        for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0):
            estimate = snap.percentile(q)
            assert estimate >= previous, "percentiles must be monotone in q"
            previous = estimate
            # Nearest-rank truth, the convention the bucket walk implements:
            # the observation at rank ceil(q * n) (1-based).
            rank = max(1, math.ceil(q * len(ordered)))
            truth = ordered[rank - 1]
            # The estimate interpolates inside the truth's bucket; at
            # fraction 0 it returns the bucket's lower bound, which bisects
            # into the bucket below — hence the ±1 tolerance.
            truth_bucket = bisect.bisect_left(DEFAULT_LATENCY_BUCKETS, truth)
            est_bucket = bisect.bisect_left(DEFAULT_LATENCY_BUCKETS, estimate)
            assert abs(est_bucket - truth_bucket) <= 1, (
                trial,
                q,
                truth,
                estimate,
            )


def test_merge_equals_concatenated_observations():
    rng = random.Random(13)
    a, b = Histogram("x"), Histogram("x")
    both = Histogram("x")
    for h in (a, b):
        for _ in range(200):
            value = rng.uniform(0, 12)
            h.observe(value)
            both.observe(value)
    merged = HistogramSnapshot.merge([a.snapshot(), b.snapshot()])
    reference = both.snapshot()
    assert merged.counts == reference.counts
    assert merged.count == reference.count
    assert merged.sum == pytest.approx(reference.sum)
    assert merged.p95 == reference.p95


def test_merge_rejects_mismatched_bounds_and_handles_empty():
    with pytest.raises(ValueError):
        HistogramSnapshot.merge(
            [Histogram("x", buckets=(1.0,)).snapshot(), Histogram("x").snapshot()]
        )
    empty = HistogramSnapshot.merge([])
    assert empty.count == 0 and empty.p50 is None


def test_histogram_observe_is_thread_safe():
    h = Histogram("x")
    threads = [
        threading.Thread(target=lambda: [h.observe(0.001) for _ in range(1000)])
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == 8000
    assert h.snapshot().sum == pytest.approx(8.0)


# -------------------------------------------------------------- registry


def test_registry_returns_same_object_per_identity():
    registry = MetricsRegistry()
    a = registry.counter("hits", {"shard": 1})
    assert registry.counter("hits", [("shard", "1")]) is a
    assert registry.counter("hits", {"shard": 2}) is not a


def test_registry_binds_each_name_to_one_kind():
    registry = MetricsRegistry()
    registry.histogram("latency")
    with pytest.raises(ValueError):
        registry.counter("latency")
    with pytest.raises(ValueError):
        registry.gauge("latency", {"shard": 0})  # other labels, same name


def test_registry_snapshot_is_json_able_and_keyed_by_series():
    registry = MetricsRegistry()
    registry.counter("hits", {"shard": 0}).inc(3)
    registry.gauge("depth").set(2.5)
    registry.histogram("latency").observe(0.004)
    snap = registry.snapshot()
    assert snap["counters"] == {"hits{shard=0}": 3}
    assert snap["gauges"] == {"depth": 2.5}
    assert snap["histograms"]["latency"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_histogram_snapshots_by_name():
    registry = MetricsRegistry()
    registry.histogram("latency", {"shard": 0}).observe(0.001)
    registry.histogram("latency", {"shard": 1}).observe(0.002)
    registry.counter("hits").inc()
    series = registry.histogram_snapshots("latency")
    assert set(series) == {(("shard", "0"),), (("shard", "1"),)}
    assert all(s.count == 1 for s in series.values())
    assert registry.histogram_snapshots("absent") == {}


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("hits", {"shard": 0}).inc(3)
    registry.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)
    registry.histogram("latency", buckets=(0.1, 1.0)).observe(5.0)
    text = registry.render_prometheus()
    lines = text.splitlines()
    assert "# TYPE hits counter" in lines
    assert 'hits{shard="0"} 3' in lines
    assert "# TYPE latency histogram" in lines
    assert 'latency_bucket{le="0.1"} 1' in lines
    assert 'latency_bucket{le="1"} 1' in lines  # cumulative: 5.0 is overflow
    assert 'latency_bucket{le="+Inf"} 2' in lines
    assert "latency_sum 5.05" in lines
    assert "latency_count 2" in lines
    assert text.endswith("\n")


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("hits", {"q": 'a"b\\c\nd'}).inc()
    text = registry.render_prometheus()
    assert 'q="a\\"b\\\\c\\nd"' in text


# ------------------------------------------------------ statistics views


class _DemoStats(StatisticsView):
    _prefix = "demo_"
    hits = metric_field()
    misses = metric_field()


class _DemoSubStats(_DemoStats):
    spills = metric_field()


def test_view_fields_read_and_write_like_plain_ints():
    stats = _DemoStats()
    assert stats.hits == 0
    stats.hits += 2
    stats.misses = 5
    assert stats.as_dict() == {"hits": 2, "misses": 5}
    assert "hits=2" in repr(stats)


def test_view_field_names_are_mro_ordered_and_inherited():
    assert _DemoStats.field_names() == ("hits", "misses")
    assert _DemoSubStats.field_names() == ("hits", "misses", "spills")


def test_view_over_shared_registry_aliases_the_series():
    registry = MetricsRegistry()
    stats = _DemoStats(registry, labels={"shard": 3})
    stats.hits += 4
    assert registry.counter("demo_hits", {"shard": 3}).value == 4
    # A second view over the same identity shares the very same counters.
    twin = _DemoStats(registry, labels={"shard": 3})
    twin.hits += 1
    assert stats.hits == 5


def test_subclass_view_shares_base_series_with_base_view():
    registry = MetricsRegistry()
    base = _DemoStats(registry)
    sub = _DemoSubStats(registry)
    sub.hits += 7
    assert base.hits == 7  # same registry series, inherited field


def test_view_aggregate_and_equality():
    a, b = _DemoStats(), _DemoStats()
    a.hits, b.hits, b.misses = 1, 2, 3
    total = _DemoStats.aggregate([a, b])
    assert total.as_dict() == {"hits": 3, "misses": 3}
    assert total == total and a != b
    assert _DemoStats() != _DemoSubStats()  # type-strict
    assert (_DemoStats() == object()) is False


# --------------------------------------------------------- observability


def test_observability_child_merges_labels_onto_shared_registry():
    obs = Observability(labels={"pool": "p1"})
    child = obs.child(shard=2)
    assert child.registry is obs.registry
    assert child.tracer is obs.tracer
    child.counter("hits").inc()
    assert obs.registry.counter(
        "hits", {"pool": "p1", "shard": 2}
    ).value == 1


def test_observability_observe_latency_registers_labeled_histogram():
    obs = Observability()
    obs.observe_latency("latency", 0.25, strategy="greedy")
    series = obs.registry.histogram_snapshots("latency")
    assert list(series) == [(("strategy", "greedy"),)]
    assert series[(("strategy", "greedy"),)].count == 1
