"""The repo-specific checker catalog.

Importing this package registers every checker with
:data:`~repro.analysis.lint.visitor.CHECKERS`; the engine and the CLI only
ever go through that registry, so adding a checker is one module plus one
import line here.
"""

from .bare_except import BareExceptSwallowChecker
from .falsy_default import FalsyDefaultChecker
from .lock_discipline import LockDisciplineChecker
from .stats_snapshot import StatsSnapshotChecker

__all__ = [
    "BareExceptSwallowChecker",
    "FalsyDefaultChecker",
    "LockDisciplineChecker",
    "StatsSnapshotChecker",
]
