"""``python -m repro.workloads.harness`` — the harness command line.

One invocation sweeps the cross-product of the comma-separated ``--scale``,
``--shards`` and ``--executor`` values over identical traffic (same seeds),
writes the matrix to one JSON + one CSV report, prints a one-line summary
per setting, and exits non-zero if any correctness oracle disagreed — a CI
job can gate on the harness exactly like on a test suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .controller import HarnessConfig, SettingReport, run_setting
from .report import validate_report, write_csv, write_json
from .scale import WORKLOADS

__all__ = ["build_parser", "configs_from_args", "main"]


def _floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _strs(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.harness",
        description=(
            "Drive the serving stack with simulated multi-tenant traffic and "
            "report throughput, latency percentiles, counters and the "
            "correctness-oracle verdict per setting."
        ),
    )
    data = parser.add_argument_group("data")
    data.add_argument(
        "--workload", choices=WORKLOADS, default="star", help="table/query family"
    )
    data.add_argument(
        "--scale",
        type=_floats,
        default=[1.0],
        metavar="X[,Y...]",
        help="scale factor(s); comma-separate to sweep (default: 1)",
    )
    data.add_argument("--dimensions", type=int, default=4, help="star dimensions")
    data.add_argument("--key-fanout", type=int, default=4, help="star key fanout")
    data.add_argument(
        "--value-skew",
        type=float,
        default=0.0,
        help="Zipf exponent for star fact key skew (0 = uniform)",
    )
    traffic = parser.add_argument_group("traffic")
    traffic.add_argument("--requests", type=int, default=200, help="requests per run")
    traffic.add_argument("--tenants", type=int, default=8, help="tenant count")
    traffic.add_argument(
        "--zipf", type=float, default=1.1, help="tenant popularity Zipf exponent"
    )
    traffic.add_argument(
        "--template-zipf",
        type=float,
        default=1.0,
        help="per-tenant template popularity Zipf exponent",
    )
    traffic.add_argument(
        "--templates", type=int, default=8, help="query templates (star workloads)"
    )
    traffic.add_argument(
        "--arrival",
        default="closed",
        help="closed | poisson:RATE | bursty:LOW:HIGH:PERIOD (default: closed)",
    )
    traffic.add_argument(
        "--drift-at",
        type=_floats,
        default=[],
        metavar="F[,G...]",
        help="inject data drift at these run fractions, e.g. 0.5 or 0.33,0.66",
    )
    serving = parser.add_argument_group("serving")
    serving.add_argument(
        "--shards",
        type=_ints,
        default=[4],
        metavar="N[,M...]",
        help="pool shard count(s); comma-separate to sweep (default: 4)",
    )
    serving.add_argument(
        "--executor",
        type=_strs,
        default=["row"],
        metavar="B[,C...]",
        help="executor backend(s): row, columnar, ... (default: row)",
    )
    serving.add_argument(
        "--strategy", default="marginal-greedy", help="optimizer sharing strategy"
    )
    serving.add_argument("--workers", type=int, default=4, help="scheduler workers")
    serving.add_argument(
        "--max-batch-size", type=int, default=4, help="scheduler micro-batch cap"
    )
    serving.add_argument(
        "--adaptive", action="store_true", help="enable adaptive re-optimization"
    )
    serving.add_argument(
        "--spill-dir", default=None, help="spill materializations to this directory"
    )
    serving.add_argument(
        "--route-by-tenant",
        action="store_true",
        help="route by tenant id instead of query signature",
    )
    correctness = parser.add_argument_group("correctness")
    correctness.add_argument(
        "--oracle",
        type=_strs,
        default=["row"],
        metavar="B[,C...]",
        help="reference backend(s) to replay sampled queries on; "
        "'none' disables the oracle (default: row)",
    )
    correctness.add_argument(
        "--oracle-sample",
        type=float,
        default=0.1,
        help="fraction of requests replayed against the oracle (default: 0.1)",
    )
    output = parser.add_argument_group("output")
    output.add_argument("--seed", type=int, default=0, help="data seed")
    output.add_argument(
        "--traffic-seed",
        type=int,
        default=None,
        help="traffic seed (defaults to --seed)",
    )
    output.add_argument(
        "--json", default="harness_report.json", help="JSON report path"
    )
    output.add_argument("--csv", default="harness_report.csv", help="CSV report path")
    output.add_argument(
        "--quiet", action="store_true", help="suppress per-setting summary lines"
    )
    return parser


def configs_from_args(args: argparse.Namespace) -> List[HarnessConfig]:
    """The cross-product of the swept axes, identical traffic seeds each."""
    oracle = tuple(b for b in args.oracle if b != "none")
    configs: List[HarnessConfig] = []
    for scale in args.scale:
        for shards in args.shards:
            for executor in args.executor:
                configs.append(
                    HarnessConfig(
                        scale=scale,
                        workload=args.workload,
                        n_dimensions=args.dimensions,
                        key_fanout=args.key_fanout,
                        value_skew=args.value_skew,
                        requests=args.requests,
                        tenants=args.tenants,
                        zipf=args.zipf,
                        template_zipf=args.template_zipf,
                        templates=args.templates,
                        arrival=args.arrival,
                        drift_at=tuple(args.drift_at),
                        shards=shards,
                        executor=executor,
                        strategy=args.strategy,
                        workers=args.workers,
                        max_batch_size=args.max_batch_size,
                        adaptive=args.adaptive,
                        spill_dir=args.spill_dir,
                        route_by_tenant=args.route_by_tenant,
                        oracle=oracle,
                        oracle_sample=args.oracle_sample,
                        seed=args.seed,
                        traffic_seed=args.traffic_seed,
                    )
                )
    return configs


def _summary(report: SettingReport) -> str:
    request_latency = report.latency.get("request", {})
    p50 = request_latency.get("p50")
    p99 = request_latency.get("p99")
    fmt = lambda v: f"{v * 1e3:.1f}ms" if isinstance(v, (int, float)) else "-"
    oracle = report.oracle
    verdict = (
        f"oracle {oracle['checked']} checked / {oracle['mismatches']} mismatched"
        if oracle.get("backends")
        else "oracle off"
    )
    return (
        f"{report.label}: {report.completed}/{report.requests} ok, "
        f"{report.throughput_rps:.1f} req/s, p50 {fmt(p50)}, p99 {fmt(p99)}, "
        f"{verdict}, drift x{report.drift_steps_applied}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        configs = configs_from_args(args)
        reports = []
        for config in configs:
            report = run_setting(config)
            reports.append(report)
            if not args.quiet:
                print(_summary(report))
    except (ValueError, RuntimeError) as error:
        print(f"harness: {error}", file=sys.stderr)
        return 2
    validate_report(write_json(reports, args.json))
    write_csv(reports, args.csv)
    if not args.quiet:
        print(f"wrote {args.json} and {args.csv} ({len(reports)} settings)")
    mismatches = sum(r.oracle_mismatches for r in reports)
    if mismatches:
        print(
            f"harness: {mismatches} oracle mismatch(es) — run FAILED",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
