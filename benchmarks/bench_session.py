"""Serving-layer benchmarks: warm :class:`OptimizerSession` vs cold optimizer.

The acceptance bar of the serving refactor: re-optimizing a previously seen
TPC-D composite batch through a warm session must be at least 2× faster than
a cold ``MultiQueryOptimizer.optimize`` while producing identical total
costs and materialization sets for every strategy.  (In practice the warm
path is a result-cache hit and the speedup is orders of magnitude.)
"""

import time

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.service import OptimizerSession
from repro.workloads.batches import composite_batch

#: Strategies compared in the identity check.  Exhaustive needs a
#: cardinality bound on TPC-D-sized candidate universes (>16 nodes).
ALL_STRATEGIES = ("volcano", "greedy", "marginal-greedy", "share-all", "exhaustive")
STRATEGY_KNOBS = {"exhaustive": {"cardinality": 2}}


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(1.0)


@pytest.fixture(scope="module")
def warm_session(catalog):
    session = OptimizerSession(catalog)
    session.optimize(composite_batch(2), strategy="marginal-greedy")
    return session


def _materialization_signatures(result, dag):
    """Session-independent identity of a materialization set.

    Raw group ids depend on memo construction order, so across a fresh
    optimizer and a warm session the choices are compared by semantic
    fingerprint plus stored sort order.
    """
    return {
        (dag.memo.get(getattr(e, "group", e)).signature, str(getattr(e, "order", "")))
        for e in result.materialized
    }


@pytest.mark.benchmark(group="serving")
def test_cold_optimize_bq2(benchmark, catalog):
    result = benchmark(
        lambda: MultiQueryOptimizer(catalog).optimize(
            composite_batch(2), strategy="marginal-greedy"
        )
    )
    assert result.total_cost > 0


@pytest.mark.benchmark(group="serving")
def test_warm_session_bq2(benchmark, warm_session):
    result = benchmark(
        lambda: warm_session.optimize(composite_batch(2), strategy="marginal-greedy")
    )
    assert result.total_cost > 0


def test_warm_reoptimize_is_2x_faster_and_identical(catalog):
    """The acceptance criterion, asserted directly (BQ1 keeps it fast)."""
    batch = composite_batch(1)
    session = OptimizerSession(catalog)

    # Warm the session with every strategy once.
    for strategy in ALL_STRATEGIES:
        session.optimize(batch, strategy=strategy, **STRATEGY_KNOBS.get(strategy, {}))

    # Cold: a fresh optimizer per run, including DAG construction.
    cold_results = {}
    cold_time = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        fresh = MultiQueryOptimizer(catalog)
        for strategy in ALL_STRATEGIES:
            cold_results[strategy] = fresh.optimize(
                batch, strategy=strategy, **STRATEGY_KNOBS.get(strategy, {})
            )
        cold_time = min(cold_time, time.perf_counter() - started)
        cold_dag = fresh.session.prepare(batch).dag

    # Warm: the session has served this exact traffic before.
    warm_results = {}
    warm_time = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for strategy in ALL_STRATEGIES:
            warm_results[strategy] = session.optimize(
                batch, strategy=strategy, **STRATEGY_KNOBS.get(strategy, {})
            )
        warm_time = min(warm_time, time.perf_counter() - started)
    warm_dag = session.prepare(batch).dag

    assert warm_time * 2 <= cold_time, (
        f"warm serving not ≥2× faster: warm={warm_time:.6f}s cold={cold_time:.6f}s"
    )
    for strategy in ALL_STRATEGIES:
        cold, warm = cold_results[strategy], warm_results[strategy]
        assert warm.total_cost == cold.total_cost, strategy
        assert warm.volcano_cost == cold.volcano_cost, strategy
        assert _materialization_signatures(warm, warm_dag) == _materialization_signatures(
            cold, cold_dag
        ), strategy
