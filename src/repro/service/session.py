"""The persistent serving layer: :class:`OptimizerSession`.

A session keeps everything that is expensive to build alive across batches:

* the **catalog** and **cost model**,
* one **fingerprint-interned memo** shared by every batch it has served —
  re-submitted (or overlapping) queries unify with the groups already in the
  memo instead of rebuilding the DAG from scratch,
* per-batch :class:`~repro.optimizer.best_cost.BestCostEngine` instances
  whose plan-DP caches stay warm (their ``(group, order)`` keys survive memo
  growth because group ids are append-only and each batch's active scope is
  frozen once built),
* an LRU cache of finished :class:`~repro.core.mqo.MQOResult` objects keyed
  by ``(batch, strategy, knobs)``, and
* — once a :class:`~repro.execution.data.Database` is attached — a
  :class:`~repro.service.matcache.MaterializationCache` of executed
  materialized-node row sets keyed by semantic fingerprint, so a warm
  session skips both re-optimization *and* re-computation of shared
  subexpressions when it answers queries with real rows.

Optimizing a previously seen batch is therefore a cache hit; optimizing a
batch that overlaps prior traffic only pays for its genuinely new queries.
The subsumption provenance machinery of :mod:`repro.dag` guarantees that
every batch is optimized exactly as if its DAG had been built fresh, so the
session returns bit-identical costs and materialization choices to a cold
:class:`~repro.core.mqo.MultiQueryOptimizer` — and, through the executor's
determinism, :meth:`OptimizerSession.execute_batch` returns bit-identical
rows warm and cold.

All public methods are thread-safe (one coarse lock around optimizer state;
row execution runs outside it, synchronized only through the cache's own
lock, so the :class:`~repro.service.scheduler.BatchScheduler` can execute
micro-batches from several workers concurrently).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..adaptive import (
    AdaptiveCardinalityEstimator,
    AdaptiveConfig,
    BenefitAwarePolicy,
    DriftDetector,
    DriftEvent,
    FeedbackStatsStore,
)
from ..algebra.logical import Query, QueryBatch
from ..analysis.sanitizer import sanitize_lock
from ..catalog.catalog import Catalog
from ..cost.model import CostModel
from ..dag.build import DagBuilder, DagConfig
from ..dag.fingerprint import canonical_key
from ..dag.sharing import BatchDag
from ..execution.backends import DEFAULT_BACKEND, resolve_backend
from ..execution.data import Database, Row
from ..execution.executor import Executor
from ..obs import Observability, StatisticsView, metric_field
from ..optimizer.best_cost import BestCostEngine
from ..optimizer.plan import PhysicalOp
from ..core.mqo import MQOResult, run_strategy
from .matcache import MaterializationCache, cache_key, estimate_rows_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (storage builds on us)
    from ..storage.spill import SpillConfig

__all__ = ["BatchExecution", "OptimizerSession", "SessionStatistics"]

#: Filename of the feedback snapshot inside a spill directory.
FEEDBACK_SNAPSHOT = "feedback.json"


def _restore_feedback_from(feedback: FeedbackStatsStore, path: Path) -> None:
    """Best-effort re-seed of a feedback store from a snapshot on disk.

    A missing snapshot is the normal cold start; a corrupt one degrades to
    an empty store (recovery must never make a serving target unusable).
    Shared by :class:`OptimizerSession` and
    :class:`~repro.service.pool.SessionPool`.
    """
    # Startup is the safe moment to sweep temp files a crash mid-snapshot
    # left behind (no snapshot of this process can be in flight yet).
    try:
        for leftover in path.parent.glob(".feedback-tmp-*"):
            leftover.unlink()
    # repro-lint: disable=bare-except-swallow -- a failed sweep only postpones cleanup to the next start; startup must not crash over it
    except OSError:
        pass
    if not path.exists():
        return
    from ..adaptive.stats import SnapshotError

    try:
        feedback.restore(path)
    # repro-lint: disable=bare-except-swallow -- a missing/corrupt snapshot is the documented cold start; the store stays empty
    except (OSError, SnapshotError):
        pass


def _snapshot_feedback_to(
    feedback: Optional[FeedbackStatsStore],
    spill_dir: Optional[Path],
    path: Union[None, str, Path],
) -> Optional[Path]:
    """Persist a feedback store; returns the path written, or None.

    ``path`` defaults to ``spill_dir/feedback.json``; nothing happens (and
    None is returned) without a store or without a path to default into.
    """
    if feedback is None:
        return None
    if path is None:
        if spill_dir is None:
            return None
        path = spill_dir / FEEDBACK_SNAPSHOT
    path = Path(path)
    feedback.snapshot(path)
    return path

#: Identity of a prepared batch inside one session: the named query roots
#: plus the (multiset of) block roots — everything batch-level structure
#: depends on.
BatchKey = Tuple[Tuple[Tuple[str, int], ...], Tuple[int, ...]]


class SessionStatistics(StatisticsView):
    """Counters describing how a session served its traffic.

    A live view over a :class:`~repro.obs.MetricsRegistry` (series
    ``session_batches_served``, ``session_rows_returned``, ...): every
    field keeps the exact name and semantics of the former dataclass, and
    ``aggregate`` still sums counters across sessions (the pool's
    shard-level roll-up).
    """

    _prefix = "session_"

    batches_served = metric_field()
    batches_prepared = metric_field()
    batch_cache_hits = metric_field()
    queries_interned = metric_field()
    queries_reused = metric_field()
    result_cache_hits = metric_field()
    subsumption_runs = metric_field()
    strategies_run = metric_field()
    batches_executed = metric_field()
    queries_executed = metric_field()
    rows_returned = metric_field()
    materializations_computed = metric_field()
    materialization_cache_hits = metric_field()
    data_invalidations = metric_field()
    observations_recorded = metric_field()
    drift_events = metric_field()
    results_invalidated = metric_field()
    reoptimizations = metric_field()


@dataclass
class PreparedBatch:
    """A batch folded into the session memo, with its scoped DAG and engine."""

    key: BatchKey
    dag: BatchDag
    engine: BestCostEngine
    new_queries: int = 0
    reused_queries: int = 0


@dataclass
class BatchExecution:
    """Rows for every query of one executed batch, plus how they were produced.

    Attributes:
        batch_name / strategy: which batch ran, under which strategy.
        rows: result rows per query name.
        result: the :class:`~repro.core.mqo.MQOResult` whose plans ran.
        cache_hits: materialized nodes served from the
            :class:`~repro.service.matcache.MaterializationCache`.
        materializations: materialized nodes actually (re)computed by this
            call — zero on a fully warm execution.
        execution_time: wall seconds spent executing (optimization excluded).
    """

    batch_name: str
    strategy: str
    rows: Dict[str, List[Row]]
    result: MQOResult
    cache_hits: int = 0
    materializations: int = 0
    execution_time: float = 0.0

    @property
    def row_count(self) -> int:
        return sum(len(rows) for rows in self.rows.values())


class OptimizerSession:
    """A long-lived optimizer serving many (possibly overlapping) batches.

    Args:
        catalog: the database catalog every batch is optimized against.
        cost_model: the cost model (defaults to the paper's parameters).
        dag_config: knobs for DAG expansion (shared by all batches).
        incremental: enable the engines' incremental ``bestCost`` DP reuse.
        max_cached_batches: how many prepared batches (DAG + engine with its
            warm caches) to keep alive, LRU.
        max_cached_results: how many finished ``MQOResult`` objects to keep.
        database: optionally attach an execution database up front (same as
            calling :meth:`attach_database`).
        matcache: the cross-batch materialization cache to use; a default
            one is created when a database is attached without one.
        adaptive: enable the runtime-feedback loop (off by default).  Pass
            ``True`` for the default :class:`~repro.adaptive.AdaptiveConfig`
            or a config instance for tuned thresholds.  With adaptation on,
            every executed batch records observed cardinalities, byte sizes
            and timings into :attr:`feedback`; drifted plan nodes get their
            memo estimates corrected and the affected cached results are
            re-optimized on the next request.  Warm traffic whose estimates
            never drift is served bit-identically either way.
        feedback: the observation store to use (a fresh one per session by
            default); sharing one store across sessions shares the learned
            statistics.
        spill_dir: enable the durable cache tier rooted at this directory:
            the materialization cache becomes a two-level
            :class:`~repro.storage.spill.SpillingMaterializationCache`
            (evictions spill to ``spill_dir/matcache``, gets fault back in),
            and — with adaptation on — the feedback store is re-seeded from
            ``spill_dir/feedback.json`` when a previous process left one
            (skipped when an explicit ``feedback`` store is passed in: its
            owner, e.g. a :class:`~repro.service.pool.SessionPool`, decides
            what to restore).  Call :meth:`snapshot` before a planned
            shutdown to persist everything still hot.
        spill_config: sizing of the two-level cache (RAM and disk budgets);
            ignored without ``spill_dir`` or with an explicit ``matcache``.
        executor: execution backend name — ``"row"`` (the tuple-at-a-time
            interpreter, the default), ``"columnar"`` (the vectorized
            backend of :mod:`repro.execution.columnar`), or the SQL oracles
            ``"sqlite"``/``"duckdb"`` (:mod:`repro.execution.sql`: plans
            rendered to SQL and executed on a real engine; ``"duckdb"``
            needs the optional duckdb package).  All return row-identical
            results and drive the cache/observer hooks identically; the
            choice only changes execution speed (and, for the oracles,
            engine independence).
        obs: the :class:`~repro.obs.Observability` handle (metrics registry
            + tracer + identity labels) every statistics view, cache and
            span of this session reports through.  A private handle with
            tracing disabled is created when omitted — passing one is how a
            :class:`~repro.service.pool.SessionPool` shares one registry
            across shards, and how ``--trace-dir`` turns tracing on.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        dag_config: Optional[DagConfig] = None,
        *,
        incremental: bool = True,
        max_cached_batches: int = 16,
        max_cached_results: int = 128,
        database: Optional[Database] = None,
        matcache: Optional[MaterializationCache] = None,
        adaptive: Union[None, bool, AdaptiveConfig] = None,
        feedback: Optional[FeedbackStatsStore] = None,
        spill_dir: Union[None, str, Path] = None,
        spill_config: "Optional[SpillConfig]" = None,
        executor: str = DEFAULT_BACKEND,
        obs: Optional[Observability] = None,
    ):
        self.catalog = catalog
        # Resolve the backend name now so a typo fails at construction, not
        # at the first execution; the class is instantiated per database in
        # attach_database().
        self._executor_cls = resolve_backend(executor)
        self.executor_backend = executor
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.dag_config = dag_config if dag_config is not None else DagConfig()
        self.incremental = incremental
        self.max_cached_batches = max_cached_batches
        self.max_cached_results = max_cached_results
        self.obs = obs if obs is not None else Observability()
        self.statistics = SessionStatistics(self.obs.registry, labels=self.obs.labels)
        # Under REPRO_SANITIZE=1 the lock joins the cross-thread lock-order
        # graph (see repro.analysis.sanitizer); otherwise it is a bare RLock.
        self._lock = sanitize_lock(threading.RLock(), "session", obs=self.obs)
        self._builder = DagBuilder(catalog, self.dag_config)
        self._batches: "OrderedDict[BatchKey, PreparedBatch]" = OrderedDict()
        self._results: "OrderedDict[Tuple, MQOResult]" = OrderedDict()

        config = AdaptiveConfig() if adaptive is True else (adaptive or None)
        if config is not None and not config.enabled:
            config = None
        self.adaptive_config: Optional[AdaptiveConfig] = config
        self.spill_dir: Optional[Path] = Path(spill_dir) if spill_dir is not None else None
        self.feedback: Optional[FeedbackStatsStore] = None
        self._estimator: Optional[AdaptiveCardinalityEstimator] = None
        self._drift: Optional[DriftDetector] = None
        #: Result-cache keys dropped by drift invalidation; recomputing one
        #: counts as a re-optimization in the statistics.  Insertion-ordered
        #: and bounded like the result cache itself (a key never requested
        #: again must not accumulate forever in a long-lived session).
        self._drift_pending: "OrderedDict[Tuple, bool]" = OrderedDict()
        if config is not None:
            # Not `feedback or ...`: an empty store has len() == 0 and is
            # falsy, which would silently drop a (shared) store passed in
            # before its first observation.
            owns_feedback = feedback is None
            self.feedback = (
                feedback
                if feedback is not None
                else FeedbackStatsStore(
                    ewma_alpha=config.ewma_alpha,
                    epoch_decay=config.epoch_decay,
                    registry=self.obs.registry,
                    labels=self.obs.labels,
                )
            )
            if owns_feedback and self.spill_dir is not None:
                _restore_feedback_from(
                    self.feedback, self.spill_dir / FEEDBACK_SNAPSHOT
                )
            self._estimator = AdaptiveCardinalityEstimator(
                self.feedback, min_confidence=config.min_confidence
            )
            self._drift = DriftDetector(
                threshold=config.drift_threshold,
                min_observations=config.min_observations,
                min_confidence=config.min_confidence,
            )
        policy = (
            BenefitAwarePolicy(self.feedback)
            if config is not None and config.benefit_cache_policy
            else None
        )
        if matcache is None and self.spill_dir is not None:
            # Imported here, not at module level: repro.storage builds on
            # this package, so the reverse import must stay lazy.
            from ..storage.spill import SpillingMaterializationCache

            matcache = SpillingMaterializationCache.from_config(
                self.spill_dir / "matcache", spill_config, policy=policy, obs=self.obs
            )
        elif matcache is None and policy is not None:
            matcache = MaterializationCache(policy=policy, obs=self.obs)
        # Not `matcache or ...`: an empty cache has len() == 0 and is falsy.
        self.matcache = (
            matcache if matcache is not None else MaterializationCache(obs=self.obs)
        )
        self._database: Optional[Database] = None
        self._executor: Optional[Executor] = None
        if database is not None:
            self.attach_database(database)

    # ------------------------------------------------------------------ state

    @property
    def memo(self):
        """The session-wide fingerprint-interned memo (shared by all batches)."""
        with self._lock:  # reset() swaps the builder out from under readers
            return self._builder.memo

    def statistics_snapshot(self) -> Dict[str, int]:
        """A consistent copy of the session counters, taken under the lock.

        Reading :attr:`statistics` field-by-field mid-operation can observe
        a torn multi-counter state; the pool aggregates from these.
        """
        with self._lock:
            return self.statistics.as_dict()

    def reset(self) -> None:
        """Drop the memo and every cache (statistics are kept).

        Feedback observations survive a reset: they are keyed by semantic
        fingerprint, not by memo group id, so the rebuilt memo benefits from
        everything already learned.
        """
        with self._lock:
            self._builder = DagBuilder(self.catalog, self.dag_config)
            self._batches.clear()
            self._results.clear()
            self._drift_pending.clear()
            self.matcache.invalidate()

    # ------------------------------------------------------------- execution

    @property
    def database(self) -> Optional[Database]:
        """The attached execution database, if any."""
        with self._lock:  # attach_database() swaps it concurrently
            return self._database

    def attach_database(self, database: Database) -> None:
        """Attach (or swap) the database the session executes plans against.

        Invalidation is purely token-driven: swapping to a database with
        *different* content changes the content fingerprint and
        ``ensure_token`` flushes the caches; swapping to a different object
        holding **identical** content keeps every cached row valid — the
        rows are derived from the data, not from the object identity (this
        is the same property that lets the durable tier trust a previous
        process's spill files).
        """
        with self._lock:
            self._database = database
            self._executor = self._executor_cls(database)
            # Backends that do their own deferred work (the SQL oracles
            # reload tables lazily) emit spans through the session's tracer.
            self._executor.tracer = self.obs.tracer
            self.matcache.ensure_token(self._data_token())
            if self.feedback is not None:
                self.feedback.ensure_token(self._data_token())

    def _data_token(self) -> str:
        """The cache-invalidation token: the database's **content** fingerprint.

        Content-derived (not ``id()``- or version-based) so the token is
        stable across processes: a restarted session that loads the same
        data computes the same token, which is what lets the durable tier
        (:mod:`repro.storage`) trust spill files and feedback snapshots a
        previous process wrote — while any actual data change still yields
        a different token and invalidates exactly as before.
        """
        with self._lock:  # re-entrant: callers usually already hold it
            assert self._database is not None
            return self._database.fingerprint()

    # ------------------------------------------------------------- durability

    def snapshot_feedback(self, path: Union[None, str, Path] = None) -> Optional[Path]:
        """Persist the feedback store; returns the path written, or None.

        ``path`` defaults to ``spill_dir/feedback.json``; nothing happens
        (and None is returned) when the session has no feedback store or no
        spill directory to default into.
        """
        return _snapshot_feedback_to(self.feedback, self.spill_dir, path)

    def snapshot(self) -> None:
        """Persist everything still hot before a planned shutdown.

        Spills every in-memory materialization the cache can checkpoint
        (eviction alone only persists what *fell out* of RAM) and writes
        the feedback snapshot.  A session without a durable tier is a
        no-op; crashes without a snapshot lose only what was never
        spilled — never correctness.
        """
        checkpoint = getattr(self.matcache, "checkpoint", None)
        if callable(checkpoint):
            checkpoint()
        self.snapshot_feedback()

    # ---------------------------------------------------------------- prepare

    def prepare(self, batch: Union[QueryBatch, Sequence[Query]]) -> PreparedBatch:
        """Fold a batch into the session memo and return its DAG and engine.

        Queries already known to the memo (from this or any earlier batch)
        are recognized through their semantic fingerprints and add nothing;
        only genuinely new queries expand the memo, followed by one
        (idempotent) subsumption pass.  A batch prepared before is returned
        straight from the LRU cache with all engine caches warm.
        """
        batch = _as_batch(batch)
        with self._lock:
            return self._prepare_locked(batch)

    def _prepare_locked(self, batch: QueryBatch) -> PreparedBatch:
        tracer = self.obs.tracer
        memo = self._builder.memo
        version_before = memo.version
        roots: Dict[str, int] = {}
        blocks: list = []
        reused = 0
        with tracer.span("optimize.intern", batch=batch.name) as span:
            for query in batch:
                query_version = memo.version
                root, query_blocks = self._builder.intern_query(query)
                roots[query.name] = root
                blocks.extend(query_blocks)
                if memo.version == query_version:
                    reused += 1
            new = len(batch) - reused
            span.set(new=new, reused=reused)
        self.statistics.queries_interned += new
        self.statistics.queries_reused += reused

        if memo.version != version_before:
            # Only genuinely new structure triggers the subsumption pass
            # (which is idempotent over everything already derived).
            with tracer.span("optimize.subsume"):
                self._builder.finalize()
            self.statistics.subsumption_runs += 1

        key: BatchKey = (tuple(sorted(roots.items())), tuple(sorted(blocks)))
        prepared = self._batches.get(key)
        if prepared is not None:
            self.statistics.batch_cache_hits += 1
            self._batches.move_to_end(key)
            return prepared

        dag = BatchDag(
            memo=memo,
            catalog=self.catalog,
            query_roots=roots,
            block_roots=tuple(blocks),
            config=self.dag_config,
        )
        engine = BestCostEngine(dag, self.cost_model, incremental=self.incremental)
        prepared = PreparedBatch(
            key=key, dag=dag, engine=engine, new_queries=new, reused_queries=reused
        )
        self._batches[key] = prepared
        self.statistics.batches_prepared += 1
        while len(self._batches) > self.max_cached_batches:
            self._batches.popitem(last=False)
        return prepared

    # --------------------------------------------------------------- optimize

    def optimize(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategy: str = "marginal-greedy",
        *,
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> MQOResult:
        """Optimize one batch with one strategy, reusing all prior session work."""
        batch = _as_batch(batch)
        tracer = self.obs.tracer
        strategy_name = _strategy_key(strategy)
        start = time.perf_counter()
        try:
            with tracer.span(
                "session.optimize", batch=batch.name, strategy=strategy_name
            ), self._lock:
                self.statistics.batches_served += 1
                prepared = self._prepare_locked(batch)
                result_key = (prepared.key, strategy_name, lazy, cardinality, decomposition)
                cached = self._results.get(result_key)
                if cached is not None:
                    self.statistics.result_cache_hits += 1
                    tracer.event("session.result_cache_hit")
                    self._results.move_to_end(result_key)
                    return replace(
                        cached,
                        batch_name=batch.name,
                        optimization_time=time.perf_counter() - start,
                    )
                if self._drift_pending.pop(result_key, False):
                    # This exact request was served before and its cached result
                    # was invalidated by drift: the recomputation below runs the
                    # strategy against the corrected statistics.
                    self.statistics.reoptimizations += 1
                    tracer.event("adaptive.reoptimize")
                with tracer.span("optimize.best_cost", strategy=strategy_name):
                    result = run_strategy(
                        prepared.dag,
                        prepared.engine,
                        batch_name=batch.name,
                        strategy=strategy,
                        lazy=lazy,
                        cardinality=cardinality,
                        decomposition=decomposition,
                    )
                self.statistics.strategies_run += 1
                self._results[result_key] = result
                while len(self._results) > self.max_cached_results:
                    self._results.popitem(last=False)
                return result
        finally:
            self.obs.observe_latency(
                "session_optimize_seconds",
                time.perf_counter() - start,
                strategy=strategy_name,
            )

    def compare(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategies: Sequence[str] = ("volcano", "greedy", "marginal-greedy"),
        *,
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> Dict[str, MQOResult]:
        """Run several strategies on the same batch with *independent* engines.

        ``compare`` exists to measure strategies against each other, so every
        strategy gets a fresh ``bestCost`` engine over the shared DAG — a
        shared (or pre-warmed) engine would let whichever strategy runs first
        absorb the cold-cache cost and distort the reported optimization
        times and oracle-call counts.  Costs and materializations are
        unaffected by engine caching; use :meth:`optimize` when serving.
        """
        batch = _as_batch(batch)
        results: Dict[str, MQOResult] = {}
        with self._lock:
            self.statistics.batches_served += 1
            prepared = self._prepare_locked(batch)
            for strategy in strategies:
                engine = BestCostEngine(
                    prepared.dag, self.cost_model, incremental=self.incremental
                )
                result = run_strategy(
                    prepared.dag,
                    engine,
                    batch_name=batch.name,
                    strategy=strategy,
                    lazy=lazy,
                    cardinality=cardinality,
                    decomposition=decomposition,
                )
                self.statistics.strategies_run += 1
                results[result.strategy] = result
        return results

    # ---------------------------------------------------------------- execute

    def execute_batch(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategy: str = "marginal-greedy",
        *,
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> BatchExecution:
        """Optimize *and run* one batch, returning real rows for every query.

        The optimization half goes through :meth:`optimize` (and all of its
        caches); the execution half runs the chosen consolidated plan against
        the attached database, reading shared subexpressions from the
        cross-batch materialization cache and publishing any it had to
        compute.  Re-executing a previously executed batch on unchanged data
        therefore performs **zero** re-materializations and returns
        bit-identical rows.

        Example (runnable as-is)::

            from repro.catalog.tpcd import tpcd_catalog
            from repro.execution import tiny_tpcd_database
            from repro.service import OptimizerSession
            from repro.workloads.batches import composite_batch

            session = OptimizerSession(tpcd_catalog(1.0), database=tiny_tpcd_database())
            cold = session.execute_batch(composite_batch(1))
            warm = session.execute_batch(composite_batch(1))
            assert warm.rows == cold.rows and warm.materializations == 0

        Raises:
            RuntimeError: when no database is attached.
        """
        batch = _as_batch(batch)
        # One root span ties the optimize and execute halves into one trace
        # for direct callers; scheduler traffic already activated a trace.
        with self.obs.tracer.span(
            "session.execute_batch", batch=batch.name, strategy=_strategy_key(strategy)
        ):
            result = self.optimize(
                batch,
                strategy=strategy,
                lazy=lazy,
                cardinality=cardinality,
                decomposition=decomposition,
            )
            return self.execute_plans(result)

    def execute(
        self,
        query: Query,
        strategy: str = "marginal-greedy",
        **knobs,
    ) -> List[Row]:
        """Optimize and run a single query, returning its rows.

        A convenience wrapper over :meth:`execute_batch` for one-query
        batches; queries submitted together (or through the
        :class:`~repro.service.scheduler.BatchScheduler`) additionally share
        materialized subexpressions within their batch.
        """
        execution = self.execute_batch(
            QueryBatch(query.name, (query,)), strategy=strategy, **knobs
        )
        return execution.rows[query.name]

    def execute_plans(
        self, result: MQOResult, *, queries: Optional[Sequence[str]] = None
    ) -> BatchExecution:
        """Run an already-optimized :class:`~repro.core.mqo.MQOResult`.

        Materialized nodes are looked up in the cache by semantic
        fingerprint + stored sort order; misses are computed by the executor
        (in dependency order) and published back, stamped with the data
        version observed *before* execution started so a concurrent data
        change can never reinstate stale rows.  Row execution runs outside
        the session lock — concurrent workers only synchronize on the
        cache's own lock.

        ``queries`` restricts row production to a subset of the batch's
        query names (the scheduler uses this to skip rows nobody asked
        for); the batch's materializations always run, so the cache warms
        identically either way.
        """
        tracer = self.obs.tracer
        with tracer.span(
            "session.execute",
            batch=result.batch_name,
            strategy=result.strategy,
            backend=self.executor_backend,
        ) as execute_span:
            return self._execute_plans_traced(result, queries, execute_span)

    def _execute_plans_traced(
        self, result: MQOResult, queries: Optional[Sequence[str]], execute_span
    ) -> BatchExecution:
        tracer = self.obs.tracer
        with self._lock:
            if self._executor is None or self._database is None:
                raise RuntimeError(
                    "no database attached — call attach_database() before executing"
                )
            executor = self._executor
            memo = self._builder.memo
            if result.memo_uid is not None and result.memo_uid != memo.uid:
                # Group ids are memo-local: resolving a foreign result's ids
                # against this memo would read unrelated groups and poison
                # the fingerprint-keyed cache with wrong rows.
                raise ValueError(
                    "result was optimized against a different memo "
                    f"(uid {result.memo_uid}, session memo uid {memo.uid}); "
                    "execute results on the session that produced them"
                )
            token = self._data_token()
            if self.matcache.ensure_token(token):
                self.statistics.data_invalidations += 1

        started = time.perf_counter()
        plan = result.plan
        # A batch-preferring backend (columnar) receives cache hits as
        # ColumnBatch values — same hit/miss accounting, but warm reads skip
        # the row-copy and the rows→columns transpose entirely.
        fetch = (
            self.matcache.get_batch
            if getattr(executor, "prefers_batches", False)
            else self.matcache.get
        )
        hits: Dict[int, object] = {}
        keys = {
            gid: cache_key(memo.signature_of(gid), mat_plan.order)
            for gid, mat_plan in plan.materialization_plans.items()
        }
        for gid, key in keys.items():
            cached = fetch(key)
            if cached is not None:
                hits[gid] = cached

        fills = [0]

        def publish(gid: int, mat_plan, rows: List[Row]) -> None:
            fills[0] += 1
            self.matcache.put(keys[gid], rows, cost=mat_plan.cost, token=token)

        # Runtime feedback: buffer observations outside the stats store and
        # absorb them only after the whole batch executed — an operator error
        # mid-batch discards the buffer, so a failing query can never leave
        # partial measurements behind (record-on-success only).
        observations: List[Tuple[int, int, int, Optional[float]]] = []
        observer = None
        feedback_on = self.feedback is not None
        trace_on = tracer.enabled
        if feedback_on or trace_on:

            def observer(node_plan, node_rows: List[Row], node_elapsed: float) -> None:
                if feedback_on:
                    # A plan whose root merely re-reads a cached materialization
                    # measured a cache read, not the cost of producing the node:
                    # keep its (valid) cardinality but withhold the timing, or a
                    # few warm reads would erode the measured recomputation time
                    # the benefit-aware cache policy scores entries with.
                    measured: Optional[float] = (
                        None
                        if node_plan.op is PhysicalOp.READ_MATERIALIZED
                        else node_elapsed
                    )
                    observations.append(
                        (
                            node_plan.group,
                            len(node_rows),
                            estimate_rows_bytes(node_rows),
                            measured,
                        )
                    )
                if trace_on:
                    # The executor times each plan node; file it as a proper
                    # span of the current trace after the fact.
                    tracer.record_span(
                        "execute.plan_node",
                        node_elapsed,
                        op=node_plan.op.name,
                        group=node_plan.group,
                        rows=len(node_rows),
                    )

        rows = executor.execute_result(
            plan,
            materialized=hits,
            fill_listener=publish,
            queries=queries,
            observer=observer,
        )
        elapsed = time.perf_counter() - started
        self.obs.observe_latency(
            "session_execute_seconds", elapsed, strategy=result.strategy
        )
        execute_span.set(
            cache_hits=len(hits),
            materializations=fills[0],
            rows=sum(len(r) for r in rows.values()),
        )

        with self._lock:
            self.statistics.batches_executed += 1
            self.statistics.queries_executed += len(rows)
            self.statistics.rows_returned += sum(len(r) for r in rows.values())
            self.statistics.materializations_computed += fills[0]
            self.statistics.materialization_cache_hits += len(hits)
            if observations and token == self._data_token():
                # Same stale-token rejection as the materialization cache's
                # fills: if the data (or the attached database) changed while
                # this batch was executing, its measurements describe rows
                # that no longer exist — absorbing them would rebind the
                # store to the old token and let obsolete cardinalities
                # masquerade as the freshest epoch.
                with tracer.span("adaptive.absorb", observations=len(observations)):
                    self._absorb_observations_locked(observations, token)
        return BatchExecution(
            batch_name=result.batch_name,
            strategy=result.strategy,
            rows=rows,
            result=result,
            cache_hits=len(hits),
            materializations=fills[0],
            execution_time=elapsed,
        )

    # ---------------------------------------------------------------- feedback

    def _absorb_observations_locked(
        self,
        observations: List[Tuple[int, int, int, Optional[float]]],
        token: str,
    ) -> None:
        """Fold one successful execution's measurements into the feedback loop.

        Each observation is recorded under the node's semantic fingerprint,
        then checked for drift against the memo group's current cardinality
        estimate; drifted groups have their estimates corrected and every
        cached result (and prepared engine) that can reach them is
        invalidated, to be re-optimized with the corrected statistics on the
        next request.  Called with the session lock held.
        """
        assert self.feedback is not None and self._drift is not None
        memo = self._builder.memo
        self.feedback.ensure_token(token)
        drifted: Dict[int, DriftEvent] = {}
        for gid, observed_rows, observed_bytes, observed_elapsed in observations:
            key = canonical_key(memo.signature_of(gid))
            stats = self.feedback.record(
                key, rows=observed_rows, bytes=observed_bytes, elapsed=observed_elapsed
            )
            self.statistics.observations_recorded += 1
            event = self._drift.check(
                memo.get(gid).rows, stats, confidence=self.feedback.confidence(key)
            )
            if event is not None:
                drifted[gid] = event
        if drifted:
            self._apply_drift_locked(drifted)

    def _apply_drift_locked(self, drifted: Dict[int, DriftEvent]) -> None:
        """Correct drifted estimates and invalidate everything derived from them."""
        assert self._estimator is not None and self.adaptive_config is not None
        tracer = self.obs.tracer
        memo = self._builder.memo
        for gid, event in drifted.items():
            group = memo.get(gid)
            group.rows = max(self._estimator.estimate_rows(event.key, group.rows), 1.0)
            if self.adaptive_config.correct_row_width:
                width = self._estimator.observed_width(event.key)
                if width is not None:
                    group.row_width = max(width, 1.0)
            self.statistics.drift_events += 1
            if tracer.enabled:
                tracer.event("adaptive.drift", group=gid, key=event.key[:16])

        # One upward traversal computes every group that can reach a drifted
        # node (the drifted groups plus all their memo ancestors); a cached
        # artifact is affected exactly when one of its roots/blocks is in
        # this set.  Full-memo parent edges make this a conservative superset
        # of each batch's active scope: at worst an unaffected batch
        # re-optimizes once — it can never keep serving a plan built from
        # statistics known to be wrong.
        parents = memo.parents()
        affected = set(drifted)
        stack = list(drifted)
        while stack:
            for parent in parents.get(stack.pop(), ()):
                if parent not in affected:
                    affected.add(parent)
                    stack.append(parent)

        def is_affected(batch_key: BatchKey) -> bool:
            roots, blocks = batch_key
            return any(gid in affected for _, gid in roots) or any(
                gid in affected for gid in blocks
            )

        # Prepared batches keep engines whose DP tables were costed with the
        # old estimates; affected ones are dropped (the rebuild on next
        # prepare is cheap — the memo is unchanged).
        for batch_key in list(self._batches):
            if is_affected(batch_key):
                del self._batches[batch_key]
        for result_key in list(self._results):
            if is_affected(result_key[0]):
                del self._results[result_key]
                self._drift_pending[result_key] = True
                self._drift_pending.move_to_end(result_key)
                self.statistics.results_invalidated += 1
        while len(self._drift_pending) > self.max_cached_results:
            self._drift_pending.popitem(last=False)


def _as_batch(batch: Union[QueryBatch, Sequence[Query]]) -> QueryBatch:
    if isinstance(batch, QueryBatch):
        return batch
    return QueryBatch("batch", tuple(batch))


def _strategy_key(strategy) -> str:
    """A hashable identity for the strategy part of a result-cache key."""
    name = getattr(strategy, "name", None)
    return name if isinstance(name, str) and name else str(strategy)
