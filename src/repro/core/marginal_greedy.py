"""The MarginalGreedy algorithm (Algorithm 2) and its lazy variant.

MarginalGreedy solves unconstrained normalized submodular maximization
(UNSM) given a decomposition ``f = fM − c``: it repeatedly adds the element
with the largest marginal-benefit-to-cost ratio ``f'M(x, X)/c({x})`` as long
as that ratio exceeds 1, and finally appends every element with negative
additive cost.  Theorem 1 of the paper shows the output ``X`` satisfies

    f(X) >= [1 − (c(Θ)/f(Θ)) · ln(1 + f(Θ)/c(Θ))] · f(Θ)

for an optimal solution ``Θ``, and Theorem 2 shows this factor is the best
achievable in polynomial time unless P = NP.

Two speed-ups from Section 5 are implemented:

* the ratio<1 elimination (an element whose current ratio drops below 1 can
  never be selected later, because ``fM`` is submodular), and
* the Minoux-style lazy evaluation (:func:`lazy_marginal_greedy`), which
  keeps stale upper bounds on the ratios in a max-heap and only refreshes
  the top entry.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .decomposition import Decomposition, canonical_decomposition
from .set_functions import Element, SetFunction, Subset, as_frozenset

__all__ = [
    "GreedyStep",
    "MarginalGreedyResult",
    "marginal_greedy",
    "lazy_marginal_greedy",
    "theorem1_factor",
    "theorem1_bound",
]


@dataclass(frozen=True)
class GreedyStep:
    """One iteration of a greedy run: the element picked and the bookkeeping."""

    element: Element
    ratio: float
    monotone_gain: float
    cost: float
    value_after: float


@dataclass
class MarginalGreedyResult:
    """Outcome of a MarginalGreedy run.

    Attributes:
        selected: the chosen set ``X``.
        order: the elements in the order they were added (ratio-driven picks
            first, then the free negative-cost elements).
        value: ``f(X)`` for the original function of the decomposition.
        steps: per-iteration trace of the ratio-driven picks.
        free_elements: negative-cost elements appended at the end.
        monotone_evaluations: number of ``fM`` marginal evaluations performed
            (the dominant cost; each one is a ``bestCost`` call in MQO).
        pruned: elements removed mid-run by the ratio<1 elimination.
        wall_time: wall-clock seconds spent inside the algorithm.
    """

    selected: Subset
    order: Tuple[Element, ...]
    value: float
    steps: Tuple[GreedyStep, ...]
    free_elements: Subset
    monotone_evaluations: int
    pruned: Subset
    wall_time: float

    def __len__(self) -> int:
        return len(self.selected)


def theorem1_factor(f_opt: float, c_opt: float) -> float:
    """The Theorem-1 approximation factor ``1 − (c/f)·ln(1 + f/c)``.

    ``f_opt`` is ``f(Θ)`` and ``c_opt`` is ``c(Θ)`` for an optimal solution
    ``Θ``.  The factor degenerates gracefully: if ``c_opt`` is zero the
    factor is 1 (the bound is vacuous but safe), and if ``f_opt`` is not
    positive the bound is reported as 0.
    """
    if f_opt <= 0.0:
        return 0.0
    if c_opt <= 0.0:
        return 1.0
    gamma = f_opt / c_opt
    return 1.0 - math.log1p(gamma) / gamma


def theorem1_bound(f_opt: float, c_opt: float) -> float:
    """The guaranteed value ``factor * f(Θ)`` promised by Theorem 1."""
    return theorem1_factor(f_opt, c_opt) * max(f_opt, 0.0)


def _resolve_decomposition(
    problem: "SetFunction | Decomposition",
) -> Decomposition:
    if isinstance(problem, Decomposition):
        return problem
    return canonical_decomposition(problem)


def marginal_greedy(
    problem: "SetFunction | Decomposition",
    *,
    cardinality: Optional[int] = None,
    eliminate_low_ratio: bool = True,
    add_negative_cost_elements: bool = True,
) -> MarginalGreedyResult:
    """Run MarginalGreedy (Algorithm 2) on a UNSM problem.

    Args:
        problem: either a normalized submodular :class:`SetFunction` (the
            canonical Proposition-1 decomposition is computed for it) or an
            explicit :class:`Decomposition`.
        cardinality: optional cardinality constraint ``k`` (Section 5.3); the
            ratio-driven loop stops after ``k`` picks and no free elements
            are appended.
        eliminate_low_ratio: apply the Section-5.1 optimization that drops an
            element permanently once its ratio falls below 1.
        add_negative_cost_elements: append all elements with negative additive
            cost at the end of the unconstrained run (as the paper does).

    Returns:
        A :class:`MarginalGreedyResult` describing the chosen set.
    """
    start = time.perf_counter()
    decomposition = _resolve_decomposition(problem)
    universe = decomposition.universe

    selected: set = set()
    order: List[Element] = []
    steps: List[GreedyStep] = []
    pruned: set = set()
    evaluations = 0

    positive_cost = [e for e in universe if decomposition.element_cost(e) > 0.0]
    negative_cost = sorted(
        (e for e in universe if decomposition.element_cost(e) < 0.0), key=repr
    )
    zero_cost = sorted(
        (e for e in universe if decomposition.element_cost(e) == 0.0), key=repr
    )
    candidates = set(positive_cost)
    # Zero-cost elements behave like infinitely good ratios whenever their
    # marginal gain is positive; treat them as candidates too so that the
    # ratio rule (gain/0 = +inf > 1) is honoured.
    candidates.update(zero_cost)

    limit = len(universe) if cardinality is None else max(0, int(cardinality))

    while candidates and len(selected) < limit:
        best_element: Optional[Element] = None
        best_ratio = -math.inf
        best_gain = 0.0
        to_drop: List[Element] = []
        for element in sorted(candidates, key=repr):
            gain = decomposition.monotone_marginal(element, frozenset(selected))
            evaluations += 1
            cost = decomposition.element_cost(element)
            ratio = math.inf if cost <= 0.0 and gain > 0.0 else (
                gain / cost if cost > 0.0 else -math.inf
            )
            if eliminate_low_ratio and ratio <= 1.0:
                # Submodularity of fM: the ratio can only shrink as X grows,
                # so this element can never be selected in a later iteration.
                to_drop.append(element)
                continue
            if ratio > best_ratio or (
                ratio == best_ratio and repr(element) < repr(best_element)
            ):
                best_element = element
                best_ratio = ratio
                best_gain = gain
        for element in to_drop:
            candidates.discard(element)
            pruned.add(element)
        if best_element is None or best_ratio <= 1.0:
            break
        selected.add(best_element)
        order.append(best_element)
        candidates.discard(best_element)
        steps.append(
            GreedyStep(
                element=best_element,
                ratio=best_ratio,
                monotone_gain=best_gain,
                cost=decomposition.element_cost(best_element),
                value_after=decomposition.value(frozenset(selected)),
            )
        )

    free: set = set()
    if add_negative_cost_elements and cardinality is None:
        for element in negative_cost:
            if element not in selected:
                selected.add(element)
                order.append(element)
                free.add(element)

    final = frozenset(selected)
    return MarginalGreedyResult(
        selected=final,
        order=tuple(order),
        value=decomposition.value(final),
        steps=tuple(steps),
        free_elements=frozenset(free),
        monotone_evaluations=evaluations,
        pruned=frozenset(pruned),
        wall_time=time.perf_counter() - start,
    )


def lazy_marginal_greedy(
    problem: "SetFunction | Decomposition",
    *,
    cardinality: Optional[int] = None,
    add_negative_cost_elements: bool = True,
) -> MarginalGreedyResult:
    """The LazyMarginalGreedy algorithm (Section 5.2).

    Identical output to :func:`marginal_greedy` (ties are broken the same
    way), but the marginal-benefit-to-cost ratios are kept as stale upper
    bounds in a max-heap and only the top entry is refreshed, which is valid
    because submodularity of ``fM`` makes the true ratios non-increasing over
    the iterations.
    """
    start = time.perf_counter()
    decomposition = _resolve_decomposition(problem)
    universe = decomposition.universe

    selected: set = set()
    order: List[Element] = []
    steps: List[GreedyStep] = []
    pruned: set = set()
    evaluations = 0

    negative_cost = sorted(
        (e for e in universe if decomposition.element_cost(e) < 0.0), key=repr
    )
    limit = len(universe) if cardinality is None else max(0, int(cardinality))

    # Heap entries: (-ratio, tie_breaker, element, gain, iteration_computed).
    heap: List[Tuple[float, str, Element, float, int]] = []
    for element in universe:
        cost = decomposition.element_cost(element)
        if cost < 0.0:
            continue
        gain = decomposition.monotone_marginal(element, frozenset())
        evaluations += 1
        ratio = math.inf if cost == 0.0 and gain > 0.0 else (
            gain / cost if cost > 0.0 else -math.inf
        )
        heapq.heappush(heap, (-ratio, repr(element), element, gain, 0))

    iteration = 0
    while heap and len(selected) < limit:
        neg_ratio, tie, element, gain, computed_at = heapq.heappop(heap)
        ratio = -neg_ratio
        if ratio <= 1.0:
            # Stale or fresh, the bound says no remaining element can have a
            # true ratio above 1 (bounds only over-estimate) — stop.
            pruned.update(e for (_, _, e, _, _) in heap)
            pruned.add(element)
            break
        if computed_at != iteration:
            gain = decomposition.monotone_marginal(element, frozenset(selected))
            evaluations += 1
            cost = decomposition.element_cost(element)
            ratio = math.inf if cost == 0.0 and gain > 0.0 else (
                gain / cost if cost > 0.0 else -math.inf
            )
            heapq.heappush(heap, (-ratio, tie, element, gain, iteration))
            continue
        selected.add(element)
        order.append(element)
        iteration += 1
        steps.append(
            GreedyStep(
                element=element,
                ratio=ratio,
                monotone_gain=gain,
                cost=decomposition.element_cost(element),
                value_after=decomposition.value(frozenset(selected)),
            )
        )

    free: set = set()
    if add_negative_cost_elements and cardinality is None:
        for element in negative_cost:
            if element not in selected:
                selected.add(element)
                order.append(element)
                free.add(element)

    final = frozenset(selected)
    return MarginalGreedyResult(
        selected=final,
        order=tuple(order),
        value=decomposition.value(final),
        steps=tuple(steps),
        free_elements=frozenset(free),
        monotone_evaluations=evaluations,
        pruned=frozenset(pruned),
        wall_time=time.perf_counter() - start,
    )
