"""The column batch: per-column value vectors with a validity mask.

A :class:`ColumnBatch` is the unit of data the vectorized backend
(:class:`~repro.execution.columnar.executor.ColumnarExecutor`) moves between
operators: one Python list per column instead of one dict per row.  The
row-dict representation of the interpreter (:mod:`repro.execution.executor`)
remains the API of record — every batch converts **losslessly** to and from
it through :meth:`to_rows` / :meth:`from_rows`, and those conversions happen
only at the boundaries (query outputs, materialization-cache fills, the
observer hooks), which is the "late materialization" half of the design.

Semantics mirror the row world exactly:

* a column holds one value per row, ``None`` included — ``None`` is a
  *value* (a present key whose value is null), exactly as in a row dict;
* the **validity mask** records *presence*: ``mask[i] is False`` means row
  ``i`` did not have the column's key at all, which in row land makes
  :func:`~repro.execution.evaluate.resolve_column` raise
  :class:`~repro.execution.evaluate.ColumnNotFound`.  Homogeneous batches
  (the overwhelmingly common case) carry no mask at all (``mask is None``
  ⇒ every row has the key);
* column names are the qualified row keys (``"orders.o_orderdate"``), kept
  in row-dict insertion order so :meth:`to_rows` reproduces the exact key
  order the row executor would have produced;
* :meth:`resolve` applies the same resolution rules as
  :func:`~repro.execution.evaluate.resolve_column` — exact qualified name
  first, then unique suffix match — but once per batch instead of once per
  row.

Batches are immutable by convention: operators never mutate a column list
they received; :meth:`take` and :meth:`select` build new containers (and
:meth:`select` shares the underlying value lists, which is what makes
column pruning on a cached batch free).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..evaluate import AmbiguousColumn, ColumnNotFound

__all__ = ["ColumnBatch"]

Row = Dict[str, object]


class ColumnBatch:
    """A batch of rows stored column-wise.

    Attributes:
        columns: ordered mapping of column name to its value list (one value
            per row; ``None`` is a legal value).
        masks: per-column validity (presence) list, or ``None`` for columns
            every row has.  Only heterogeneous inputs ever carry masks.
        length: number of rows in the batch.
    """

    __slots__ = ("columns", "masks", "length")

    def __init__(
        self,
        columns: "Dict[str, List[object]]",
        length: int,
        masks: "Optional[Dict[str, Optional[List[bool]]]]" = None,
    ):
        self.columns = columns
        self.length = length
        # Copied into a plain dict so "falsy" below always means "empty",
        # whatever mapping type (e.g. a lazy view) the caller handed in.
        self.masks: Dict[str, Optional[List[bool]]] = (
            dict(masks) if masks is not None else {}
        )

    # ------------------------------------------------------------ construction

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "ColumnBatch":
        """Transpose row dicts into columns (exact, including missing keys)."""
        if not rows:
            return cls({}, 0)
        names = list(rows[0])
        width = len(names)
        try:
            if all(len(row) == width for row in rows):
                # Homogeneous fast path: every row has exactly the first
                # row's keys (a row with the same arity but different keys
                # raises KeyError below and falls through).
                return cls({name: [row[name] for row in rows] for name in names}, len(rows))
        # repro-lint: disable=bare-except-swallow -- KeyError *is* the heterogeneity signal; the slow path below handles these rows
        except KeyError:
            pass
        # Heterogeneous slow path: collect names in first-seen order and
        # record presence per cell.
        for row in rows:
            for key in row:
                if key not in names:  # names stays tiny; linear scan is fine
                    names.append(key)
        columns: Dict[str, List[object]] = {}
        masks: Dict[str, Optional[List[bool]]] = {}
        missing = object()
        for name in names:
            values = [row.get(name, missing) for row in rows]
            mask = [value is not missing for value in values]
            if all(mask):
                columns[name] = values
            else:
                columns[name] = [None if v is missing else v for v in values]
                masks[name] = mask
        return cls(columns, len(rows), masks)

    @classmethod
    def from_table(cls, rows: Sequence[Row], alias: str) -> "ColumnBatch":
        """Build a batch straight from a base table, alias-qualifying names.

        The columnar equivalent of the row executor's per-row
        ``_prefix_row`` — one pass per column instead of one dict per row.
        """
        if not rows:
            return cls({}, 0)
        keys = list(rows[0])
        try:
            if all(len(row) == len(keys) for row in rows):
                return cls(
                    {f"{alias}.{key}": [row[key] for row in rows] for key in keys},
                    len(rows),
                )
        # repro-lint: disable=bare-except-swallow -- KeyError *is* the heterogeneity signal; from_rows below handles these rows
        except KeyError:
            pass
        prefixed = cls.from_rows([{f"{alias}.{k}": v for k, v in row.items()} for row in rows])
        return prefixed

    # --------------------------------------------------------------- conversion

    def to_rows(self) -> List[Row]:
        """Materialize the batch back into fresh row dicts (the late step)."""
        if not self.columns:
            return [{} for _ in range(self.length)]
        names = list(self.columns)
        if not self.masks:
            cols = [self.columns[name] for name in names]
            return [dict(zip(names, values)) for values in zip(*cols)]
        rows: List[Row] = []
        masks = [self.masks.get(name) for name in names]
        cols = [self.columns[name] for name in names]
        for i in range(self.length):
            row: Row = {}
            for name, col, mask in zip(names, cols, masks):
                if mask is None or mask[i]:
                    row[name] = col[i]
            rows.append(row)
        return rows

    # --------------------------------------------------------------- resolution

    def resolve(self, column) -> str:
        """Resolve a :class:`~repro.algebra.expressions.ColumnRef` to a name.

        Same rules as :func:`~repro.execution.evaluate.resolve_column`, once
        per batch: exact qualified name first, then unique suffix match.
        Raises :class:`~repro.execution.evaluate.ColumnNotFound` when the
        reference matches no column or more than one.
        """
        if column.qualifier is not None:
            qualified = f"{column.qualifier}.{column.name}"
            if qualified in self.columns:
                return qualified
        suffix = f".{column.name}"
        matches = [
            name for name in self.columns if name.endswith(suffix) or name == column.name
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ColumnNotFound(
                f"column {column} not found in batch with columns {sorted(self.columns)}"
            )
        raise AmbiguousColumn(
            f"column {column} is ambiguous in batch: matches {sorted(matches)}"
        )

    def resolves(self, column) -> bool:
        """True when :meth:`resolve` would succeed (the join-orientation probe)."""
        try:
            self.resolve(column)
            return True
        except ColumnNotFound:
            return False

    def column(self, name: str) -> List[object]:
        return self.columns[name]

    def mask(self, name: str) -> Optional[List[bool]]:
        """The presence mask of a column (None ⇒ present in every row)."""
        return self.masks.get(name)

    # ----------------------------------------------------------------- reshaping

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather the given row positions into a new batch (the row order of
        ``indices`` becomes the output order; duplicates are allowed)."""
        columns = {
            name: [values[i] for i in indices] for name, values in self.columns.items()
        }
        masks: Dict[str, Optional[List[bool]]] = {}
        for name, mask in self.masks.items():
            if mask is not None:
                masks[name] = [mask[i] for i in indices]
        return ColumnBatch(columns, len(indices), masks)

    def select(self, names: Iterable[str]) -> "ColumnBatch":
        """A batch with just the named columns, **sharing** the value lists.

        Used for column pruning: dropping unused columns costs nothing
        because nothing is copied.
        """
        columns = {name: self.columns[name] for name in names}
        masks = {
            name: self.masks[name] for name in columns if self.masks.get(name) is not None
        }
        return ColumnBatch(columns, self.length, masks)

    # -------------------------------------------------------------------- misc

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnBatch({len(self.columns)} cols × {self.length} rows)"
