"""The run controller: drive one serving configuration with simulated traffic.

:func:`run_setting` is the harness's measurement unit.  It builds a world
(:mod:`.scale`), generates traffic (:mod:`.traffic`), stands up the exact
serving stack the repository ships — a
:class:`~repro.service.pool.SessionPool` behind a
:class:`~repro.service.scheduler.BatchScheduler` — and submits every
request at its open-loop arrival time, injecting drift at the configured
fractions of the run.  While it drives, it measures:

* **throughput** (completed requests per driving second, drift pauses
  excluded) and **latency** — each request's completion is recorded into a
  ``harness_request_seconds`` histogram in the pool's own
  :class:`~repro.obs.MetricsRegistry`, and the report reads p50/p95/p99
  from there alongside the serving layer's optimize/execute/queue-wait
  histograms, so the harness and the production exposition agree by
  construction;
* **counters** — the pool's session, materialization-cache (spill tier
  included) and feedback-store statistics; and
* **correctness** — every oracle-sampled request's rows are replayed
  against the independent reference backends (:mod:`.oracle`) after each
  segment drains, so a run that returned wrong rows *fails*, it does not
  just report fast numbers.

Between drift steps the scheduler is drained; oracle replays therefore
always compare against the data version that produced the serving rows.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ...obs import HistogramSnapshot, Observability
from ...service.pool import SessionPool
from ...service.scheduler import BatchScheduler
from ...storage.spill import SpillStatistics
from ...adaptive.stats import FeedbackStatistics
from ...execution.data import Row
from .oracle import CorrectnessOracle
from .scale import ScaleSpec, build_world
from .traffic import (
    Request,
    TrafficSpec,
    generate_traffic,
    parse_arrival,
    templates_for,
)

__all__ = [
    "HarnessConfig",
    "SettingReport",
    "DriveResult",
    "drive_requests",
    "run_setting",
]

#: The latency series every report carries (merged across labels).
LATENCY_SERIES: Tuple[Tuple[str, str], ...] = (
    ("request", "harness_request_seconds"),
    ("optimize", "session_optimize_seconds"),
    ("execute", "session_execute_seconds"),
    ("queue_wait", "scheduler_queue_wait_seconds"),
)


@dataclass(frozen=True)
class HarnessConfig:
    """Everything one harness setting depends on — all of it seedable.

    ``scale``/``workload``/``seed`` size the data, the ``TrafficSpec``
    fields shape the traffic, and the remaining knobs pick the serving
    configuration under test.  :meth:`label` names the setting in reports.
    """

    # Data
    scale: float = 1.0
    workload: str = "star"
    n_dimensions: int = 4
    key_fanout: int = 4
    value_skew: float = 0.0
    # Traffic
    requests: int = 200
    tenants: int = 8
    zipf: float = 1.1
    template_zipf: float = 1.0
    templates: int = 8
    arrival: str = "closed"
    drift_at: Tuple[float, ...] = ()
    # Serving stack
    shards: int = 4
    executor: str = "row"
    strategy: str = "marginal-greedy"
    workers: int = 4
    # Multi-query optimization cost grows superlinearly in batch size
    # (covering-subsumption search); 4 keeps sharing live without the
    # optimizer dominating every latency percentile.
    max_batch_size: int = 4
    adaptive: bool = False
    spill_dir: Optional[str] = None
    route_by_tenant: bool = False
    # Correctness
    oracle: Tuple[str, ...] = ("row",)
    oracle_sample: float = 0.1
    # Seeds: one for the data, one for the traffic, so traffic can be
    # varied over fixed data (and vice versa).
    seed: int = 0
    traffic_seed: Optional[int] = None

    def __post_init__(self):
        for fraction in self.drift_at:
            if not 0.0 < fraction < 1.0:
                raise ValueError("drift fractions must be strictly within (0, 1)")
        if self.shards < 1:
            raise ValueError("shards must be positive")
        parse_arrival(self.arrival)  # fail at config build, not mid-run

    def label(self) -> str:
        return (
            f"{self.workload}-x{self.scale:g}-shards{self.shards}-{self.executor}"
            f"-{self.arrival.replace(':', '_')}"
        )

    def scale_spec(self) -> ScaleSpec:
        return ScaleSpec(
            scale=self.scale,
            n_dimensions=self.n_dimensions,
            key_fanout=self.key_fanout,
            value_skew=self.value_skew,
        )

    def traffic_spec(self) -> TrafficSpec:
        return TrafficSpec(
            requests=self.requests,
            tenants=self.tenants,
            zipf=self.zipf,
            template_zipf=self.template_zipf,
            arrival=self.arrival,
            oracle_sample=self.oracle_sample,
            seed=self.seed if self.traffic_seed is None else self.traffic_seed,
        )

    def with_overrides(self, **overrides) -> "HarnessConfig":
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


@dataclass
class DriveResult:
    """What one driven segment (or run) produced."""

    completed: int = 0
    wall_seconds: float = 0.0
    started_at: float = 0.0
    last_done_at: float = 0.0
    #: Rows of every oracle-sampled request, keyed by request index.
    sampled_rows: Dict[int, Optional[List[Row]]] = field(default_factory=dict)


@dataclass
class SettingReport:
    """The measured outcome of one setting — everything the CSV/JSON carry."""

    label: str
    config: Dict[str, object]
    requests: int
    completed: int
    wall_seconds: float
    throughput_rps: float
    latency: Dict[str, Dict[str, object]]
    counters: Dict[str, Dict[str, int]]
    shard_batches_served: List[int]
    oracle: Dict[str, object]
    drift_steps_applied: int
    sampled_rows_digest: str
    #: In-memory only (benchmarks compare rows across settings); never
    #: serialized — a report must stay cheap to write and diff.
    sampled_rows: Dict[int, Optional[List[Row]]] = field(default_factory=dict, repr=False)

    @property
    def oracle_mismatches(self) -> int:
        return int(self.oracle.get("mismatches", 0))

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "config": self.config,
            "requests": self.requests,
            "completed": self.completed,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency,
            "counters": self.counters,
            "shard_batches_served": self.shard_batches_served,
            "oracle": self.oracle,
            "drift_steps_applied": self.drift_steps_applied,
            "sampled_rows_digest": self.sampled_rows_digest,
        }


def drive_requests(
    scheduler: BatchScheduler,
    requests: Sequence[Request],
    *,
    obs: Observability,
    strategy: str = "marginal-greedy",
    open_loop: bool = True,
    route_by_tenant: bool = False,
    run_started: Optional[float] = None,
) -> DriveResult:
    """Submit requests (open-loop: each at its arrival offset) and wait.

    Latency is measured from the request's *scheduled* arrival when
    open-loop (so queueing caused by a saturated system is charged to the
    system, not hidden — no coordinated omission), from the actual submit
    otherwise, and recorded into the ``harness_request_seconds`` histogram
    of ``obs``.  Returns once every submitted future resolved.
    """
    started = time.monotonic() if run_started is None else run_started
    lock = threading.Lock()
    last_done = [started]
    pending = []
    for request in requests:
        if open_loop:
            delay = started + request.arrival - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        # Open-loop latency runs from the *scheduled* arrival, so queueing
        # inside a saturated serving stack is charged to the stack (no
        # coordinated omission) — but never from before the submit loop
        # itself reached the request (a drift pause between segments delays
        # submission, and the stack cannot owe time for work it was never
        # handed).
        reference = (
            max(started + request.arrival, time.monotonic())
            if open_loop
            else time.monotonic()
        )
        future = scheduler.submit(
            request.query,
            strategy=strategy,
            execute=True,
            tenant=request.tenant if route_by_tenant else None,
        )

        def on_done(f, reference=reference):
            now = time.monotonic()
            with lock:
                if now > last_done[0]:
                    last_done[0] = now
            if f.cancelled() or f.exception() is not None:
                return
            obs.observe_latency("harness_request_seconds", now - reference)

        future.add_done_callback(on_done)
        pending.append((request, future))

    result = DriveResult(started_at=started)
    for request, future in pending:
        outcome = future.result(timeout=600)
        result.completed += 1
        if request.oracle:
            result.sampled_rows[request.index] = outcome.rows
    result.last_done_at = last_done[0]
    result.wall_seconds = max(last_done[0] - started, 1e-9)
    return result


def _segments(
    requests: Sequence[Request], drift_at: Sequence[float]
) -> List[Sequence[Request]]:
    """Split the request list at the drift fractions (of request count)."""
    cuts = sorted({max(1, min(len(requests) - 1, int(round(f * len(requests))))) for f in drift_at})
    out: List[Sequence[Request]] = []
    previous = 0
    for cut in cuts:
        if cut > previous:
            out.append(requests[previous:cut])
            previous = cut
    out.append(requests[previous:])
    return out


def _merged_percentiles(obs: Observability, name: str) -> Optional[Dict[str, object]]:
    snapshots = list(obs.registry.histogram_snapshots(name).values())
    if not snapshots:
        return None
    merged = HistogramSnapshot.merge(snapshots)
    return {
        "count": merged.count,
        "mean": merged.mean,
        "p50": merged.p50,
        "p95": merged.p95,
        "p99": merged.p99,
    }


def _counter_groups(pool: SessionPool) -> Dict[str, Dict[str, int]]:
    """Session + cache (+ spill) + feedback counters, schema-stable.

    Every field of every group is always present — a non-spilling,
    non-adaptive run reports zeros, not missing columns — so CSVs from
    different settings stay union-compatible.
    """
    cache = {name: 0 for name in SpillStatistics.field_names()}
    cache.update(pool.matcache_statistics().as_dict())
    feedback = {name: 0 for name in FeedbackStatistics.field_names()}
    if pool.feedback is not None:
        feedback.update(pool.feedback.statistics_snapshot())
    return {
        "session": pool.statistics().as_dict(),
        "cache": cache,
        "feedback": feedback,
    }


def _rows_digest(sampled: Dict[int, Optional[List[Row]]]) -> str:
    """A stable digest of the sampled rows, for cross-setting bit-identity.

    Two settings that served the same traffic must produce equal digests —
    the cheap way for a benchmark matrix to assert "sharding (or a backend
    swap within the exact-order family) never changed the answers" without
    holding every row set in the report.
    """
    digest = hashlib.sha256()
    for index in sorted(sampled):
        rows = sampled[index]
        digest.update(b"%d:" % index)
        payload = "<missing>" if rows is None else repr(rows)
        digest.update(payload.encode("utf-8"))
        digest.update(b";")
    return digest.hexdigest()


def run_setting(
    config: HarnessConfig,
    *,
    traffic: Optional[Sequence[Request]] = None,
    obs: Optional[Observability] = None,
) -> SettingReport:
    """Build the world, drive the traffic, measure, verify, report.

    ``traffic`` may be injected to replay the *identical* request list
    across settings (the benchmark matrix does); by default it is generated
    from the config's seeds.  A fresh :class:`~repro.obs.Observability`
    registry is created per setting unless one is passed, so settings never
    bleed histograms into each other.
    """
    if traffic is None:
        templates = templates_for(
            config.workload,
            count=config.templates,
            n_dimensions=config.n_dimensions,
            seed=config.seed,
        )
        traffic = generate_traffic(templates, config.traffic_spec())
    segments = _segments(traffic, config.drift_at)
    world = build_world(
        config.scale_spec(),
        config.workload,
        seed=config.seed,
        max_drift_steps=len(segments) - 1,
    )
    obs = obs if obs is not None else Observability()
    pool = SessionPool(
        world.catalog,
        shards=config.shards,
        database=world.database,
        executor=config.executor,
        adaptive=config.adaptive or None,
        spill_dir=config.spill_dir,
        obs=obs,
    )
    oracle = (
        CorrectnessOracle(
            world.catalog,
            world.database,
            serving_backend=config.executor,
            backends=tuple(config.oracle),
            strategy=config.strategy,
        )
        if config.oracle
        else None
    )
    open_loop = not config.arrival.startswith("closed")
    total = DriveResult()
    with BatchScheduler(
        pool,
        workers=config.workers,
        max_batch_size=config.max_batch_size,
        strategy=config.strategy,
    ) as scheduler:
        clock = time.monotonic()
        for index, segment in enumerate(segments):
            outcome = drive_requests(
                scheduler,
                segment,
                obs=obs,
                strategy=config.strategy,
                open_loop=open_loop,
                route_by_tenant=config.route_by_tenant,
                run_started=clock if open_loop else None,
            )
            # Drain before verifying or drifting: the oracle must replay
            # against the data version that produced these rows.
            scheduler.flush(timeout=600)
            if oracle is not None:
                for request in segment:
                    if request.oracle:
                        oracle.verify(request, outcome.sampled_rows.get(request.index))
            total.completed += outcome.completed
            total.sampled_rows.update(outcome.sampled_rows)
            if open_loop:
                # Segments share one absolute clock; total wall is the
                # span from run start to the latest completion so far.
                total.wall_seconds = max(
                    total.wall_seconds, outcome.last_done_at - clock, 1e-9
                )
            else:
                # Closed-loop segments each measure their own span, so
                # summing them excludes the drift pauses in between.
                total.wall_seconds += outcome.wall_seconds
            if index < len(segments) - 1:
                world.inject_drift()
                # Open-loop arrivals keep their absolute schedule; the
                # drift step's wall time eats into the next segment's
                # slack rather than shifting every deadline.
    latency = {}
    for key, series in LATENCY_SERIES:
        percentiles = _merged_percentiles(obs, series)
        if percentiles is not None:
            latency[key] = percentiles
    return SettingReport(
        label=config.label(),
        config=config.as_dict(),
        requests=len(traffic),
        completed=total.completed,
        wall_seconds=total.wall_seconds,
        throughput_rps=total.completed / total.wall_seconds,
        latency=latency,
        counters=_counter_groups(pool),
        shard_batches_served=[s.batches_served for s in pool.shard_statistics()],
        oracle=oracle.report() if oracle is not None else {"backends": [], "checked": 0, "mismatches": 0, "mismatch_details": []},
        drift_steps_applied=world.drift_steps_applied,
        sampled_rows_digest=_rows_digest(total.sampled_rows),
        sampled_rows=total.sampled_rows,
    )
