"""Empirical verification of Theorem 1 on the hardness-style instances.

The paper proves that MarginalGreedy achieves
``f(X) ≥ [1 − (c(Θ)/f(Θ)) ln(1 + f(Θ)/c(Θ))] · f(Θ)`` and that no
polynomial algorithm can do better (Theorem 2, via Profitted Max Coverage).
This experiment measures, on random Profitted Max Coverage instances and on
random weighted-coverage UNSM instances, how close MarginalGreedy actually
gets to the exhaustive optimum and how much slack the Theorem-1 bound
leaves.  The paper has no corresponding figure (the result is a proof); the
table here is the empirical counterpart used to validate the
implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.coverage import ProfittedMaxCoverage, perfect_cover_instance, random_instance
from ..core.exhaustive import maximize
from ..core.marginal_greedy import marginal_greedy, theorem1_bound, theorem1_factor
from .reporting import ResultTable

__all__ = ["TheoryRow", "TheoryResults", "run_theory_experiment"]


@dataclass(frozen=True)
class TheoryRow:
    """One instance: the optimum, the greedy value and the Theorem-1 bound."""

    instance: str
    n_subsets: int
    gamma: float
    optimum: float
    greedy_value: float
    theorem1_guarantee: float

    @property
    def achieved_ratio(self) -> float:
        if self.optimum <= 0:
            return 1.0
        return self.greedy_value / self.optimum

    @property
    def bound_ratio(self) -> float:
        if self.optimum <= 0:
            return 0.0
        return self.theorem1_guarantee / self.optimum

    @property
    def bound_satisfied(self) -> bool:
        return self.greedy_value >= self.theorem1_guarantee - 1e-9


@dataclass
class TheoryResults:
    rows: List[TheoryRow] = field(default_factory=list)

    @property
    def all_bounds_satisfied(self) -> bool:
        return all(row.bound_satisfied for row in self.rows)

    @property
    def mean_achieved_ratio(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.achieved_ratio for r in self.rows) / len(self.rows)

    def table(self) -> ResultTable:
        table = ResultTable(
            "Theorem 1 — MarginalGreedy vs optimum on Profitted Max Coverage",
            [
                "instance",
                "m",
                "gamma",
                "optimum f(Θ)",
                "greedy f(X)",
                "Thm-1 guarantee",
                "achieved/opt",
                "bound ok",
            ],
        )
        for row in self.rows:
            table.add_row(
                row.instance,
                row.n_subsets,
                round(row.gamma, 3),
                round(row.optimum, 4),
                round(row.greedy_value, 4),
                round(row.theorem1_guarantee, 4),
                round(row.achieved_ratio, 4),
                "yes" if row.bound_satisfied else "NO",
            )
        table.notes = (
            "greedy f(X) must always be at least the Theorem-1 guarantee; the "
            "achieved ratio shows how much slack the worst-case bound leaves."
        )
        return table


def run_theory_experiment(
    *,
    n_random_instances: int = 10,
    n_perfect_instances: int = 5,
    seed: int = 7,
    gammas: Sequence[float] = (1.0, 2.0, 4.0),
) -> TheoryResults:
    """Run MarginalGreedy on random hardness-style instances and check Theorem 1."""
    rng = random.Random(seed)
    results = TheoryResults()

    def measure(label: str, problem: ProfittedMaxCoverage) -> None:
        decomposition = problem.decomposition()
        optimum = maximize(decomposition.original)
        greedy = marginal_greedy(decomposition)
        c_opt = decomposition.cost.value(optimum.best_set)
        guarantee = theorem1_bound(max(optimum.best_value, 0.0), c_opt)
        results.rows.append(
            TheoryRow(
                instance=label,
                n_subsets=problem.instance.n_subsets,
                gamma=problem.gamma,
                optimum=optimum.best_value,
                greedy_value=greedy.value,
                theorem1_guarantee=guarantee,
            )
        )

    for i in range(n_random_instances):
        gamma = gammas[i % len(gammas)]
        instance = random_instance(
            n_elements=rng.randint(10, 16),
            n_subsets=rng.randint(5, 9),
            budget=rng.randint(2, 4),
            density=rng.uniform(0.2, 0.5),
            seed=rng.randint(0, 10_000),
        )
        measure(f"random-{i}", ProfittedMaxCoverage(instance, gamma=gamma))

    for i in range(n_perfect_instances):
        gamma = gammas[i % len(gammas)]
        instance = perfect_cover_instance(
            n_elements=12,
            cover_size=3,
            n_decoys=rng.randint(2, 5),
            seed=rng.randint(0, 10_000),
        )
        measure(f"perfect-{i}", ProfittedMaxCoverage(instance, gamma=gamma))

    return results
