"""Set functions and the structural properties used throughout the paper.

The MQO reformulation of Kathuria & Sudarshan treats the materialization
benefit ``mb(S) = bestCost(∅) − bestCost(S)`` as a *normalized submodular*
set function that may take negative values.  Everything in
:mod:`repro.core` is written against the small abstraction in this module:
a :class:`SetFunction` is a real-valued function on subsets of a finite
universe, and the algorithms only ever interact with it through
:meth:`SetFunction.value` and :meth:`SetFunction.marginal`.

The module also provides exhaustive property checkers (submodularity,
supermodularity, monotonicity, additivity, normalization) used by the test
suite and by the property-based tests, plus a handful of concrete function
families (additive, tabular, callable-backed) and wrappers (caching,
call-counting, scaling, restriction).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping
from typing import Callable, Dict, FrozenSet, Hashable, Iterator, Optional, Tuple

Element = Hashable
Subset = FrozenSet[Element]

__all__ = [
    "Element",
    "Subset",
    "SetFunction",
    "TabularSetFunction",
    "AdditiveFunction",
    "LambdaSetFunction",
    "CachedSetFunction",
    "CallCountingFunction",
    "ScaledFunction",
    "ShiftedFunction",
    "SumFunction",
    "DifferenceFunction",
    "RestrictedFunction",
    "all_subsets",
    "as_frozenset",
]


def as_frozenset(items: Iterable[Element]) -> Subset:
    """Return ``items`` as a :class:`frozenset` (identity for frozensets)."""
    if isinstance(items, frozenset):
        return items
    return frozenset(items)


def all_subsets(universe: Iterable[Element]) -> Iterator[Subset]:
    """Yield every subset of ``universe`` (the empty set first).

    Only intended for small universes (exhaustive checks, brute-force
    optima); the number of subsets is ``2**len(universe)``.
    """
    elements = sorted(universe, key=repr)
    for size in range(len(elements) + 1):
        for combo in itertools.combinations(elements, size):
            yield frozenset(combo)


class SetFunction(ABC):
    """A real-valued function ``f : 2^U -> R`` over a finite universe ``U``.

    Subclasses implement :meth:`value`; everything else (marginals,
    property checks, algebra) is derived.  Instances are expected to be
    immutable once constructed.
    """

    @property
    @abstractmethod
    def universe(self) -> Subset:
        """The ground set the function is defined over."""

    @abstractmethod
    def value(self, subset: Iterable[Element]) -> float:
        """Return ``f(subset)``."""

    # -- convenience ----------------------------------------------------

    def __call__(self, subset: Iterable[Element]) -> float:
        return self.value(subset)

    def __len__(self) -> int:
        return len(self.universe)

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        """Return ``f(S ∪ {e}) − f(S)`` (the paper's ``f'(e, S)``)."""
        base = as_frozenset(subset)
        if element in base:
            return 0.0
        return self.value(base | {element}) - self.value(base)

    def gain(self, addition: Iterable[Element], subset: Iterable[Element]) -> float:
        """Return ``f(S ∪ E) − f(S)`` (the paper's ``Δf(E, S)``)."""
        base = as_frozenset(subset)
        extra = as_frozenset(addition)
        return self.value(base | extra) - self.value(base)

    # -- structural property checks (exhaustive; small universes only) ---

    def is_normalized(self, *, tol: float = 1e-9) -> bool:
        """``f(∅) == 0`` up to ``tol``."""
        return abs(self.value(frozenset())) <= tol

    def is_monotone(self, *, tol: float = 1e-9) -> bool:
        """``f(A) <= f(B)`` whenever ``A ⊆ B`` (checked via single-element steps)."""
        for subset in all_subsets(self.universe):
            for element in self.universe - subset:
                if self.marginal(element, subset) < -tol:
                    return False
        return True

    def is_submodular(self, *, tol: float = 1e-9) -> bool:
        """Diminishing returns: ``f'(e, A) >= f'(e, B)`` for ``A ⊆ B``, ``e ∉ B``.

        Uses the equivalent pairwise characterisation
        ``f(S∪{a}) + f(S∪{b}) >= f(S∪{a,b}) + f(S)``.
        """
        universe = sorted(self.universe, key=repr)
        for subset in all_subsets(self.universe):
            remaining = [e for e in universe if e not in subset]
            for a, b in itertools.combinations(remaining, 2):
                lhs = self.value(subset | {a}) + self.value(subset | {b})
                rhs = self.value(subset | {a, b}) + self.value(subset)
                if lhs + tol < rhs:
                    return False
        return True

    def is_supermodular(self, *, tol: float = 1e-9) -> bool:
        """``f`` is supermodular iff ``-f`` is submodular."""
        return ScaledFunction(self, -1.0).is_submodular(tol=tol)

    def is_additive(self, *, tol: float = 1e-9) -> bool:
        """``f(S) == Σ_{e∈S} f({e})`` for every subset ``S``."""
        singles = {e: self.value(frozenset({e})) for e in self.universe}
        for subset in all_subsets(self.universe):
            expected = sum(singles[e] for e in subset)
            if abs(self.value(subset) - expected) > tol:
                return False
        return True

    # -- algebra ---------------------------------------------------------

    def scaled(self, factor: float) -> "ScaledFunction":
        return ScaledFunction(self, factor)

    def shifted(self, offset: float) -> "ShiftedFunction":
        return ShiftedFunction(self, offset)

    def __add__(self, other: "SetFunction") -> "SumFunction":
        return SumFunction(self, other)

    def __sub__(self, other: "SetFunction") -> "DifferenceFunction":
        return DifferenceFunction(self, other)

    def restricted(self, universe: Iterable[Element]) -> "RestrictedFunction":
        return RestrictedFunction(self, universe)

    def cached(self) -> "CachedSetFunction":
        return CachedSetFunction(self)

    def counting(self) -> "CallCountingFunction":
        return CallCountingFunction(self)

    def tabulate(self) -> "TabularSetFunction":
        """Materialise the function as an explicit table (small universes)."""
        table = {subset: self.value(subset) for subset in all_subsets(self.universe)}
        return TabularSetFunction(self.universe, table)


class TabularSetFunction(SetFunction):
    """A set function defined by an explicit table of subset values.

    Missing subsets raise :class:`KeyError`; the table therefore has to be
    complete for the algorithms that touch arbitrary subsets.  Mostly used
    by tests and by :meth:`SetFunction.tabulate`.
    """

    def __init__(self, universe: Iterable[Element], table: Mapping[Subset, float]):
        self._universe = as_frozenset(universe)
        self._table: Dict[Subset, float] = {as_frozenset(k): float(v) for k, v in table.items()}

    @property
    def universe(self) -> Subset:
        return self._universe

    def value(self, subset: Iterable[Element]) -> float:
        key = as_frozenset(subset)
        if not key <= self._universe:
            raise ValueError(f"subset {set(key)!r} is not contained in the universe")
        return self._table[key]

    @classmethod
    def from_function(
        cls, universe: Iterable[Element], func: Callable[[Subset], float]
    ) -> "TabularSetFunction":
        universe = as_frozenset(universe)
        return cls(universe, {s: func(s) for s in all_subsets(universe)})


class AdditiveFunction(SetFunction):
    """An additive (modular) function ``c(S) = Σ_{e∈S} w(e)``."""

    def __init__(self, weights: Mapping[Element, float]):
        self._weights: Dict[Element, float] = dict(weights)
        self._universe = frozenset(self._weights)

    @property
    def universe(self) -> Subset:
        return self._universe

    @property
    def weights(self) -> Dict[Element, float]:
        return dict(self._weights)

    def weight(self, element: Element) -> float:
        return self._weights[element]

    def value(self, subset: Iterable[Element]) -> float:
        return float(sum(self._weights[e] for e in as_frozenset(subset)))

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        if element in as_frozenset(subset):
            return 0.0
        return self._weights[element]


class LambdaSetFunction(SetFunction):
    """Wrap an arbitrary callable ``func(frozenset) -> float`` as a set function."""

    def __init__(self, universe: Iterable[Element], func: Callable[[Subset], float]):
        self._universe = as_frozenset(universe)
        self._func = func

    @property
    def universe(self) -> Subset:
        return self._universe

    def value(self, subset: Iterable[Element]) -> float:
        return float(self._func(as_frozenset(subset)))


class CachedSetFunction(SetFunction):
    """Memoize values of an underlying (possibly expensive) set function."""

    def __init__(self, inner: SetFunction):
        self._inner = inner
        self._cache: Dict[Subset, float] = {}

    @property
    def universe(self) -> Subset:
        return self._inner.universe

    @property
    def inner(self) -> SetFunction:
        return self._inner

    def value(self, subset: Iterable[Element]) -> float:
        key = as_frozenset(subset)
        if key not in self._cache:
            self._cache[key] = self._inner.value(key)
        return self._cache[key]

    @property
    def cache_size(self) -> int:
        return len(self._cache)


class CallCountingFunction(SetFunction):
    """Count the number of oracle evaluations made on the wrapped function.

    The paper measures algorithm efficiency in the number of ``bestCost``
    invocations; the ablation benchmarks use this wrapper to report that
    number for the lazy and non-lazy greedy variants.
    """

    def __init__(self, inner: SetFunction):
        self._inner = inner
        self.calls = 0

    @property
    def universe(self) -> Subset:
        return self._inner.universe

    @property
    def inner(self) -> SetFunction:
        return self._inner

    def value(self, subset: Iterable[Element]) -> float:
        self.calls += 1
        return self._inner.value(subset)

    def reset(self) -> None:
        self.calls = 0


class ScaledFunction(SetFunction):
    """``(a · f)(S) = a * f(S)``."""

    def __init__(self, inner: SetFunction, factor: float):
        self._inner = inner
        self._factor = float(factor)

    @property
    def universe(self) -> Subset:
        return self._inner.universe

    def value(self, subset: Iterable[Element]) -> float:
        return self._factor * self._inner.value(subset)


class ShiftedFunction(SetFunction):
    """``(f + b)(S) = f(S) + b`` — note this breaks normalization for ``b != 0``."""

    def __init__(self, inner: SetFunction, offset: float):
        self._inner = inner
        self._offset = float(offset)

    @property
    def universe(self) -> Subset:
        return self._inner.universe

    def value(self, subset: Iterable[Element]) -> float:
        return self._inner.value(subset) + self._offset


class SumFunction(SetFunction):
    """Pointwise sum of two set functions over the same universe."""

    def __init__(self, left: SetFunction, right: SetFunction):
        if left.universe != right.universe:
            raise ValueError("cannot add set functions over different universes")
        self._left = left
        self._right = right

    @property
    def universe(self) -> Subset:
        return self._left.universe

    def value(self, subset: Iterable[Element]) -> float:
        key = as_frozenset(subset)
        return self._left.value(key) + self._right.value(key)


class DifferenceFunction(SetFunction):
    """Pointwise difference ``f − g`` of two set functions over the same universe."""

    def __init__(self, left: SetFunction, right: SetFunction):
        if left.universe != right.universe:
            raise ValueError("cannot subtract set functions over different universes")
        self._left = left
        self._right = right

    @property
    def universe(self) -> Subset:
        return self._left.universe

    def value(self, subset: Iterable[Element]) -> float:
        key = as_frozenset(subset)
        return self._left.value(key) - self._right.value(key)


class RestrictedFunction(SetFunction):
    """Restriction of a set function to a sub-universe.

    Used by the Theorem-4 universe-reduction step: the greedy algorithm is
    re-run on the pruned ground set while evaluating the original function.
    """

    def __init__(self, inner: SetFunction, universe: Iterable[Element]):
        sub = as_frozenset(universe)
        if not sub <= inner.universe:
            raise ValueError("restricted universe must be a subset of the original universe")
        self._inner = inner
        self._universe = sub

    @property
    def universe(self) -> Subset:
        return self._universe

    def value(self, subset: Iterable[Element]) -> float:
        key = as_frozenset(subset)
        if not key <= self._universe:
            raise ValueError("subset escapes the restricted universe")
        return self._inner.value(key)
