"""Must-pass fixture for ``lock-discipline``: every sanctioned escape hatch.

Never imported; the checker tests lint this file's source and assert zero
findings.
"""

import queue
import threading


class DisciplinedCache:
    # Intrinsically thread-safe members: the queue does its own locking.
    _LOCK_FREE = ("_queue",)

    def __init__(self):
        self._lock = threading.RLock()
        self._entries = {}
        self._queue = queue.Queue()

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        with self._lock:
            return self._entries.get(key)

    def enqueue(self, item):
        self._queue.put(item)  # allowlisted via _LOCK_FREE

    def _evict_locked(self, key):
        # *_locked convention: only ever called with the lock already held.
        self._entries.pop(key, None)

    def snapshot(self):
        with self._lock:
            return dict(self._entries)


class NoLockClass:
    """No lock attribute at all: the checker must stay silent."""

    def __init__(self):
        self._state = {}

    def read(self):
        return self._state
