"""Unit tests for the set-function abstractions."""

import math

import pytest

from repro.core.set_functions import (
    AdditiveFunction,
    CachedSetFunction,
    CallCountingFunction,
    LambdaSetFunction,
    RestrictedFunction,
    ScaledFunction,
    ShiftedFunction,
    TabularSetFunction,
    all_subsets,
    as_frozenset,
)


def coverage_like():
    """A small monotone submodular function: weighted coverage of {1,2,3}."""
    sets = {"a": frozenset({1, 2}), "b": frozenset({2, 3}), "c": frozenset({3})}
    return LambdaSetFunction(
        sets.keys(), lambda s: float(len(frozenset().union(*(sets[e] for e in s)) if s else frozenset()))
    )


class TestHelpers:
    def test_as_frozenset_identity(self):
        fs = frozenset({1, 2})
        assert as_frozenset(fs) is fs

    def test_as_frozenset_from_list(self):
        assert as_frozenset([1, 2, 2]) == frozenset({1, 2})

    def test_all_subsets_count(self):
        subsets = list(all_subsets({1, 2, 3}))
        assert len(subsets) == 8
        assert subsets[0] == frozenset()
        assert frozenset({1, 2, 3}) in subsets

    def test_all_subsets_empty_universe(self):
        assert list(all_subsets(set())) == [frozenset()]


class TestAdditiveFunction:
    def test_value_and_marginal(self):
        fn = AdditiveFunction({"x": 2.0, "y": -1.0, "z": 0.5})
        assert fn.value({"x", "y"}) == pytest.approx(1.0)
        assert fn.marginal("z", {"x"}) == pytest.approx(0.5)
        assert fn.marginal("x", {"x"}) == 0.0

    def test_is_additive_and_submodular(self):
        fn = AdditiveFunction({"x": 2.0, "y": -1.0})
        assert fn.is_additive()
        assert fn.is_submodular()
        assert fn.is_supermodular()
        assert fn.is_normalized()

    def test_monotone_only_with_nonnegative_weights(self):
        assert AdditiveFunction({"x": 1.0, "y": 0.0}).is_monotone()
        assert not AdditiveFunction({"x": 1.0, "y": -2.0}).is_monotone()

    def test_weights_copy(self):
        fn = AdditiveFunction({"x": 1.0})
        weights = fn.weights
        weights["x"] = 5.0
        assert fn.weight("x") == 1.0


class TestTabularSetFunction:
    def test_from_function_roundtrip(self):
        base = coverage_like()
        table = TabularSetFunction.from_function(base.universe, base.value)
        for subset in all_subsets(base.universe):
            assert table.value(subset) == base.value(subset)

    def test_rejects_foreign_elements(self):
        fn = TabularSetFunction({"a"}, {frozenset(): 0.0, frozenset({"a"}): 1.0})
        with pytest.raises(ValueError):
            fn.value({"zzz"})

    def test_tabulate_matches(self):
        base = coverage_like()
        tab = base.tabulate()
        assert tab.value({"a", "b"}) == base.value({"a", "b"})


class TestPropertyChecks:
    def test_coverage_is_monotone_submodular(self):
        fn = coverage_like()
        assert fn.is_monotone()
        assert fn.is_submodular()
        assert fn.is_normalized()
        assert not fn.is_additive()

    def test_supermodular_example(self):
        # f(S) = |S|^2 is supermodular but not submodular.
        fn = LambdaSetFunction({1, 2, 3}, lambda s: float(len(s) ** 2))
        assert fn.is_supermodular()
        assert not fn.is_submodular()

    def test_shifted_breaks_normalization(self):
        fn = coverage_like().shifted(1.0)
        assert not fn.is_normalized()
        assert isinstance(fn, ShiftedFunction)

    def test_scaled_negates_submodularity(self):
        fn = ScaledFunction(coverage_like(), -1.0)
        assert fn.is_supermodular()


class TestWrappers:
    def test_cached_function_counts_once(self):
        counter = CallCountingFunction(coverage_like())
        cached = CachedSetFunction(counter)
        for _ in range(5):
            cached.value({"a", "b"})
        assert counter.calls == 1
        assert cached.cache_size == 1
        assert cached.inner is counter

    def test_call_counting_reset(self):
        counter = coverage_like().counting()
        counter.value({"a"})
        counter.value({"b"})
        assert counter.calls == 2
        counter.reset()
        assert counter.calls == 0

    def test_sum_and_difference(self):
        f = coverage_like()
        g = AdditiveFunction({e: 1.0 for e in f.universe})
        assert (f + g).value({"a"}) == pytest.approx(f.value({"a"}) + 1.0)
        assert (f - g).value({"a"}) == pytest.approx(f.value({"a"}) - 1.0)

    def test_mismatched_universes_rejected(self):
        f = coverage_like()
        g = AdditiveFunction({"only": 1.0})
        with pytest.raises(ValueError):
            _ = f + g
        with pytest.raises(ValueError):
            _ = f - g

    def test_restricted_function(self):
        f = coverage_like()
        r = RestrictedFunction(f, {"a", "b"})
        assert r.universe == frozenset({"a", "b"})
        assert r.value({"a"}) == f.value({"a"})
        with pytest.raises(ValueError):
            r.value({"c"})
        with pytest.raises(ValueError):
            RestrictedFunction(f, {"not-there"})

    def test_marginal_of_member_is_zero(self):
        f = coverage_like()
        assert f.marginal("a", {"a", "b"}) == 0.0

    def test_gain(self):
        f = coverage_like()
        assert f.gain({"a", "b"}, frozenset()) == pytest.approx(f.value({"a", "b"}))

    def test_len(self):
        assert len(coverage_like()) == 3
