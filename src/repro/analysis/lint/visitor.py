"""The checker framework: module context, visitor base class, registry.

A checker is a small class with an ``id``, a one-line ``rationale`` (the
catalog entry the CLI lists) and a ``check(module)`` generator producing
:class:`~repro.analysis.lint.findings.Finding` objects.  Most checkers
subclass :class:`LintVisitor`, an :class:`ast.NodeVisitor` that carries the
module context and a ``flag(node, message)`` helper, so a checker is just
"visit the nodes you care about, flag the bad ones".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Type

from .findings import Finding

__all__ = [
    "CHECKERS",
    "Checker",
    "LintVisitor",
    "ModuleContext",
    "register_checker",
]


@dataclass
class ModuleContext:
    """One parsed module, as every checker sees it."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree, lines=source.splitlines())


class Checker:
    """Base class of every lint checker.

    Subclasses set :attr:`id` (the stable kebab-case name suppressions and
    ``--select`` use) and :attr:`rationale` (one line: what bug class this
    catches and why it matters here), and implement :meth:`check`.
    """

    #: Stable checker id (kebab-case); what ``disable=`` comments name.
    id: str = ""
    #: One-line catalog entry: the bug class and why this repo checks for it.
    rationale: str = ""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            checker=self.id,
            message=message,
        )


class LintVisitor(ast.NodeVisitor, Checker):
    """A checker that walks the module tree and collects flags.

    ``check`` instantiates nothing per node: it resets the finding buffer,
    visits the tree, and yields what :meth:`flag` collected.  Stateful
    checkers keep their per-module state on ``self`` and reset it in
    :meth:`begin_module`.
    """

    def begin_module(self, module: ModuleContext) -> None:
        """Hook to reset per-module state before the walk."""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        self.module = module
        self.findings: List[Finding] = []
        self.begin_module(module)
        self.visit(module.tree)
        yield from self.findings

    def flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.finding(self.module, node, message))


#: Every registered checker class, by id (populated by @register_checker).
CHECKERS: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.id:
        raise ValueError(f"checker {cls.__name__} has no id")
    if cls.id in CHECKERS:
        raise ValueError(f"duplicate checker id {cls.id!r}")
    CHECKERS[cls.id] = cls
    return cls
