"""The two-level (hot RAM / warm disk) materialization cache.

:class:`SpillingMaterializationCache` extends the serving layer's in-memory
:class:`~repro.service.matcache.MaterializationCache` with a disk tier
under the **same** keys and invalidation rules:

* the hot tier is the unchanged memory cache — byte accounting,
  policy-driven admission and eviction, token invalidation;
* a victim the hot tier evicts is **spilled** to a per-entry file in
  ``spill_dir`` (atomically: temp file + ``os.replace``), named by a stable
  hash of its ``cache_key(signature, order)`` and stamped with the
  data-version token it was filled under;
* a :meth:`get` that misses the hot tier **faults** the entry back in from
  disk — verifying the file's checksum, key and token first — and promotes
  it, so hot working sets migrate back to RAM on their own;
* a token change (data changed) or :meth:`invalidate` drops **both** tiers;
  a spill file whose stored token no longer matches the cache's is deleted
  on contact and served as a clean miss — exactly how the memory tier
  rejects stale fills today;
* a corrupt, truncated or mis-keyed spill file (a crash mid-write, a
  damaged disk) is likewise deleted and served as a miss: recovery can
  degrade to recomputation but can never return wrong rows or crash.

Because entries are keyed by semantic fingerprint (never memo group id) and
the token is content-derived (:meth:`~repro.execution.data.Database.fingerprint`),
a spill directory outlives the process: a restarted session pointed at the
same directory re-indexes the files (:attr:`SpillStatistics.recovered`) and
serves them without re-materializing anything — the restart differential
tests prove rows and plan costs are bit-identical.

All disk operations happen under the cache's lock; files are only ever
written complete-then-renamed, so readers never observe a partial file.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..analysis.sanitizer import record_io
from ..obs import Observability, metric_field
from ..service.matcache import (
    CacheKey,
    CacheStatistics,
    MaterializationCache,
    Row,
    _Entry,
    estimate_rows_bytes,
)
from .codec import (
    SpillError,
    read_spill_batch,
    read_spill_file,
    read_spill_header,
    wire_token,
    write_spill_file,
)

__all__ = ["SpillConfig", "SpillStatistics", "SpillingMaterializationCache"]

#: Suffix of every spill file the cache manages.
SPILL_SUFFIX = ".spill"


class SpillStatistics(CacheStatistics):
    """Memory-tier counters plus the disk tier's spill/fault/recovery story.

    Like the base class, a live registry view: the inherited fields *are*
    the same ``matcache_*`` counter series (constructed over the same
    registry the hot tier's view uses), the disk-tier fields add their own.
    """

    spills = metric_field()
    spill_bytes_written = metric_field()
    spill_errors = metric_field()
    faults = metric_field()
    recovered = metric_field()
    stale_files_dropped = metric_field()
    corrupt_files_dropped = metric_field()
    disk_evictions = metric_field()


@dataclass(frozen=True)
class SpillConfig:
    """Sizing knobs for a two-level cache (RAM budget and disk budget)."""

    max_bytes: int = 64 * 1024 * 1024
    max_entries: int = 256
    max_disk_bytes: int = 1024 * 1024 * 1024
    max_disk_entries: int = 8192
    #: On-disk payload layout for *newly written* spill files: ``"rows"``
    #: (format 1) or ``"columnar"`` (format 2).  Reading accepts both
    #: regardless, so the knob can be flipped over a live spill directory.
    layout: str = "rows"


@dataclass
class _DiskEntry:
    path: Path
    file_bytes: int
    token: object


def _spill_filename(key: CacheKey) -> str:
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:40]
    return digest + SPILL_SUFFIX


class SpillingMaterializationCache(MaterializationCache):
    """A :class:`~repro.service.matcache.MaterializationCache` that spills
    evictions to disk and faults them back in on demand.

    Args:
        spill_dir: directory holding the per-entry spill files (created if
            missing).  Pointing a fresh cache at a previous run's directory
            recovers its entries.
        max_bytes / max_entries / policy: the hot (RAM) tier, exactly as in
            the base class.
        max_disk_bytes / max_disk_entries: budget of the warm (disk) tier;
            the least recently spilled-or-faulted file is deleted first.
        layout: payload layout for newly written spill files — ``"rows"``
            (format 1, the default) or ``"columnar"`` (format 2, decodes
            straight into :class:`~repro.execution.columnar.batch
            .ColumnBatch` on fault-in).  Reads accept both formats either
            way, so existing directories keep working across the switch.

    The public behaviour contract of the base class holds: a ``get`` is
    either the exact rows most recently validly ``put`` for that key, or a
    miss — the disk tier widens how long an entry can be served, never what
    is served.

    This class knowingly performs disk I/O inside the cache lock (spill on
    evict, fault-in on get) — the simple-but-stalling critical section the
    ROADMAP calls out.  Its I/O sites are marked with
    :func:`~repro.analysis.sanitizer.record_io` so a sanitized run
    (``REPRO_SANITIZE=1``) quantifies exactly how much I/O rides inside
    which lock before anyone attempts the double-buffered rewrite.
    """

    _LOCK_ROLE = "spillcache"

    def __init__(
        self,
        spill_dir: Union[str, Path],
        *,
        max_bytes: int = SpillConfig.max_bytes,
        max_entries: int = SpillConfig.max_entries,
        policy=None,
        max_disk_bytes: int = SpillConfig.max_disk_bytes,
        max_disk_entries: int = SpillConfig.max_disk_entries,
        layout: str = SpillConfig.layout,
        obs: Optional[Observability] = None,
    ):
        super().__init__(
            max_bytes=max_bytes, max_entries=max_entries, policy=policy, obs=obs
        )
        if max_disk_bytes < 1:
            raise ValueError("max_disk_bytes must be positive")
        if max_disk_entries < 1:
            raise ValueError("max_disk_entries must be positive")
        if layout not in ("rows", "columnar"):
            raise ValueError(f"unknown spill layout {layout!r} (want 'rows' or 'columnar')")
        self.layout = layout
        # Widen the view over the same registry/labels: the inherited fields
        # stay the very counters the base view created.
        self.statistics: SpillStatistics = SpillStatistics(
            self.obs.registry, labels=self.obs.labels
        )
        self.spill_dir = Path(spill_dir)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.max_disk_bytes = max_disk_bytes
        self.max_disk_entries = max_disk_entries
        # Least recently spilled/faulted first; keyed like the hot tier.
        self._disk: "OrderedDict[CacheKey, _DiskEntry]" = OrderedDict()
        self._disk_bytes = 0
        with self._lock:
            self._recover_locked()

    @classmethod
    def from_config(
        cls,
        spill_dir: Union[str, Path],
        config: Optional[SpillConfig] = None,
        *,
        policy=None,
        obs: Optional[Observability] = None,
    ) -> "SpillingMaterializationCache":
        config = config if config is not None else SpillConfig()
        return cls(
            spill_dir,
            max_bytes=config.max_bytes,
            max_entries=config.max_entries,
            policy=policy,
            max_disk_bytes=config.max_disk_bytes,
            max_disk_entries=config.max_disk_entries,
            layout=config.layout,
            obs=obs,
        )

    # ----------------------------------------------------------------- state

    @property
    def disk_entries(self) -> int:
        """How many entries currently live in the disk tier."""
        with self._lock:
            return len(self._disk)

    @property
    def disk_bytes(self) -> int:
        """Total size of the spill files currently indexed."""
        with self._lock:
            return self._disk_bytes

    def disk_keys(self) -> Tuple[CacheKey, ...]:
        with self._lock:
            return tuple(self._disk)

    # -------------------------------------------------------------- recovery

    def _recover_locked(self) -> None:
        """Index the spill files a previous process left in ``spill_dir``.

        Headers only (cheap); payload checksums are verified lazily on
        fault-in.  Unreadable files are deleted on the spot — a crash
        mid-rename can leave at most a stale temp file, which is also swept.
        """
        record_io("spill.recover_scan", obs=self.obs)
        for path in sorted(self.spill_dir.glob("*" + SPILL_SUFFIX)):
            try:
                with open(path, "rb") as handle:
                    header = read_spill_header(handle)
                file_bytes = path.stat().st_size
            except (OSError, SpillError):
                self.statistics.corrupt_files_dropped += 1
                _unlink_quietly(path)
                continue
            self._disk[header.key] = _DiskEntry(
                path=path, file_bytes=file_bytes, token=header.token
            )
            self._disk_bytes += file_bytes
            self.statistics.recovered += 1
        for leftover in self.spill_dir.glob(".spill-tmp-*"):
            _unlink_quietly(leftover)
        self._evict_disk_locked()

    # ------------------------------------------------------------ invalidation

    def invalidate(self) -> int:
        """Drop both tiers (memory entries and spill files); returns count."""
        with self._lock:
            dropped = super().invalidate()
            disk_dropped = len(self._disk)
            for entry in self._disk.values():
                _unlink_quietly(entry.path)
            self._disk.clear()
            self._disk_bytes = 0
            if disk_dropped and not dropped:
                # super() only counts an invalidation when the memory tier
                # held something; a disk-only flush is one too.
                self.statistics.invalidations += 1
            return dropped + disk_dropped

    # ------------------------------------------------------------------ get/put

    def get(self, key: CacheKey) -> Optional[List[Row]]:
        """Hot-tier hit, else fault the entry in from disk, else miss."""
        with self._lock:
            if key in self._entries:
                return super().get(key)
            faulted = self._fault_locked(key)
            if faulted is None:
                return super().get(key)  # records the miss
            rows, cost, batch = faulted
            self.statistics.faults += 1
            if self._tracer.enabled:
                self._tracer.event("matcache.fault", key=key[0][:16], order=key[1])
            # A fault is still a hit of the (two-level) cache.
            self._clock += 1
            self.statistics.hits += 1
            frozen = tuple(rows)  # decoded rows are fresh, never shared
            self._promote_locked(key, frozen, cost)
            if batch is not None:
                entry = self._entries.get(key)
                if entry is not None:
                    # Seed the columnar memo with the decoded batch so a
                    # get_batch() on the promoted entry skips the transpose.
                    entry.batch = batch
            return [dict(row) for row in rows]

    def _on_put_locked(self, key: CacheKey) -> None:
        # Any disk copy predates this fill and is now outdated; it must
        # never be faulted back in after the hot entry is evicted (a failed
        # re-spill would otherwise resurrect it).  Running inside put()'s
        # critical section keeps the fill and the drop atomic while the
        # expensive row freeze stays outside the lock, as in the base class.
        self._drop_disk_locked(key)

    def _promote_locked(self, key: CacheKey, frozen: Tuple[Row, ...], cost: float) -> None:
        """Move a faulted entry into the hot tier (no admission, no fill count).

        The disk copy stays: :meth:`_on_evict_locked` skips the rewrite when
        an entry whose rows are unchanged is evicted again, making
        hot/warm exchange of a larger-than-RAM working set cheap.
        """
        size = estimate_rows_bytes(frozen)
        if size > self.max_bytes:
            return  # served from disk, too large to promote
        self._store_locked(key, frozen, size, cost)

    # --------------------------------------------------------------- spilling

    def _on_evict_locked(self, key: CacheKey, entry: _Entry) -> None:
        existing = self._disk.get(key)
        if existing is not None:
            # put() drops disk copies it outdates, so an existing file holds
            # exactly these rows (it was the fault-in source): keep it.
            self._disk.move_to_end(key)
            return
        path = self.spill_dir / _spill_filename(key)
        handle = None
        tmp_path: Optional[Path] = None
        record_io("spill.write", obs=self.obs, key=key[0][:16])
        try:
            fd, tmp_name = tempfile.mkstemp(
                prefix=".spill-tmp-", dir=str(self.spill_dir)
            )
            tmp_path = Path(tmp_name)
            handle = os.fdopen(fd, "wb")
            written = write_spill_file(
                handle,
                key=key,
                # A memoized columnar view (a batch-preferring backend read
                # this entry) spills without re-transposing the rows.
                rows=(
                    entry.batch
                    if self.layout == "columnar" and entry.batch is not None
                    else entry.rows
                ),
                token=wire_token(self._token),
                cost=entry.cost,
                layout=self.layout,
            )
            handle.flush()
            handle.close()
            handle = None
            os.replace(tmp_path, path)
            tmp_path = None
        except (OSError, SpillError):
            # A failed spill degrades to a plain eviction: count it, leave
            # no partial file behind, and make sure no *older* file for the
            # key survives to masquerade as these rows later.
            self.statistics.spill_errors += 1
            if self._tracer.enabled:
                self._tracer.event("matcache.spill_error", key=key[0][:16])
            if handle is not None:
                try:
                    handle.close()
                # repro-lint: disable=bare-except-swallow -- close failure on an already-failed spill; spill_errors was counted above
                except OSError:
                    pass
            if tmp_path is not None:
                _unlink_quietly(tmp_path)
            self._drop_disk_locked(key)
            return
        self._disk[key] = _DiskEntry(
            path=path, file_bytes=written, token=wire_token(self._token)
        )
        self._disk.move_to_end(key)
        self._disk_bytes += written
        self.statistics.spills += 1
        self.statistics.spill_bytes_written += written
        if self._tracer.enabled:
            self._tracer.event("matcache.spill", key=key[0][:16], bytes=written)
        self._evict_disk_locked()

    def checkpoint(self) -> int:
        """Spill every hot entry to disk without evicting it; returns files written.

        Durability for planned shutdowns: eviction only persists what fell
        out of RAM, so a clean restart would lose the hottest entries —
        exactly the ones worth keeping.  ``checkpoint()`` (called by the
        serving layer's ``snapshot()``) makes the disk tier a complete copy
        of the cache.  Crash-safe in itself: each file is written
        temp-then-rename, and a torn checkpoint just recovers fewer entries.
        """
        with self._lock:
            written_before = self.statistics.spills
            for key in list(self._entries):
                entry = self._entries[key]
                if key not in self._disk:
                    self._on_evict_locked(key, entry)
            return self.statistics.spills - written_before

    def _evict_disk_locked(self) -> None:
        while self._disk and (
            len(self._disk) > self.max_disk_entries
            or self._disk_bytes > self.max_disk_bytes
        ):
            key, entry = self._disk.popitem(last=False)
            self._disk_bytes -= entry.file_bytes
            _unlink_quietly(entry.path)
            self.statistics.disk_evictions += 1

    # --------------------------------------------------------------- faulting

    def _fault_locked(
        self, key: CacheKey
    ) -> Optional[Tuple[List[Row], float, Optional[object]]]:
        disk = self._disk.get(key)
        if disk is None:
            return None
        if self._token is None:
            # The cache is not bound to a data-version token yet, so a
            # recovered file's validity cannot be judged — it may be
            # exactly the state the caller is about to attach a database
            # for.  Miss without destroying it.
            return None
        if disk.token != wire_token(self._token):
            # The data changed since this file was written (e.g. the file
            # survived a restart into a world with different data): same
            # treatment as the memory tier's stale-token fills.  The index
            # already knows the token, so the stale file is dropped without
            # paying its full read + checksum + decode.
            self.statistics.stale_files_dropped += 1
            self._drop_disk_locked(key)
            return None
        batch = None
        record_io("spill.read", obs=self.obs, key=key[0][:16])
        try:
            with open(disk.path, "rb") as handle:
                if self.layout == "columnar":
                    # Decode straight into columns (format-2 files skip the
                    # rows→columns transpose; old format-1 files still work);
                    # the row view is materialized once for the hot tier.
                    header, batch = read_spill_batch(handle)
                    rows = batch.to_rows()
                else:
                    header, rows = read_spill_file(handle)
        except (OSError, SpillError):
            self.statistics.corrupt_files_dropped += 1
            self._drop_disk_locked(key)
            return None
        if header.key != key:
            # Filename hash collision or a tampered file: either way these
            # rows do not belong to the requested key.
            self.statistics.corrupt_files_dropped += 1
            self._drop_disk_locked(key)
            return None
        if header.token != wire_token(self._token):
            # Defense in depth: the header is authoritative if the file was
            # swapped underneath the index.
            self.statistics.stale_files_dropped += 1
            self._drop_disk_locked(key)
            return None
        self._disk.move_to_end(key)
        return rows, header.cost, batch

    def _drop_disk_locked(self, key: CacheKey) -> None:
        entry = self._disk.pop(key, None)
        if entry is not None:
            self._disk_bytes -= entry.file_bytes
            _unlink_quietly(entry.path)


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    # repro-lint: disable=bare-except-swallow -- best-effort unlink; a leaked file is ignored (wrong token) and swept by the next recovery scan
    except OSError:
        pass
