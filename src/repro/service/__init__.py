"""The serving layer: persistent cross-batch optimization *and execution*.

Where :class:`~repro.core.mqo.MultiQueryOptimizer` answers "optimize this
batch", this package answers "serve this *traffic*":

* :class:`~repro.service.session.OptimizerSession` keeps the catalog, cost
  model, fingerprint-interned memo and warm ``bestCost`` engines alive
  across batches, and — with a database attached — answers queries with
  real rows through ``execute_batch()``,
* :class:`~repro.service.matcache.MaterializationCache` stores executed
  materialized-node row sets keyed by semantic fingerprint, with byte
  accounting, cost-aware LRU eviction and data-version invalidation, so a
  warm session skips re-computation of shared subexpressions, and
* :class:`~repro.service.pool.SessionPool` shards the serving layer: N
  sessions over one catalog, routed by a stable hash of each query's
  canonical semantic fingerprint (or an explicit tenant key), sharing one
  :class:`~repro.adaptive.FeedbackStatsStore` and data-version token while
  keeping per-shard memos, engines and materialization caches lock-free of
  each other, and
* :class:`~repro.service.scheduler.BatchScheduler` micro-batches
  individually submitted queries and runs them through the session — or
  per shard of a pool — on a thread pool (optionally returning rows per
  query).
"""

from .matcache import CacheStatistics, MaterializationCache, cache_key
from .session import BatchExecution, OptimizerSession, PreparedBatch, SessionStatistics
from .pool import SessionPool, stable_shard_hash
from .scheduler import BatchScheduler, QueryOutcome

__all__ = [
    "BatchExecution",
    "CacheStatistics",
    "MaterializationCache",
    "OptimizerSession",
    "PreparedBatch",
    "SessionPool",
    "SessionStatistics",
    "BatchScheduler",
    "QueryOutcome",
    "cache_key",
    "stable_shard_hash",
]
