"""Three-way differential: row vs columnar vs SQL oracle.

The SQL backend (:mod:`repro.execution.sql`) renders every chosen plan —
shared materializations included, as engine temp tables — to SQL and runs
it on stdlib SQLite, giving the Python backends a ground truth neither of
them implements.  For every registered strategy, over random star batches
and the TPC-D pair batch with genuinely profitable sharing, cold and warm
against the materialization cache, the three backends must agree on the
row *multiset* (order-normalized, floats rounded: engines sum in different
orders) — and the SQL session must drive the cache identically (same
hit/miss/fill counters), because accounting happens in shared
``execute_result`` plumbing, not per backend.

A mirror class runs the same sweep on DuckDB when the optional ``duckdb``
package is installed (CI has a dedicated job for it); it is skipped
otherwise.
"""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, lt
from repro.algebra.logical import QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.execution import (
    ColumnarExecutor,
    Executor,
    SQLiteExecutor,
    tiny_tpcd_database,
    total_order_key,
)
from repro.service import OptimizerSession
from repro.workloads.batches import composite_batch
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)

ALL_STRATEGIES = ("volcano", "greedy", "marginal-greedy", "share-all", "exhaustive")


def compare_all(session, batch):
    """Every registered strategy; only exhaustive gets a cardinality bound."""
    results = session.compare(batch, strategies=ALL_STRATEGIES[:-1])
    results.update(session.compare(batch, strategies=("exhaustive",), cardinality=2))
    return results


def canonical(rows):
    """Order-independent (multiset) canonical form of a list of result rows.

    Sorting goes through :func:`total_order_key` so rows carrying NULL or
    mixed-type cells stay comparable.
    """
    normalized = [
        tuple(
            sorted(
                (k, round(v, 6) if isinstance(v, float) else v) for k, v in row.items()
            )
        )
        for row in rows
    ]
    return sorted(
        normalized, key=lambda row: [(k, total_order_key(v)) for k, v in row]
    )


def assert_three_way(result, db, oracle_cls, context):
    """One consolidated plan, executed on all three backends."""
    reference = Executor(db).execute_result(result.plan)
    vectorized = ColumnarExecutor(db).execute_result(result.plan)
    oracle = oracle_cls(db).execute_result(result.plan)
    assert set(reference) == set(vectorized) == set(oracle)
    for query_name in reference:
        expected = canonical(reference[query_name])
        assert canonical(vectorized[query_name]) == expected, (
            f"columnar diverges on {query_name} ({context})"
        )
        assert canonical(oracle[query_name]) == expected, (
            f"SQL oracle diverges on {query_name} ({context})"
        )
    return reference


@pytest.fixture(scope="module")
def star_catalog():
    return star_schema_catalog(n_dimensions=4)


@pytest.fixture(scope="module")
def star_db():
    return star_schema_database(seed=9, n_dimensions=4)


def tpcd_pair_batch():
    """Two overlapping orders⋈lineitem aggregates the greedies share."""

    def make(name, cutoff):
        return (
            qb.scan("orders")
            .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
            .filter(lt(col("o_orderdate"), cutoff))
            .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
            .query(name)
        )

    return QueryBatch("pair", (make("A", 19960101), make("B", 19970101)))


class SQLOracleDifferential:
    """The sweep, parameterized by oracle class (SQLite below, DuckDB last)."""

    oracle_cls = SQLiteExecutor
    oracle_name = "sqlite"

    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_random_star_batches_every_strategy(self, star_catalog, star_db, seed):
        batch = random_star_batch(4, seed=seed, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        results = compare_all(session, batch)
        assert set(results) == set(ALL_STRATEGIES)
        some_rows = False
        for name, result in results.items():
            reference = assert_three_way(
                result, star_db, self.oracle_cls, f"strategy {name}, seed {seed}"
            )
            some_rows = some_rows or any(reference.values())
        assert some_rows, "batch should return some rows"

    def test_tpcd_pair_with_profitable_sharing(self):
        catalog = tpcd_catalog(1.0)
        db = tiny_tpcd_database(seed=7, orders=200)
        session = OptimizerSession(catalog)
        results = compare_all(session, tpcd_pair_batch())
        assert any(r.materialized_count >= 1 for r in results.values()), (
            "the harness should cover at least one genuinely shared execution"
        )
        for name, result in results.items():
            assert_three_way(result, db, self.oracle_cls, f"strategy {name}")

    def test_tpcd_composite_batch(self):
        catalog = tpcd_catalog(1.0)
        db = tiny_tpcd_database(seed=11, orders=120)
        session = OptimizerSession(catalog)
        results = session.compare(composite_batch(2), strategies=("volcano", "greedy"))
        for name, result in results.items():
            assert_three_way(result, db, self.oracle_cls, f"composite, {name}")

    def test_forced_materialization_sets(self, star_catalog, star_db):
        """Temp-table sharing parity independent of what the strategies pick."""
        batch = random_star_batch(3, seed=3, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        prepared = session.prepare(batch)
        dag, engine = prepared.dag, prepared.engine
        shareable = dag.shareable_nodes()
        assert shareable, "star batches must expose shareable nodes"
        oracle = self.oracle_cls(star_db)  # one engine, repeatedly used
        for count in (1, min(3, len(shareable)), len(shareable)):
            forced = engine.evaluate(frozenset(shareable[:count]))
            reference = Executor(star_db).execute_result(forced)
            from_sql = oracle.execute_result(forced)
            for query_name in reference:
                assert canonical(from_sql[query_name]) == canonical(
                    reference[query_name]
                ), f"forced sharing of {count} nodes diverges on {query_name}"

    def test_session_cold_and_warm_cache_parity(self):
        """Rows and cache counters match the row session, cold then warm."""
        catalog = tpcd_catalog(1.0)
        db = tiny_tpcd_database(seed=7, orders=150)
        sessions = {
            backend: OptimizerSession(catalog, executor=backend, database=db)
            for backend in ("row", self.oracle_name)
        }
        for _ in range(2):  # identical traffic twice: cold fills, then hits
            outputs = {}
            for backend, session in sessions.items():
                result = session.optimize(tpcd_pair_batch(), strategy="greedy")
                outputs[backend] = session.execute_plans(result)
            row_run, sql_run = outputs["row"], outputs[self.oracle_name]
            assert set(sql_run.rows) == set(row_run.rows)
            for query_name in row_run.rows:
                assert canonical(sql_run.rows[query_name]) == canonical(
                    row_run.rows[query_name]
                )
            assert sql_run.cache_hits == row_run.cache_hits
            assert sql_run.materializations == row_run.materializations
        row_stats = sessions["row"].matcache.statistics.as_dict()
        sql_stats = sessions[self.oracle_name].matcache.statistics.as_dict()
        assert sql_stats == row_stats
        assert row_stats["hits"] > 0, "warm pass should have hit the cache"

    def test_star_session_traffic(self, star_catalog, star_db):
        sessions = {
            backend: OptimizerSession(star_catalog, executor=backend, database=star_db)
            for backend in ("row", self.oracle_name)
        }
        for seed in (3, 3, 4):  # cold, warm repeat, overlapping batch
            batch = random_star_batch(3, seed=seed, n_dimensions=4)
            outputs = {}
            for backend, session in sessions.items():
                result = session.optimize(batch, strategy="share-all")
                outputs[backend] = session.execute_plans(result)
            for query_name in outputs["row"].rows:
                assert canonical(outputs[self.oracle_name].rows[query_name]) == canonical(
                    outputs["row"].rows[query_name]
                )
            assert outputs[self.oracle_name].cache_hits == outputs["row"].cache_hits
        row_stats = sessions["row"].matcache.statistics.as_dict()
        sql_stats = sessions[self.oracle_name].matcache.statistics.as_dict()
        assert sql_stats == row_stats

    def test_database_swap_reloads_by_fingerprint(self, star_catalog):
        """Repeated batches reuse the loaded engine; new data reloads it."""
        batch = random_star_batch(2, seed=8, n_dimensions=4)
        db_a = star_schema_database(seed=9, n_dimensions=4)
        db_b = star_schema_database(seed=10, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        result = session.compare(batch, strategies=("volcano",))["volcano"]
        oracle = self.oracle_cls(db_a)
        first = oracle.execute_result(result.plan)
        token = oracle._loaded_token
        again = oracle.execute_result(result.plan)
        assert oracle._loaded_token == token, "same fingerprint must not reload"
        assert {q: canonical(r) for q, r in again.items()} == {
            q: canonical(r) for q, r in first.items()
        }
        oracle.database = db_b  # same token machinery the session swap uses
        swapped = oracle.execute_result(result.plan)
        assert oracle._loaded_token != token, "new fingerprint must reload"
        expected = Executor(db_b).execute_result(result.plan)
        for query_name in expected:
            assert canonical(swapped[query_name]) == canonical(expected[query_name])


class TestSQLiteDifferential(SQLOracleDifferential):
    """The standing tier-1 oracle: stdlib sqlite3, no extra dependency."""


class TestDuckDBDifferential(SQLOracleDifferential):
    """The same sweep on DuckDB (optional dependency; CI has its own job)."""

    oracle_name = "duckdb"

    @pytest.fixture(autouse=True)
    def _requires_duckdb(self):
        pytest.importorskip("duckdb")

    @property
    def oracle_cls(self):
        from repro.execution import DuckDBExecutor

        return DuckDBExecutor
