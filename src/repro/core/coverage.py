"""Coverage problems used in the hardness construction (Section 4).

The inapproximability proof of Theorem 2 reduces from Max Coverage via the
*Profitted Max Coverage* problem (Problem 1 in the paper):

    fM(A) = ((γ+1)/γ) · |∪_{S∈A} S| / n,     c(A) = (1/γ) · |A| / l,
    f(A)  = fM(A) − c(A)

for a Max Coverage instance ``(X, S, l)``.  When ``l`` sets suffice to cover
the whole ground set, the optimum of ``f`` is exactly 1 and ``f(Θ)/c(Θ) =
γ``, which is how the hardness factor ``1 − ln(1+γ)/γ`` arises.

This module provides

* :class:`MaxCoverageInstance` with classical greedy algorithms for Set
  Cover and Max Coverage,
* :class:`CoverageFunction`, the monotone submodular coverage function, and
* :class:`ProfittedMaxCoverage`, which packages ``f``, ``fM`` and ``c`` as a
  ready-made :class:`~repro.core.decomposition.Decomposition` so the
  MarginalGreedy algorithm and the exhaustive optimizer can be run on the
  exact objects from the hardness proof, plus generators for random and
  "perfect cover" instances used by the theory benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .decomposition import Decomposition
from .set_functions import AdditiveFunction, Element, SetFunction, Subset, as_frozenset

__all__ = [
    "MaxCoverageInstance",
    "CoverageFunction",
    "ProfittedMaxCoverage",
    "greedy_set_cover",
    "greedy_max_coverage",
    "random_instance",
    "perfect_cover_instance",
]


@dataclass(frozen=True)
class MaxCoverageInstance:
    """An instance ``(X, S, l)`` of Max Coverage.

    Attributes:
        ground_set: the elements to be covered.
        subsets: the available subsets, indexed ``0..m-1``.
        budget: the number of subsets that may be picked (``l``).
    """

    ground_set: FrozenSet
    subsets: Tuple[FrozenSet, ...]
    budget: int

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be at least 1")
        for i, subset in enumerate(self.subsets):
            if not subset <= self.ground_set:
                raise ValueError(f"subset {i} contains elements outside the ground set")

    @property
    def n_elements(self) -> int:
        return len(self.ground_set)

    @property
    def n_subsets(self) -> int:
        return len(self.subsets)

    def coverage(self, picked: Iterable[int]) -> FrozenSet:
        """The union of the picked subsets (picked by index)."""
        covered: Set = set()
        for index in picked:
            covered.update(self.subsets[index])
        return frozenset(covered)

    def is_cover(self, picked: Iterable[int]) -> bool:
        return self.coverage(picked) == self.ground_set


class CoverageFunction(SetFunction):
    """The monotone submodular coverage function ``A ↦ |∪_{i∈A} S_i|``.

    The universe is the set of subset *indices* of the instance.
    """

    def __init__(self, instance: MaxCoverageInstance):
        self._instance = instance
        self._universe = frozenset(range(instance.n_subsets))

    @property
    def instance(self) -> MaxCoverageInstance:
        return self._instance

    @property
    def universe(self) -> Subset:
        return self._universe

    def value(self, subset: Iterable[int]) -> float:
        return float(len(self._instance.coverage(as_frozenset(subset))))


class ProfittedMaxCoverage:
    """The Profitted Max Coverage objective of Problem 1.

    Args:
        instance: the underlying Max Coverage instance ``(X, S, l)``.
        gamma: the constant γ > 0 from the construction.

    The object exposes the three functions of the construction
    (:attr:`objective` = ``f``, :attr:`monotone` = ``fM``, :attr:`cost` =
    ``c``) and a ready-made :meth:`decomposition` for MarginalGreedy.
    """

    def __init__(self, instance: MaxCoverageInstance, gamma: float):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.instance = instance
        self.gamma = float(gamma)
        self._coverage = CoverageFunction(instance)
        n = instance.n_elements
        scale = (self.gamma + 1.0) / (self.gamma * n)
        self.monotone: SetFunction = self._coverage.scaled(scale)
        per_set_cost = 1.0 / (self.gamma * instance.budget)
        self.cost = AdditiveFunction({i: per_set_cost for i in self._coverage.universe})
        self.objective: SetFunction = self.monotone - self.cost

    @property
    def universe(self) -> Subset:
        return self._coverage.universe

    def decomposition(self) -> Decomposition:
        """The natural decomposition ``(fM, c)`` used in the hardness proof."""
        return Decomposition(original=self.objective, monotone=self.monotone, cost=self.cost)

    def value_of_perfect_cover(self) -> float:
        """The objective value of an exact cover using ``l`` sets (always 1)."""
        return 1.0


def greedy_set_cover(instance: MaxCoverageInstance) -> Tuple[int, ...]:
    """The classical ln(n)-approximate greedy Set Cover algorithm.

    Returns the indices of the chosen subsets in pick order.  Raises
    :class:`ValueError` if the instance's subsets cannot cover the ground
    set at all.
    """
    if instance.coverage(range(instance.n_subsets)) != instance.ground_set:
        raise ValueError("the instance's subsets do not cover the ground set")
    uncovered: Set = set(instance.ground_set)
    picked: List[int] = []
    available = set(range(instance.n_subsets))
    while uncovered:
        best = max(
            sorted(available),
            key=lambda i: (len(uncovered & instance.subsets[i]), -i),
        )
        gain = len(uncovered & instance.subsets[best])
        if gain == 0:
            raise ValueError("no remaining subset covers the uncovered elements")
        picked.append(best)
        available.discard(best)
        uncovered -= instance.subsets[best]
    return tuple(picked)


def greedy_max_coverage(instance: MaxCoverageInstance, budget: Optional[int] = None) -> Tuple[int, ...]:
    """The (1 − 1/e)-approximate greedy algorithm for Max Coverage."""
    budget = instance.budget if budget is None else budget
    covered: Set = set()
    picked: List[int] = []
    available = set(range(instance.n_subsets))
    for _ in range(min(budget, instance.n_subsets)):
        best = max(
            sorted(available),
            key=lambda i: (len(instance.subsets[i] - covered), -i),
        )
        if len(instance.subsets[best] - covered) == 0:
            break
        picked.append(best)
        available.discard(best)
        covered.update(instance.subsets[best])
    return tuple(picked)


def random_instance(
    *,
    n_elements: int,
    n_subsets: int,
    budget: int,
    density: float = 0.3,
    seed: Optional[int] = None,
) -> MaxCoverageInstance:
    """A random Max Coverage instance where every subset picks each element i.i.d.

    Every element is guaranteed to appear in at least one subset so that the
    instance is always coverable.
    """
    rng = random.Random(seed)
    elements = list(range(n_elements))
    subsets: List[Set[int]] = [set() for _ in range(n_subsets)]
    for element in elements:
        owners = [i for i in range(n_subsets) if rng.random() < density]
        if not owners:
            owners = [rng.randrange(n_subsets)]
        for owner in owners:
            subsets[owner].add(element)
    return MaxCoverageInstance(
        ground_set=frozenset(elements),
        subsets=tuple(frozenset(s) for s in subsets),
        budget=budget,
    )


def perfect_cover_instance(
    *,
    n_elements: int,
    cover_size: int,
    n_decoys: int = 0,
    decoy_size: Optional[int] = None,
    seed: Optional[int] = None,
) -> MaxCoverageInstance:
    """An instance whose optimum covers the whole ground set with ``cover_size`` sets.

    The ground set is split into ``cover_size`` equal blocks (the hidden
    optimal cover); ``n_decoys`` additional random subsets of size
    ``decoy_size`` are added on top.  These are the "completeness" instances
    of the hardness reduction: the Profitted Max Coverage objective built on
    them has optimum exactly 1.
    """
    if n_elements % cover_size != 0:
        raise ValueError("n_elements must be divisible by cover_size")
    rng = random.Random(seed)
    elements = list(range(n_elements))
    rng.shuffle(elements)
    block = n_elements // cover_size
    cover_sets = [
        frozenset(elements[i * block : (i + 1) * block]) for i in range(cover_size)
    ]
    decoy_size = block if decoy_size is None else decoy_size
    decoys = [
        frozenset(rng.sample(elements, min(decoy_size, n_elements)))
        for _ in range(n_decoys)
    ]
    return MaxCoverageInstance(
        ground_set=frozenset(range(n_elements)),
        subsets=tuple(cover_sets + decoys),
        budget=cover_size,
    )
