"""Corruption and fault-injection tests for the durable cache tier.

The acceptance bar: a truncated spill file, a token-mismatched file, and a
write failing mid-spill must each degrade to a **clean cache miss** — never
a crash, never stale rows — and the damaged file must be gone afterwards.
"""

import os

import pytest

from repro.dag.fingerprint import RelationSignature
from repro.service.matcache import cache_key
from repro.storage import SpillingMaterializationCache
from repro.storage import spill as spill_module


def key(n: int):
    return cache_key(RelationSignature(f"table{n}", f"t{n}"))


def rows_for(n: int):
    return [{"t.k": n, "t.payload": f"π-{n}-{i}"} for i in range(1 + n % 4)]


def spilled_cache(tmp_path, entries=4):
    """A cache with every entry checkpointed to disk and dropped from RAM."""
    cache = SpillingMaterializationCache(tmp_path / "spill", max_entries=entries)
    cache.ensure_token("tok")
    for n in range(entries):
        assert cache.put(key(n), rows_for(n), cost=1.0, token="tok")
    cache.checkpoint()
    return cache


def spill_files(tmp_path):
    return sorted((tmp_path / "spill").glob("*.spill"))


class TestTruncatedFiles:
    @pytest.mark.parametrize("keep_bytes", [0, 3, 12, 40, -1])
    def test_truncated_file_is_a_clean_miss_and_removed(self, tmp_path, keep_bytes):
        spilled_cache(tmp_path, entries=4)
        reborn = SpillingMaterializationCache(tmp_path / "spill", max_entries=4)
        reborn.ensure_token("tok")
        victim_key = reborn.disk_keys()[0]
        victim_path = (tmp_path / "spill") / spill_module._spill_filename(victim_key)
        size = victim_path.stat().st_size
        keep = size + keep_bytes if keep_bytes < 0 else keep_bytes
        with open(victim_path, "r+b") as handle:
            handle.truncate(keep)

        assert reborn.get(victim_key) is None
        assert reborn.statistics.corrupt_files_dropped >= 1
        assert not victim_path.exists(), "invalidated file must be removed"
        # The cache stays fully usable; a refill serves normally again.
        assert reborn.put(victim_key, rows_for(99), token="tok")
        assert reborn.get(victim_key) == rows_for(99)

    def test_truncated_header_is_dropped_at_recovery(self, tmp_path):
        spilled_cache(tmp_path, entries=3)
        victim = spill_files(tmp_path)[0]
        with open(victim, "r+b") as handle:
            handle.truncate(5)  # inside the magic
        reborn = SpillingMaterializationCache(tmp_path / "spill", max_entries=3)
        assert reborn.statistics.recovered == 2
        assert reborn.statistics.corrupt_files_dropped == 1
        assert not victim.exists()


class TestCorruptPayloads:
    def test_bitflip_in_payload_is_a_clean_miss(self, tmp_path):
        spilled_cache(tmp_path, entries=2)
        reborn = SpillingMaterializationCache(tmp_path / "spill", max_entries=2)
        reborn.ensure_token("tok")
        victim_key = reborn.disk_keys()[0]
        victim_path = (tmp_path / "spill") / spill_module._spill_filename(victim_key)
        data = bytearray(victim_path.read_bytes())
        data[-1] ^= 0xFF  # payload tail: header still parses, checksum won't
        victim_path.write_bytes(bytes(data))

        assert reborn.get(victim_key) is None
        assert reborn.statistics.corrupt_files_dropped == 1
        assert not victim_path.exists()

    def test_foreign_file_under_the_right_name_is_rejected(self, tmp_path):
        """A file whose header key disagrees with its filename (collision or
        tampering) must not be served for the requested key."""
        cache = spilled_cache(tmp_path, entries=2)
        keys = cache.disk_keys()
        path_a = (tmp_path / "spill") / spill_module._spill_filename(keys[0])
        path_b = (tmp_path / "spill") / spill_module._spill_filename(keys[1])
        os.replace(path_b, path_a)  # a valid file... for a different key

        reborn = SpillingMaterializationCache(tmp_path / "spill", max_entries=2)
        reborn.ensure_token("tok")
        # Recovery indexed the file under its *header* key (keys[1]); the
        # lookup for keys[0] finds nothing, and if the index were fooled the
        # header-vs-requested-key check would still reject the rows.
        assert reborn.get(keys[0]) is None
        assert reborn.get(keys[1]) == rows_for(
            next(n for n in range(2) if key(n) == keys[1])
        )


class TestTokenMismatchedFiles:
    def test_stale_token_file_is_dropped_not_served(self, tmp_path):
        spilled_cache(tmp_path, entries=3)  # written under "tok"
        reborn = SpillingMaterializationCache(tmp_path / "spill", max_entries=3)
        reborn.ensure_token("different-data")
        for n in range(3):
            assert reborn.get(key(n)) is None
        assert reborn.statistics.stale_files_dropped == 3
        assert spill_files(tmp_path) == []

    def test_fresh_fills_after_stale_drop_serve_normally(self, tmp_path):
        spilled_cache(tmp_path, entries=2)
        reborn = SpillingMaterializationCache(tmp_path / "spill", max_entries=2)
        reborn.ensure_token("v2")
        assert reborn.get(key(0)) is None
        assert reborn.put(key(0), rows_for(5), token="v2")
        assert reborn.get(key(0)) == rows_for(5)


class TestWriteFailures:
    def test_failed_spill_degrades_to_plain_eviction(self, tmp_path, monkeypatch):
        cache = SpillingMaterializationCache(tmp_path / "spill", max_entries=1)
        cache.ensure_token("tok")
        cache.put(key(1), rows_for(1), token="tok")

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(spill_module.os, "replace", exploding_replace)
        # The eviction of key(1) tries to spill and fails mid-write.
        assert cache.put(key(2), rows_for(2), token="tok")
        monkeypatch.undo()

        assert cache.statistics.spill_errors == 1
        assert cache.statistics.evictions == 1
        assert cache.get(key(1)) is None  # lost, but cleanly
        assert cache.get(key(2)) == rows_for(2)
        # No partial or temp file survives the failure.
        leftovers = [p.name for p in (tmp_path / "spill").iterdir()]
        assert all(not name.startswith(".spill-tmp-") for name in leftovers)
        assert spill_files(tmp_path) == []

    def test_write_failure_mid_spill_never_resurrects_older_rows(
        self, tmp_path, monkeypatch
    ):
        """The sequence: spill v1, fault it back, overwrite with v2 (drops
        the v1 file), evict v2 with a failing write.  The key must now miss
        — the pre-fix hazard would be serving v1 from the leftover file."""
        cache = SpillingMaterializationCache(tmp_path / "spill", max_entries=1)
        cache.ensure_token("tok")
        cache.put(key(1), rows_for(1), cost=5.0, token="tok")
        cache.put(key(2), rows_for(2), cost=1.0, token="tok")  # spills v1 of key(1)
        assert cache.get(key(1)) == rows_for(1)  # faulted back (file kept)
        v2 = [{"t.k": 1, "t.payload": "v2"}]
        assert cache.put(key(1), v2, cost=5.0, token="tok")  # outdates the file

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(spill_module.os, "replace", exploding_replace)
        cache.put(key(3), rows_for(3), cost=9.0, token="tok")  # evicts key(1), spill fails
        monkeypatch.undo()

        got = cache.get(key(1))
        assert got is None, f"stale v1 rows must not be served, got {got}"

    def test_checkpoint_with_failing_writes_is_best_effort(self, tmp_path, monkeypatch):
        cache = SpillingMaterializationCache(tmp_path / "spill", max_entries=4)
        cache.ensure_token("tok")
        for n in range(3):
            cache.put(key(n), rows_for(n), token="tok")

        def exploding_replace(src, dst):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(spill_module.os, "replace", exploding_replace)
        assert cache.checkpoint() == 0
        monkeypatch.undo()
        assert cache.statistics.spill_errors == 3
        # The hot tier is untouched; a later checkpoint succeeds.
        for n in range(3):
            assert cache.get(key(n)) == rows_for(n)
        assert cache.checkpoint() == 3
