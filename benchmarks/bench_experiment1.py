"""Benchmarks regenerating Figure 4 (batched TPCD queries, Experiment 1).

* ``test_figure_4a`` — estimated plan costs at the 1GB scale,
* ``test_figure_4b`` — estimated plan costs at the 100GB scale,
* ``test_figure_4c_*`` — optimization time of each strategy (the quantity
  the paper plots in log scale), measured by pytest-benchmark.

The number of composite batches is reduced by default (see
``benchmarks/conftest.py``); set ``REPRO_BENCH_FULL=1`` for BQ1–BQ6.
"""

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.experiments.experiment1 import run_experiment1
from repro.workloads.batches import composite_batch


def _report(results) -> None:
    for table in results.tables():
        print()
        print(table.to_text())


@pytest.mark.benchmark(group="figure-4a")
def test_figure_4a(benchmark, bench_max_batches):
    """Figure 4a: Volcano vs Greedy vs MarginalGreedy estimated costs, 1GB."""

    def run():
        return run_experiment1(scale_factors=(1.0,), max_batches=bench_max_batches)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results)
    by_batch = {}
    for row in results.rows:
        by_batch.setdefault(row.batch, {})[row.strategy] = row
    for batch, strategies in by_batch.items():
        volcano = strategies["volcano"].estimated_cost_s
        for name in ("greedy", "marginal-greedy"):
            assert strategies[name].estimated_cost_s <= volcano + 1e-6, (
                f"{name} must never be worse than plain Volcano on {batch}"
            )


@pytest.mark.benchmark(group="figure-4b")
def test_figure_4b(benchmark, bench_max_batches):
    """Figure 4b: the same comparison at the 100GB scale."""
    batches = min(bench_max_batches, 3)

    def run():
        return run_experiment1(scale_factors=(100.0,), max_batches=batches)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results)
    for row in results.rows:
        assert row.estimated_cost_s > 0


@pytest.mark.benchmark(group="figure-4c")
@pytest.mark.parametrize("strategy", ["volcano", "greedy", "marginal-greedy"])
def test_figure_4c_optimization_time(benchmark, strategy, bench_max_batches):
    """Figure 4c: optimization time of one strategy on the largest configured batch."""
    catalog = tpcd_catalog(1.0)
    batch = composite_batch(min(bench_max_batches, 3))
    optimizer = MultiQueryOptimizer(catalog)
    dag = optimizer.build_dag(batch)

    def run():
        engine = optimizer.make_engine(dag)
        return optimizer.optimize_with(dag, engine, batch_name=batch.name, strategy=strategy)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n[figure-4c] {batch.name} {strategy}: cost={result.total_cost / 1000.0:.1f}s "
        f"materialized={result.materialized_count} bestCost calls={result.oracle_calls}"
    )
    assert result.total_cost <= result.volcano_cost + 1e-6
