"""Experiment harness regenerating every figure of the paper's evaluation."""

from .reporting import ResultTable, format_seconds
from .example1 import Example1Outcome, run_example1
from .experiment1 import Experiment1Results, Experiment1Row, run_experiment1
from .experiment2 import Experiment2Results, Experiment2Row, run_experiment2
from .theory import TheoryResults, TheoryRow, run_theory_experiment
from .runner import main, run_all

__all__ = [
    "ResultTable",
    "format_seconds",
    "Example1Outcome",
    "run_example1",
    "Experiment1Results",
    "Experiment1Row",
    "run_experiment1",
    "Experiment2Results",
    "Experiment2Row",
    "run_experiment2",
    "TheoryResults",
    "TheoryRow",
    "run_theory_experiment",
    "main",
    "run_all",
]
