"""Unit tests for the adaptive cardinality-estimator overlay."""

import pytest

from repro.adaptive import AdaptiveCardinalityEstimator, FeedbackStatsStore


@pytest.fixture()
def store():
    store = FeedbackStatsStore(ewma_alpha=0.5, epoch_decay=0.5)
    store.ensure_token(("db", 0))
    return store


class TestObservedBeatsStatic:
    def test_unobserved_key_falls_back_to_static(self, store):
        estimator = AdaptiveCardinalityEstimator(store)
        assert estimator.estimate_rows("k", 1234.0) == 1234.0
        assert estimator.observed_rows("k") is None
        assert estimator.confidence("k") == 0.0

    def test_confident_observation_replaces_static(self, store):
        estimator = AdaptiveCardinalityEstimator(store, min_confidence=0.5)
        store.record("k", rows=5000)
        # one observation at alpha=0.5 -> confidence exactly 0.5: confident.
        assert estimator.estimate_rows("k", 10.0) == 5000.0
        assert estimator.observed_rows("k") == 5000.0

    def test_estimates_track_the_moving_average(self, store):
        estimator = AdaptiveCardinalityEstimator(store)
        store.record("k", rows=100)
        store.record("k", rows=300)
        assert estimator.estimate_rows("k", 1.0) == pytest.approx(200.0)

    def test_estimate_is_floored_at_one_row(self, store):
        estimator = AdaptiveCardinalityEstimator(store)
        store.record("k", rows=0)
        assert estimator.estimate_rows("k", 50.0) == 1.0


class TestBlending:
    def test_low_confidence_blends_linearly(self):
        store = FeedbackStatsStore(ewma_alpha=0.2)  # one obs -> confidence 0.2
        store.record("k", rows=1000)
        estimator = AdaptiveCardinalityEstimator(store, min_confidence=0.5)
        expected = 0.2 * 1000.0 + 0.8 * 100.0
        assert estimator.estimate_rows("k", 100.0) == pytest.approx(expected)

    def test_min_confidence_zero_always_uses_observed(self):
        store = FeedbackStatsStore(ewma_alpha=0.2)
        store.record("k", rows=1000)
        estimator = AdaptiveCardinalityEstimator(store, min_confidence=0.0)
        assert estimator.estimate_rows("k", 100.0) == 1000.0

    def test_invalid_min_confidence_raises(self, store):
        with pytest.raises(ValueError):
            AdaptiveCardinalityEstimator(store, min_confidence=1.5)


class TestDecayAndTokenInvalidation:
    def test_epoch_decay_slides_the_estimate_back_toward_static(self, store):
        estimator = AdaptiveCardinalityEstimator(store, min_confidence=0.6)
        for _ in range(4):
            store.record("k", rows=1000)
        confident = estimator.estimate_rows("k", 100.0)
        assert confident == 1000.0

        store.ensure_token(("db", 1))  # epoch bump halves confidence
        once = estimator.estimate_rows("k", 100.0)
        assert 100.0 < once < 1000.0, "stale observation only nudges the estimate"

        for version in range(2, 12):
            store.ensure_token(("db", version))
        ancient = estimator.estimate_rows("k", 100.0)
        assert ancient == pytest.approx(100.0, rel=0.01), (
            "an ancient observation must converge back to the static estimate"
        )

    def test_fresh_observation_after_token_change_wins_again(self, store):
        estimator = AdaptiveCardinalityEstimator(store, min_confidence=0.5)
        store.record("k", rows=1000)
        store.ensure_token(("db", 1))
        store.record("k", rows=7)  # re-measured against the new data
        assert estimator.estimate_rows("k", 100.0) == 7.0


class TestObservedWidth:
    def test_width_from_observed_bytes(self, store):
        estimator = AdaptiveCardinalityEstimator(store)
        store.record("k", rows=10, bytes=640)
        assert estimator.observed_width("k") == 64.0

    def test_width_is_none_without_byte_observations(self, store):
        estimator = AdaptiveCardinalityEstimator(store)
        store.record("k", rows=10)
        assert estimator.observed_width("k") is None
        assert estimator.observed_width("missing") is None
