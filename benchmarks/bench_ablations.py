"""Ablation benchmarks for the Section-5 speed-ups and DAG design choices.

* LazyMarginalGreedy vs plain MarginalGreedy (Section 5.2): same answer,
  fewer oracle evaluations.
* Incremental vs from-scratch ``bestCost`` evaluation (Section 5.1).
* Theorem-4 universe reduction under a cardinality constraint (Section 5.3).
* Disjunctive (OR) subsumption on/off: how much of the sharing found on the
  batched workload depends on the relaxed common subexpressions.
"""

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.core.coverage import ProfittedMaxCoverage, random_instance
from repro.core.decomposition import decomposition_from_parts
from repro.core.marginal_greedy import lazy_marginal_greedy, marginal_greedy
from repro.core.mqo import MultiQueryOptimizer
from repro.core.pruning import prune_universe
from repro.core.set_functions import AdditiveFunction, CallCountingFunction, RestrictedFunction
from repro.dag.build import DagConfig
from repro.optimizer.best_cost import BestCostEngine
from repro.workloads.batches import composite_batch


@pytest.fixture(scope="module")
def profitted_problem():
    instance = random_instance(n_elements=60, n_subsets=24, budget=6, seed=3)
    return ProfittedMaxCoverage(instance, gamma=2.0)


@pytest.mark.benchmark(group="ablation-lazy")
@pytest.mark.parametrize("variant", ["eager", "lazy"])
def test_lazy_vs_eager_marginal_greedy(benchmark, variant, profitted_problem):
    """Section 5.2: the lazy heap variant must match the eager output with fewer evaluations."""
    decomposition = profitted_problem.decomposition()
    algorithm = lazy_marginal_greedy if variant == "lazy" else marginal_greedy
    result = benchmark(lambda: algorithm(decomposition))
    print(f"\n[{variant}] value={result.value:.4f} evaluations={result.monotone_evaluations}")
    eager = marginal_greedy(decomposition)
    assert result.selected == eager.selected


@pytest.mark.benchmark(group="ablation-incremental")
@pytest.mark.parametrize("incremental", [False, True], ids=["from-scratch", "incremental"])
def test_incremental_best_cost(benchmark, incremental):
    """Section 5.1: incremental cost recomputation returns identical costs, faster."""
    catalog = tpcd_catalog(1.0)
    batch = composite_batch(2)
    mqo = MultiQueryOptimizer(catalog)
    dag = mqo.build_dag(batch)
    candidates = dag.shareable_candidates()[:12]

    def sweep():
        engine = BestCostEngine(dag, incremental=incremental)
        base = engine.cost(frozenset())
        costs = [engine.cost(frozenset({c})) for c in candidates]
        return base, costs

    base, costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reference_engine = BestCostEngine(dag, incremental=False)
    assert base == pytest.approx(reference_engine.cost(frozenset()), rel=1e-9)
    for candidate, cost in zip(candidates, costs):
        assert cost == pytest.approx(reference_engine.cost(frozenset({candidate})), rel=1e-9)


@pytest.mark.benchmark(group="ablation-pruning")
def test_theorem4_pruning(benchmark, profitted_problem):
    """Section 5.3: pruning shrinks the ground set without changing the answer."""
    decomposition = profitted_problem.decomposition()
    k = 4

    def run():
        report = prune_universe(decomposition, k)
        pruned = decomposition_from_parts(
            RestrictedFunction(decomposition.monotone, report.kept),
            AdditiveFunction({e: decomposition.element_cost(e) for e in report.kept}),
            original=RestrictedFunction(decomposition.original, report.kept),
        )
        return report, marginal_greedy(pruned, cardinality=k)

    report, reduced = benchmark.pedantic(run, rounds=1, iterations=1)
    full = marginal_greedy(decomposition, cardinality=k)
    print(f"\n[pruning] removed {report.reduction} of {len(decomposition.universe)} elements")
    assert reduced.selected == full.selected


@pytest.mark.benchmark(group="ablation-subsumption")
@pytest.mark.parametrize("or_subsumption", [False, True], ids=["no-or-nodes", "with-or-nodes"])
def test_or_subsumption_ablation(benchmark, or_subsumption):
    """How much of the batched-workload benefit comes from the relaxed OR nodes."""
    catalog = tpcd_catalog(1.0)
    batch = composite_batch(1)  # Q3 repeated with two different constants
    config = DagConfig(enable_or_subsumption=or_subsumption)
    mqo = MultiQueryOptimizer(catalog, dag_config=config)

    def run():
        return mqo.optimize(batch, strategy="greedy")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n[or-subsumption={or_subsumption}] improvement over Volcano: "
        f"{result.improvement:.1%} with {result.materialized_count} materialized nodes"
    )
    assert result.total_cost <= result.volcano_cost + 1e-6
