"""Table and column statistics consumed by the cardinality estimator.

Statistics are deliberately simple — row counts, distinct counts and
min/max bounds — matching the "standard techniques ... using statistics
about relations" the paper's experimental section mentions.  They can be
created analytically (the TPC-D generator in :mod:`repro.catalog.tpcd`) or
collected from in-memory data (:func:`collect_statistics`, used by the
execution-engine tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

from .schema import Table

__all__ = ["ColumnStatistics", "TableStatistics", "collect_statistics"]


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for one column.

    Attributes:
        distinct_count: estimated number of distinct values.
        min_value / max_value: numeric bounds when known (used for range
            selectivity); ``None`` for non-numeric columns.
        null_fraction: fraction of NULLs (unused by TPC-D but kept for
            completeness).
    """

    distinct_count: float
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    null_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.distinct_count <= 0:
            raise ValueError("distinct_count must be positive")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise ValueError("null_fraction must be in [0, 1]")

    @property
    def value_range(self) -> Optional[float]:
        if self.min_value is None or self.max_value is None:
            return None
        return max(self.max_value - self.min_value, 0.0)


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for one table: row count, row width and per-column stats."""

    row_count: float
    row_width: int
    columns: Mapping[str, ColumnStatistics] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError("row_count must be non-negative")
        if self.row_width <= 0:
            raise ValueError("row_width must be positive")

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name)

    def distinct(self, name: str) -> float:
        """Distinct count for ``name``; defaults to ``row_count`` when unknown."""
        stats = self.columns.get(name)
        if stats is None:
            return max(self.row_count, 1.0)
        return min(stats.distinct_count, max(self.row_count, 1.0))


def collect_statistics(table: Table, rows: Sequence[Mapping[str, object]]) -> TableStatistics:
    """Compute exact statistics from in-memory rows (used in executor tests)."""
    column_stats: Dict[str, ColumnStatistics] = {}
    for column in table.columns:
        values = [row[column.name] for row in rows if row.get(column.name) is not None]
        distinct = max(len(set(values)), 1)
        numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
        min_value = float(min(numeric)) if numeric else None
        max_value = float(max(numeric)) if numeric else None
        nulls = sum(1 for row in rows if row.get(column.name) is None)
        column_stats[column.name] = ColumnStatistics(
            distinct_count=float(distinct),
            min_value=min_value,
            max_value=max_value,
            null_fraction=(nulls / len(rows)) if rows else 0.0,
        )
    return TableStatistics(
        row_count=float(len(rows)),
        row_width=table.row_width,
        columns=column_stats,
    )
