"""Shared benchmark knobs: tiny smoke mode and output redirection.

Two environment variables let the tier-1 smoke suite run every
``BENCH_*.json``-writing benchmark in seconds without touching the
repository root:

* ``REPRO_BENCH_TINY`` — shrink data sizes/iteration counts to smoke
  scale and **skip the hard performance assertions** (speedup floors,
  overhead ceilings).  Correctness assertions (bit-identical rows, zero
  re-materializations, oracle mismatches) always hold: tiny mode only
  relaxes claims about *speed*, never about *answers*.
* ``REPRO_BENCH_OUT`` — directory receiving the ``BENCH_*.json`` files
  (default: the repository root).

Both are read at call time, not import time, so a harness that imports a
benchmark module before deciding the mode still gets what it set.
"""

import os
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = ["REPO_ROOT", "bench_path", "scaled", "tiny"]


def tiny() -> bool:
    """True when the smoke suite asked for tiny scale (REPRO_BENCH_TINY)."""
    return bool(os.environ.get("REPRO_BENCH_TINY"))


def scaled(full, small):
    """``full`` normally, ``small`` under REPRO_BENCH_TINY."""
    return small if tiny() else full


def bench_path(filename: str) -> Path:
    """Where a BENCH_*.json result lands (REPRO_BENCH_OUT or repo root)."""
    out = os.environ.get("REPRO_BENCH_OUT")
    return (Path(out) if out else REPO_ROOT) / filename
