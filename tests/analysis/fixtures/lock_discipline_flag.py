"""Must-flag fixture for ``lock-discipline``.

The PR 8 torn-read shape: a class guards its counters with ``self._lock``
in most methods but reads them bare in one.  Never imported.
"""

import threading


class TornCache:
    def __init__(self):
        self._lock = threading.RLock()
        self._entries = {}
        self._bytes = 0

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._bytes += len(value)

    def statistics(self):
        # Unlocked multi-field read of guarded state: the torn read.
        return {"entries": len(self._entries), "bytes": self._bytes}


class WrappedLockCache:
    """A sanitized (wrapped) lock construction still counts as a lock."""

    def __init__(self, obs=None):
        self._lock = sanitize_lock(threading.Lock(), "cache", obs=obs)  # noqa: F821
        self._hits = 0

    def record(self):
        with self._lock:
            self._hits += 1

    def peek(self):
        return self._hits  # unlocked read of guarded state
