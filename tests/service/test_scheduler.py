"""BatchScheduler: micro-batching, futures, error propagation, shutdown."""

import time
from dataclasses import replace

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.service import BatchScheduler, OptimizerSession, QueryOutcome
from repro.service.scheduler import _deduplicate_names
from repro.workloads.batches import composite_batch
from repro.workloads.tpcd_queries import batched_queries


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.05)


def test_submit_resolves_with_per_query_costs(catalog):
    session = OptimizerSession(catalog)
    queries = batched_queries(1)  # Q3a, Q3b
    with BatchScheduler(session, max_batch_size=2, max_delay=0.2, strategy="greedy") as sched:
        futures = [sched.submit(q) for q in queries]
        outcomes = [f.result(timeout=120) for f in futures]
    assert {o.query_name for o in outcomes} == {q.name for q in queries}
    for outcome in outcomes:
        assert isinstance(outcome, QueryOutcome)
        assert outcome.strategy == "greedy"
        assert outcome.cost > 0
        assert outcome.cost == outcome.batch_result.query_costs[outcome.query_name]


def test_single_query_micro_batches_match_session(catalog):
    session = OptimizerSession(catalog)
    query = batched_queries(1)[0]
    with BatchScheduler(session, max_batch_size=1, strategy="volcano") as sched:
        outcome = sched.submit(query).result(timeout=120)
    direct = OptimizerSession(catalog).optimize([query], strategy="volcano")
    assert outcome.cost == pytest.approx(direct.query_costs[query.name])


def test_duplicate_names_are_deduplicated(catalog):
    session = OptimizerSession(catalog)
    query = batched_queries(1)[0]
    with BatchScheduler(session, max_batch_size=2, max_delay=0.2) as sched:
        futures = [sched.submit(query), sched.submit(query)]
        names = {f.result(timeout=120).query_name for f in futures}
    # Identical queries may ride in one micro-batch (renamed) or in two.
    assert query.name in names
    assert all(name.startswith(query.name) for name in names)


def test_deduplicate_probes_past_existing_suffixed_names():
    """Regression: renaming the second ``q`` to ``q#2`` must not collide with
    a query literally named ``q#2`` already in the micro-batch (two futures
    would then read the same result slot)."""
    q = batched_queries(1)[0]
    q_clash = replace(q, name=f"{q.name}#2")
    for order in ([q, q_clash, q], [q, q, q_clash], [q_clash, q, q]):
        names = [query.name for query in _deduplicate_names(order)]
        assert len(set(names)) == len(names), names
        # Originals keep their names; only true clashes are renamed.
        assert q.name in names and q_clash.name in names


def test_duplicate_and_suffixed_names_resolve_concurrently(catalog):
    """The same regression end-to-end: submit q, q#2, q into one micro-batch
    and every future must resolve with its own name and cost."""
    session = OptimizerSession(catalog)
    q = batched_queries(1)[0]
    q_clash = replace(q, name=f"{q.name}#2")
    with BatchScheduler(session, max_batch_size=3, max_delay=0.5) as sched:
        futures = [sched.submit(q), sched.submit(q_clash), sched.submit(q)]
        outcomes = [f.result(timeout=120) for f in futures]
    names = [o.query_name for o in outcomes]
    assert len(set(names)) == 3, names
    for outcome in outcomes:
        assert outcome.cost == outcome.batch_result.query_costs[outcome.query_name]


def test_flush_does_not_busy_spin_while_queue_drains(catalog):
    """Regression: flush() with no pending futures but a non-empty queue used
    to call wait_futures([], ...) in a hot loop, burning a core.  The loop
    must now sleep on that branch — assert a bounded iteration count via the
    pending-lock acquisitions it performs per pass."""

    class CountingLock:
        def __init__(self, inner):
            self.inner = inner
            self.count = 0

        def __enter__(self):
            self.count += 1
            return self.inner.__enter__()

        def __exit__(self, *exc_info):
            return self.inner.__exit__(*exc_info)

    session = OptimizerSession(catalog)
    sched = BatchScheduler(session)
    sched.close()  # collector gone: whatever we enqueue now stays queued
    sched._queue.put(object())  # simulates a slow collector pass
    counting = CountingLock(sched._pending_lock)
    sched._pending_lock = counting
    started = time.process_time()
    with pytest.raises(TimeoutError):
        sched.flush(timeout=0.3)
    cpu = time.process_time() - started
    # One lock acquisition per loop pass: a busy spin does tens of thousands
    # in 0.3s; the sleeping loop does ~30.
    assert counting.count < 200, f"flush spun {counting.count} times"
    assert cpu < 0.25, f"flush burned {cpu:.3f}s CPU in a 0.3s window"


def test_submit_batch_bypasses_micro_batching(catalog):
    session = OptimizerSession(catalog)
    with BatchScheduler(session) as sched:
        result = sched.submit_batch(composite_batch(1), strategy="volcano").result(timeout=120)
    assert result.batch_name == "BQ1"
    assert result.strategy == "volcano"


def test_errors_propagate_to_submitters(catalog):
    session = OptimizerSession(catalog)
    with BatchScheduler(session, max_batch_size=1, strategy="no-such-strategy") as sched:
        future = sched.submit(batched_queries(1)[0])
        with pytest.raises(ValueError, match="unknown strategy"):
            future.result(timeout=120)


def test_close_resolves_mixed_strategy_backlog(catalog):
    """Shutdown must not strand submissions deferred for a later micro-batch."""
    session = OptimizerSession(catalog)
    q1, q2 = batched_queries(1)
    sched = BatchScheduler(session, max_batch_size=4, max_delay=5.0)
    f1 = sched.submit(q1, strategy="greedy")
    f2 = sched.submit(q2, strategy="volcano")  # deferred: different strategy
    sched.close()  # sentinel arrives while the greedy batch is collecting
    assert f1.result(timeout=120).strategy == "greedy"
    assert f2.result(timeout=120).strategy == "volcano"


def test_closed_scheduler_rejects_submissions(catalog):
    session = OptimizerSession(catalog)
    sched = BatchScheduler(session)
    sched.close()
    with pytest.raises(RuntimeError):
        sched.submit(batched_queries(1)[0])
    with pytest.raises(RuntimeError):
        sched.submit_batch(composite_batch(1))
