"""Experiment 2: stand-alone TPCD queries (Figure 5 / Appendix B of the paper).

Four workloads — Q2 (correlated nested subquery), Q2-D (its decorrelated
version), Q11 and Q15 — each contain common subexpressions *within* a single
query, so multi-query optimization pays off even without a batch.  As in
Experiment 1 the report contains the estimated plan costs at both database
scales (Figures 5a and 5b) and the optimization times (Figure 5c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..catalog.tpcd import tpcd_catalog
from ..cost.model import CostModel, CostParameters
from ..service.session import OptimizerSession
from ..workloads.tpcd_queries import standalone_workloads
from .reporting import ResultTable

__all__ = ["Experiment2Row", "Experiment2Results", "run_experiment2"]

DEFAULT_STRATEGIES: Tuple[str, ...] = ("volcano", "greedy", "marginal-greedy")
WORKLOAD_ORDER: Tuple[str, ...] = ("Q2", "Q2-D", "Q11", "Q15")


@dataclass(frozen=True)
class Experiment2Row:
    """One (workload, scale, strategy) measurement."""

    workload: str
    scale_factor: float
    strategy: str
    estimated_cost_s: float
    volcano_cost_s: float
    materialized_nodes: int
    optimization_time_s: float
    best_cost_calls: int

    @property
    def improvement(self) -> float:
        if self.volcano_cost_s <= 0:
            return 0.0
        return 1.0 - self.estimated_cost_s / self.volcano_cost_s


@dataclass
class Experiment2Results:
    rows: List[Experiment2Row] = field(default_factory=list)

    def _find(self, workload: str, scale: float, strategy: str) -> Optional[Experiment2Row]:
        for row in self.rows:
            if (
                row.workload == workload
                and row.scale_factor == scale
                and row.strategy == strategy
            ):
                return row
        return None

    def _cost_table(self, scale: float, title: str) -> ResultTable:
        strategies = sorted({r.strategy for r in self.rows},
                            key=lambda s: DEFAULT_STRATEGIES.index(s) if s in DEFAULT_STRATEGIES else 99)
        columns = ["workload"]
        for strategy in strategies:
            columns.append(f"{strategy} cost (s)")
            if strategy != "volcano":
                columns.append(f"{strategy} #mat")
        table = ResultTable(title, columns)
        for workload in WORKLOAD_ORDER:
            if not any(r.workload == workload and r.scale_factor == scale for r in self.rows):
                continue
            cells: List = [workload]
            for strategy in strategies:
                row = self._find(workload, scale, strategy)
                cells.append(row.estimated_cost_s if row else None)
                if strategy != "volcano":
                    cells.append(row.materialized_nodes if row else None)
            table.add_row(*cells)
        return table

    def figure_5a(self) -> ResultTable:
        return self._cost_table(1.0, "Figure 5a — Stand-alone TPCD queries, 1GB total size")

    def figure_5b(self) -> ResultTable:
        return self._cost_table(100.0, "Figure 5b — Stand-alone TPCD queries, 100GB total size")

    def figure_5c(self) -> ResultTable:
        strategies = sorted({r.strategy for r in self.rows},
                            key=lambda s: DEFAULT_STRATEGIES.index(s) if s in DEFAULT_STRATEGIES else 99)
        scale = min({r.scale_factor for r in self.rows}) if self.rows else 1.0
        table = ResultTable(
            "Figure 5c — Optimization times (seconds)",
            ["workload"] + [f"{s} opt time (s)" for s in strategies],
        )
        for workload in WORKLOAD_ORDER:
            if not any(r.workload == workload and r.scale_factor == scale for r in self.rows):
                continue
            cells: List = [workload]
            for strategy in strategies:
                row = self._find(workload, scale, strategy)
                cells.append(row.optimization_time_s if row else None)
            table.add_row(*cells)
        return table

    def tables(self) -> List[ResultTable]:
        result = []
        if any(r.scale_factor == 1.0 for r in self.rows):
            result.append(self.figure_5a())
        if any(r.scale_factor == 100.0 for r in self.rows):
            result.append(self.figure_5b())
        if self.rows:
            result.append(self.figure_5c())
        return result


def run_experiment2(
    *,
    scale_factors: Sequence[float] = (1.0, 100.0),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    workloads: Optional[Sequence[str]] = None,
    cost_parameters: Optional[CostParameters] = None,
    lazy: bool = True,
    verbose: bool = False,
) -> Experiment2Results:
    """Run Experiment 2 for the requested workloads, scales and strategies."""
    available = standalone_workloads()
    selected = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    unknown = [w for w in selected if w not in available]
    if unknown:
        raise ValueError(f"unknown Experiment-2 workloads: {unknown}")

    results = Experiment2Results()
    for scale in scale_factors:
        catalog = tpcd_catalog(scale)
        cost_model = CostModel(cost_parameters if cost_parameters is not None else CostParameters())
        # One serving session per strategy (see run_experiment1): shared
        # sub-expressions between workloads intern into one memo while the
        # reported per-strategy optimization times stay independent.
        sessions = {s: OptimizerSession(catalog, cost_model) for s in strategies}
        for workload_name in selected:
            batch = available[workload_name]
            for strategy in strategies:
                result = sessions[strategy].optimize(batch, strategy=strategy, lazy=lazy)
                row = Experiment2Row(
                    workload=workload_name,
                    scale_factor=float(scale),
                    strategy=strategy,
                    estimated_cost_s=result.total_cost / 1000.0,
                    volcano_cost_s=result.volcano_cost / 1000.0,
                    materialized_nodes=result.materialized_count,
                    optimization_time_s=result.optimization_time,
                    best_cost_calls=result.oracle_calls,
                )
                results.rows.append(row)
                if verbose:
                    print(
                        f"[experiment2] scale={scale:g} {workload_name:5s} {strategy:16s} "
                        f"cost={row.estimated_cost_s:10.1f}s mat={row.materialized_nodes:3d} "
                        f"opt={row.optimization_time_s:6.2f}s"
                    )
    return results
