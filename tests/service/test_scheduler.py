"""BatchScheduler: micro-batching, futures, error propagation, shutdown."""

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.service import BatchScheduler, OptimizerSession, QueryOutcome
from repro.workloads.batches import composite_batch
from repro.workloads.tpcd_queries import batched_queries


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.05)


def test_submit_resolves_with_per_query_costs(catalog):
    session = OptimizerSession(catalog)
    queries = batched_queries(1)  # Q3a, Q3b
    with BatchScheduler(session, max_batch_size=2, max_delay=0.2, strategy="greedy") as sched:
        futures = [sched.submit(q) for q in queries]
        outcomes = [f.result(timeout=120) for f in futures]
    assert {o.query_name for o in outcomes} == {q.name for q in queries}
    for outcome in outcomes:
        assert isinstance(outcome, QueryOutcome)
        assert outcome.strategy == "greedy"
        assert outcome.cost > 0
        assert outcome.cost == outcome.batch_result.query_costs[outcome.query_name]


def test_single_query_micro_batches_match_session(catalog):
    session = OptimizerSession(catalog)
    query = batched_queries(1)[0]
    with BatchScheduler(session, max_batch_size=1, strategy="volcano") as sched:
        outcome = sched.submit(query).result(timeout=120)
    direct = OptimizerSession(catalog).optimize([query], strategy="volcano")
    assert outcome.cost == pytest.approx(direct.query_costs[query.name])


def test_duplicate_names_are_deduplicated(catalog):
    session = OptimizerSession(catalog)
    query = batched_queries(1)[0]
    with BatchScheduler(session, max_batch_size=2, max_delay=0.2) as sched:
        futures = [sched.submit(query), sched.submit(query)]
        names = {f.result(timeout=120).query_name for f in futures}
    # Identical queries may ride in one micro-batch (renamed) or in two.
    assert query.name in names
    assert all(name.startswith(query.name) for name in names)


def test_submit_batch_bypasses_micro_batching(catalog):
    session = OptimizerSession(catalog)
    with BatchScheduler(session) as sched:
        result = sched.submit_batch(composite_batch(1), strategy="volcano").result(timeout=120)
    assert result.batch_name == "BQ1"
    assert result.strategy == "volcano"


def test_errors_propagate_to_submitters(catalog):
    session = OptimizerSession(catalog)
    with BatchScheduler(session, max_batch_size=1, strategy="no-such-strategy") as sched:
        future = sched.submit(batched_queries(1)[0])
        with pytest.raises(ValueError, match="unknown strategy"):
            future.result(timeout=120)


def test_close_resolves_mixed_strategy_backlog(catalog):
    """Shutdown must not strand submissions deferred for a later micro-batch."""
    session = OptimizerSession(catalog)
    q1, q2 = batched_queries(1)
    sched = BatchScheduler(session, max_batch_size=4, max_delay=5.0)
    f1 = sched.submit(q1, strategy="greedy")
    f2 = sched.submit(q2, strategy="volcano")  # deferred: different strategy
    sched.close()  # sentinel arrives while the greedy batch is collecting
    assert f1.result(timeout=120).strategy == "greedy"
    assert f2.result(timeout=120).strategy == "volcano"


def test_closed_scheduler_rejects_submissions(catalog):
    session = OptimizerSession(catalog)
    sched = BatchScheduler(session)
    sched.close()
    with pytest.raises(RuntimeError):
        sched.submit(batched_queries(1)[0])
    with pytest.raises(RuntimeError):
        sched.submit_batch(composite_batch(1))
